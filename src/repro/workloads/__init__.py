"""Workload generation for experiments and benchmarks.

A :class:`~repro.workloads.scenarios.Scenario` bundles a monitor factory
and the process mix that drives it, parameterised by a
:class:`~repro.workloads.scenarios.WorkloadSpec`.  The overhead experiment
instantiates the same scenario repeatedly — with and without the detection
extension, across checking intervals and kernels — so everything that can
vary is captured in the spec and everything else is deterministic.
"""

from repro.workloads.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRun,
    WorkloadSpec,
    build_fleet,
    build_scenario,
)

__all__ = [
    "WorkloadSpec",
    "Scenario",
    "ScenarioRun",
    "SCENARIOS",
    "build_scenario",
    "build_fleet",
]
