"""Deterministic workload scenarios, one per monitor type.

Three scenarios mirror the paper's three monitor classes:

* ``coordinator`` — producers/consumers over a
  :class:`~repro.apps.bounded_buffer.BoundedBuffer`,
* ``allocator`` — competing users over a
  :class:`~repro.apps.resource_allocator.SingleResourceAllocator`,
* ``manager`` — depositors/withdrawers over a
  :class:`~repro.apps.shared_account.SharedAccount`.

Each scenario builds the monitor (optionally with the detection extension)
and the process bodies on a caller-supplied kernel, so the same workload
runs identically on the simulation and the thread kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.apps.bounded_buffer import BoundedBuffer
from repro.apps.resource_allocator import SingleResourceAllocator
from repro.apps.shared_account import SharedAccount
from repro.history.database import HistoryDatabase
from repro.history.sink import EventSink
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Delay, Syscall
from repro.monitor.construct import MonitorBase

__all__ = [
    "WorkloadSpec",
    "ScenarioRun",
    "Scenario",
    "SCENARIOS",
    "build_scenario",
    "build_fleet",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters shared by every scenario.

    ``operations`` is the per-process operation count; ``think_time`` the
    inter-operation delay; ``service_time`` the time spent holding the
    monitor per operation (coordinator scenario only — the other monitors'
    critical sections are intrinsically short).
    """

    processes: int = 4
    operations: int = 50
    think_time: float = 0.05
    service_time: float = 0.01
    capacity: int = 4
    seed: int = 0

    @property
    def total_operations(self) -> int:
        return self.processes * self.operations


@dataclass
class ScenarioRun:
    """A built (not yet executed) scenario instance."""

    name: str
    monitor: MonitorBase
    bodies: list[Iterator[Syscall]]
    spec: WorkloadSpec
    #: Placement hint for a sharded detection cluster's ``LabelSharding``
    #: policy (``build_fleet`` sets it to the scenario name so instances
    #: of one scenario co-locate on a shard); None = no preference.
    shard_label: Optional[str] = None

    def spawn_all(self, kernel: Kernel, *, prefix: str = "") -> None:
        for index, body in enumerate(self.bodies):
            kernel.spawn(body, f"{prefix}{self.name}-{index}")


@dataclass(frozen=True)
class Scenario:
    """A named workload shape over one monitor type."""

    name: str
    description: str
    build: Callable[[Kernel, Optional[EventSink], WorkloadSpec], ScenarioRun]


# ---------------------------------------------------------------------------
# coordinator: producers / consumers over a bounded buffer
# ---------------------------------------------------------------------------


def _build_coordinator(
    kernel: Kernel, history: Optional[EventSink], spec: WorkloadSpec
) -> ScenarioRun:
    buffer = BoundedBuffer(
        kernel,
        capacity=spec.capacity,
        history=history,
        service_time=spec.service_time,
    )
    half = max(1, spec.processes // 2)

    def producer() -> Iterator[Syscall]:
        for item in range(spec.operations):
            yield Delay(spec.think_time)
            yield from buffer.send(item)

    def consumer() -> Iterator[Syscall]:
        for __ in range(spec.operations):
            yield Delay(spec.think_time)
            yield from buffer.receive()

    bodies = [producer() for __ in range(half)]
    bodies += [consumer() for __ in range(half)]
    return ScenarioRun("coordinator", buffer, bodies, spec)


# ---------------------------------------------------------------------------
# allocator: users competing for one resource
# ---------------------------------------------------------------------------


def _build_allocator(
    kernel: Kernel, history: Optional[EventSink], spec: WorkloadSpec
) -> ScenarioRun:
    allocator = SingleResourceAllocator(kernel, history=history)

    def user(index: int) -> Iterator[Syscall]:
        for __ in range(spec.operations):
            yield Delay(spec.think_time * (1 + 0.1 * index))
            yield from allocator.request()
            yield Delay(spec.service_time)
            yield from allocator.release()

    bodies = [user(index) for index in range(spec.processes)]
    return ScenarioRun("allocator", allocator, bodies, spec)


# ---------------------------------------------------------------------------
# manager: depositors / withdrawers over a shared account
# ---------------------------------------------------------------------------


def _build_manager(
    kernel: Kernel, history: Optional[EventSink], spec: WorkloadSpec
) -> ScenarioRun:
    account = SharedAccount(kernel, initial_balance=0, history=history)
    half = max(1, spec.processes // 2)

    def depositor() -> Iterator[Syscall]:
        for __ in range(spec.operations):
            yield Delay(spec.think_time)
            yield from account.deposit(10)

    def withdrawer() -> Iterator[Syscall]:
        for __ in range(spec.operations):
            yield Delay(spec.think_time)
            yield from account.withdraw(10)

    bodies = [depositor() for __ in range(half)]
    bodies += [withdrawer() for __ in range(half)]
    return ScenarioRun("manager", account, bodies, spec)


SCENARIOS: dict[str, Scenario] = {
    "coordinator": Scenario(
        "coordinator",
        "producers/consumers over a bounded buffer "
        "(communication coordinator)",
        _build_coordinator,
    ),
    "allocator": Scenario(
        "allocator",
        "competing users over a Request/Release allocator "
        "(resource-access-right allocator)",
        _build_allocator,
    ),
    "manager": Scenario(
        "manager",
        "depositors/withdrawers over a shared account "
        "(resource operation manager)",
        _build_manager,
    ),
}


def build_scenario(
    name: str,
    kernel: Kernel,
    history: Optional[EventSink],
    spec: Optional[WorkloadSpec] = None,
) -> ScenarioRun:
    """Instantiate a named scenario on ``kernel``."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return scenario.build(kernel, history, spec or WorkloadSpec())


def build_fleet(
    kernel: Kernel,
    count: int,
    spec: Optional[WorkloadSpec] = None,
    *,
    names: Optional[Sequence[str]] = None,
    sink_factory: Optional[Callable[[], Optional[EventSink]]] = None,
    shard_labels: Optional[Sequence[str]] = None,
) -> list[ScenarioRun]:
    """Instantiate ``count`` independent monitored workloads on one kernel.

    The multi-monitor driver behind the engine-scaling benchmark and the
    shared :class:`~repro.detection.engine.DetectionEngine` examples: each
    instance gets its own monitor and its own event sink (a fresh
    :class:`HistoryDatabase` unless ``sink_factory`` supplies something
    else, e.g. a :class:`~repro.history.bounded.BoundedHistory`), cycling
    round-robin through ``names`` (all scenarios, by default).

    Each instance's :attr:`ScenarioRun.shard_label` is set to its scenario
    name (or the corresponding entry of ``shard_labels``, cycled), so a
    :class:`~repro.detection.cluster.DetectionCluster` with the ``label``
    policy groups same-scenario monitors onto one shard.
    """
    if count <= 0:
        raise ValueError(f"fleet size must be positive, got {count}")
    chosen = tuple(names) if names else tuple(sorted(SCENARIOS))
    for name in chosen:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
            )
    factory = sink_factory or (lambda: HistoryDatabase())
    labels = tuple(shard_labels) if shard_labels else None
    fleet = []
    for index in range(count):
        run = SCENARIOS[chosen[index % len(chosen)]].build(
            kernel, factory(), spec or WorkloadSpec()
        )
        run.shard_label = (
            labels[index % len(labels)] if labels else run.name
        )
        fleet.append(run)
    return fleet
