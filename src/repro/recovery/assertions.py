"""User-supplied monitor assertions (paper Section 5, first extension).

An assertion is a named predicate over (application state, scheduling
snapshot) declared next to the monitor and evaluated at every detector
checkpoint — the "run time assertion checking" the paper proposes for
validating functional operations, complementing the concurrency-control
rules which are application-agnostic.

Example::

    checker = AssertionChecker(buffer_monitor)
    checker.add("occupancy-in-range",
                lambda snap: 0 <= buffer.occupancy <= buffer.capacity)
    checker.add("no-withdraw-overdraft", lambda snap: account.balance >= 0)

    # inside the detector loop
    reports = checker.evaluate()

A failing assertion produces a :class:`~repro.detection.reports.FaultReport`
under the ``ST-AS`` rule id so it flows through the same report stream as
the concurrency-control violations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Union

from repro.detection.reports import FaultReport
from repro.history.states import SchedulingState
from repro.monitor.construct import Monitor, MonitorBase

__all__ = ["MonitorAssertion", "AssertionChecker", "ASSERTION_RULE"]


class _AssertionRule(enum.Enum):
    """Rule id namespace for assertion failures."""

    ASSERTION_FAILED = "ST-AS"


ASSERTION_RULE = _AssertionRule.ASSERTION_FAILED


@dataclass(frozen=True)
class MonitorAssertion:
    """One named invariant over the monitor's state."""

    name: str
    predicate: Callable[[SchedulingState], bool]
    description: str = ""

    def holds(self, snapshot: SchedulingState) -> bool:
        return bool(self.predicate(snapshot))


class AssertionChecker:
    """Evaluates declared assertions against live monitor snapshots."""

    def __init__(self, target: Union[Monitor, MonitorBase]) -> None:
        self._monitor = (
            target.monitor if isinstance(target, MonitorBase) else target
        )
        self._assertions: list[MonitorAssertion] = []
        self.reports: list[FaultReport] = []

    @property
    def assertions(self) -> tuple[MonitorAssertion, ...]:
        return tuple(self._assertions)

    def add(
        self,
        name: str,
        predicate: Callable[[SchedulingState], bool],
        description: str = "",
    ) -> MonitorAssertion:
        """Declare an assertion; returns the created record."""
        if any(existing.name == name for existing in self._assertions):
            raise ValueError(f"assertion {name!r} already declared")
        assertion = MonitorAssertion(name, predicate, description)
        self._assertions.append(assertion)
        return assertion

    def evaluate(self) -> list[FaultReport]:
        """Check every assertion against a fresh snapshot.

        Returns (and retains) reports for the assertions that failed.  A
        predicate that *raises* also counts as a failure — a broken
        assertion must never silently pass.
        """
        snapshot = self._monitor.snapshot()
        new_reports: list[FaultReport] = []
        for assertion in self._assertions:
            try:
                ok = assertion.holds(snapshot)
                detail = "" if ok else "predicate returned False"
            except Exception as exc:  # noqa: BLE001 - reported, not hidden
                ok = False
                detail = f"predicate raised {type(exc).__name__}: {exc}"
            if not ok:
                new_reports.append(
                    FaultReport(
                        rule=ASSERTION_RULE,
                        message=(
                            f"assertion {assertion.name!r} failed: {detail}"
                            + (
                                f" ({assertion.description})"
                                if assertion.description
                                else ""
                            )
                        ),
                        monitor=self._monitor.name,
                        detected_at=snapshot.time,
                    )
                )
        self.reports.extend(new_reports)
        return new_reports
