"""Extensions the paper names as future work (Section 5).

Two extensions turn the fault-*detecting* monitor into something closer to
a fault-*tolerant* one:

* :mod:`repro.recovery.assertions` — "predefined and user-supplied
  assertions ... specified as part of monitor declarations and used for
  checking the functional operations and external use of the monitors".
  Assertions are predicates over the monitor's application state and
  scheduling snapshot, evaluated at every checkpoint.
* :mod:`repro.recovery.strategies` — "error recovery mechanisms should be
  incorporated into the model to handle the faults detected": a supervisor
  maps fault reports to recovery actions (expel a stuck process, rebuild
  queues from the model, raise an alarm) and applies them.
"""

from repro.recovery.assertions import AssertionChecker, MonitorAssertion
from repro.recovery.strategies import (
    AlarmStrategy,
    ExpelStrategy,
    RecoveryAction,
    RecoverySupervisor,
    RecoveryStrategy,
    ResetQueuesStrategy,
)

__all__ = [
    "MonitorAssertion",
    "AssertionChecker",
    "RecoveryAction",
    "RecoveryStrategy",
    "AlarmStrategy",
    "ExpelStrategy",
    "ResetQueuesStrategy",
    "RecoverySupervisor",
]
