"""Error-recovery strategies (paper Section 5, second extension).

"A fault tolerant system detects errors created as the effect of a fault
and in addition, applies error recovery techniques to restore and continue
the normal operations."  The supervisor implements the skeleton of that
extension: each detected :class:`~repro.detection.reports.FaultReport` is
offered to an ordered list of strategies; the first one that applies
performs its action on the monitor.

Shipped strategies (deliberately conservative — recovery must never make a
healthy monitor worse).  The *destructive* strategies additionally require
:attr:`~repro.detection.reports.Confidence.CONFIRMED` reports: a finding
downgraded to DEGRADED came out of a lossy checkpoint window and may be an
artefact of the dropped events, so it can raise an alarm but must never
expel a process or reset queues.

* :class:`AlarmStrategy` — applies to everything; records an alarm and
  optionally calls a user callback.  The paper's minimum viable recovery.
* :class:`ExpelStrategy` — for Tmax violations (a process wedged inside
  the monitor, e.g. terminated there): forcibly vacates the Running slot
  and admits the next waiter, un-wedging the monitor.
* :class:`ResetQueuesStrategy` — for Running-set divergence where a stale
  entry occupies the monitor with no live process behind it.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.detection.detector import FaultDetector
from repro.detection.durability import report_key
from repro.detection.reports import Confidence, FaultReport
from repro.detection.rules import STRule
from repro.monitor.construct import Monitor

__all__ = [
    "RecoveryAction",
    "RecoveryRecord",
    "RecoveryStrategy",
    "AlarmStrategy",
    "ExpelStrategy",
    "ResetQueuesStrategy",
    "RecoverySupervisor",
]


class RecoveryAction(enum.Enum):
    """What a strategy did about a report."""

    NONE = "none"
    ALARM = "alarm"
    EXPELLED = "expelled"
    QUEUES_RESET = "queues-reset"


@dataclass(frozen=True)
class RecoveryRecord:
    """One applied recovery action, for the audit log."""

    report: FaultReport
    action: RecoveryAction
    detail: str = ""


class RecoveryStrategy(abc.ABC):
    """Maps one fault report to zero or one recovery action."""

    @abc.abstractmethod
    def applies_to(self, report: FaultReport) -> bool:
        """True when this strategy wants to handle the report."""

    @abc.abstractmethod
    def apply(self, monitor: Monitor, report: FaultReport) -> RecoveryRecord:
        """Perform the action; must be idempotent per report."""


class AlarmStrategy(RecoveryStrategy):
    """Record an alarm (and optionally notify) for any report."""

    def __init__(
        self, callback: Optional[Callable[[FaultReport], None]] = None
    ) -> None:
        self._callback = callback
        self.alarms: list[FaultReport] = []

    def applies_to(self, report: FaultReport) -> bool:
        return True

    def apply(self, monitor: Monitor, report: FaultReport) -> RecoveryRecord:
        self.alarms.append(report)
        if self._callback is not None:
            self._callback(report)
        return RecoveryRecord(report, RecoveryAction.ALARM)


class ExpelStrategy(RecoveryStrategy):
    """Evict a process wedged inside the monitor (Tmax violations).

    The canonical target is fault I.c.4 — a process that terminated inside
    the monitor and will never exit.  Expelling vacates its Running slot
    and admits the next waiter, restoring liveness.
    """

    def applies_to(self, report: FaultReport) -> bool:
        return (
            report.rule is STRule.TMAX_EXCEEDED
            and bool(report.pids)
            and report.confidence is Confidence.CONFIRMED
        )

    def apply(self, monitor: Monitor, report: FaultReport) -> RecoveryRecord:
        expelled = []
        for pid in report.pids:
            if monitor.core.is_inside(pid):
                for wake in monitor.kernel.atomic(
                    lambda p=pid: monitor.core.expel(p)
                ):
                    monitor.kernel.make_ready(wake)
                expelled.append(pid)
        if not expelled:
            return RecoveryRecord(
                report, RecoveryAction.NONE, "nothing left to expel"
            )
        return RecoveryRecord(
            report,
            RecoveryAction.EXPELLED,
            f"expelled {', '.join(f'P{p}' for p in expelled)}",
        )


class ResetQueuesStrategy(RecoveryStrategy):
    """Vacate stale Running entries whose process is no longer alive.

    Targets the Running-set divergence reports (a held monitor with a dead
    or departed owner).  Only entries whose pid the kernel reports as dead
    are removed — a *live* divergent process is a detector finding, not
    something recovery may kill.
    """

    def applies_to(self, report: FaultReport) -> bool:
        return (
            report.rule is STRule.RUNNING_MATCHES
            and report.confidence is Confidence.CONFIRMED
        )

    def apply(self, monitor: Monitor, report: FaultReport) -> RecoveryRecord:
        from repro.errors import UnknownProcessError

        cleared = []
        for entry in monitor.core.snapshot().running:
            try:
                record = monitor.kernel.process(entry.pid)
                alive = record.alive
            except UnknownProcessError:
                alive = False
            if not alive:
                for wake in monitor.kernel.atomic(
                    lambda p=entry.pid: monitor.core.expel(p)
                ):
                    monitor.kernel.make_ready(wake)
                cleared.append(entry.pid)
        if not cleared:
            return RecoveryRecord(
                report, RecoveryAction.NONE, "no dead owners found"
            )
        return RecoveryRecord(
            report,
            RecoveryAction.QUEUES_RESET,
            f"cleared dead owners {', '.join(f'P{p}' for p in cleared)}",
        )


class RecoverySupervisor:
    """Couples a detector with an ordered strategy list.

    Usage::

        supervisor = RecoverySupervisor(detector,
                                        [ExpelStrategy(), AlarmStrategy()])
        ...
        new_reports = supervisor.checkpoint_and_recover()
    """

    def __init__(
        self,
        detector: FaultDetector,
        strategies: list[RecoveryStrategy],
    ) -> None:
        self._detector = detector
        self._strategies = list(strategies)
        self.records: list[RecoveryRecord] = []
        #: Report keys already acted on.  A restarted detector replays its
        #: journal (see :mod:`repro.detection.durability`) — re-offering a
        #: report whose action was already applied must be a no-op, not a
        #: second expulsion.
        self.handled: set[str] = set()

    @property
    def detector(self) -> FaultDetector:
        return self._detector

    def checkpoint_and_recover(self) -> list[FaultReport]:
        """Run one detector checkpoint and recover from its findings."""
        new_reports = self._detector.checkpoint()
        for report in new_reports:
            self.recover(report)
        return new_reports

    def recover(self, report: FaultReport) -> RecoveryRecord:
        """Offer one report to the strategies; first applicable one wins.

        Idempotent per report: a report already recovered from (matched by
        its stable :func:`~repro.detection.durability.report_key`) is not
        offered to the strategies again — crash/restart replay of the
        report journal must not re-apply destructive actions.
        """
        key = report_key(report)
        if key in self.handled:
            record = RecoveryRecord(
                report, RecoveryAction.NONE, "already recovered (replay)"
            )
            self.records.append(record)
            return record
        self.handled.add(key)
        for strategy in self._strategies:
            if strategy.applies_to(report):
                record = strategy.apply(self._detector.monitor, report)
                self.records.append(record)
                return record
        record = RecoveryRecord(report, RecoveryAction.NONE, "no strategy")
        self.records.append(record)
        return record
