"""Cyclic barrier — a resource-operation-manager monitor using broadcast.

``parties`` processes call ``Await``; the last arrival flips the generation
counter and broadcasts, releasing the whole cohort.  Reusable across
rounds.  Exercises the Mesa broadcast extension and the generation-counter
pattern (a ``while`` guard over state that the wake-up does not itself
prove).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.history.sink import EventSink
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Syscall
from repro.monitor.classification import MonitorType
from repro.monitor.construct import MonitorBase
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.procedures import procedure
from repro.monitor.semantics import Discipline

__all__ = ["CyclicBarrier"]


class CyclicBarrier(MonitorBase):
    """Reusable synchronisation barrier for ``parties`` processes."""

    def __init__(
        self,
        kernel: Kernel,
        parties: int,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        name: str = "barrier",
    ) -> None:
        if parties < 2:
            raise ValueError(f"a barrier needs >= 2 parties, got {parties}")
        self._name = name
        self._parties = parties
        self._arrived = 0
        self._generation = 0
        super().__init__(kernel, history=history, hooks=hooks)

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.OPERATION_MANAGER,
            procedures=("Await",),
            conditions=("released",),
            discipline=Discipline.SIGNAL_AND_CONTINUE,
        )

    @property
    def parties(self) -> int:
        return self._parties

    @property
    def generation(self) -> int:
        """Number of completed barrier rounds."""
        return self._generation

    @procedure("Await")
    def await_barrier(self) -> Iterator[Syscall]:
        """Block until all ``parties`` processes have arrived.

        Returns the index of the completed round.
        """
        generation = self._generation
        self._arrived += 1
        if self._arrived == self._parties:
            self._arrived = 0
            self._generation += 1
            self.broadcast("released")
            return generation
        while self._generation == generation:
            yield from self.wait("released")
        return generation
