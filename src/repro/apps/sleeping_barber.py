"""Sleeping barber — a communication-coordinator-style rendezvous monitor.

Customers and the barber exchange "work" through the shop: a customer
deposits itself into the waiting room (bounded by the number of chairs) and
the barber consumes customers one at a time.  Runs under the Mesa
discipline because haircut completion is broadcast to every seated customer
(each re-checks its own ticket).

Used by the examples and by workload generation; it is deliberately a
different *shape* from the bounded buffer (rendezvous with balking) while
still exercising Enter/Wait/Signal traffic heavily.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.history.sink import EventSink
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Syscall
from repro.monitor.classification import MonitorType
from repro.monitor.construct import MonitorBase
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.procedures import procedure
from repro.monitor.semantics import Discipline

__all__ = ["BarberShop"]


class BarberShop(MonitorBase):
    """Waiting room with ``chairs`` seats, one barber, balking customers."""

    def __init__(
        self,
        kernel: Kernel,
        chairs: int = 3,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        name: str = "barbershop",
    ) -> None:
        if chairs < 1:
            raise ValueError(f"the shop needs >= 1 chair, got {chairs}")
        self._name = name
        self._chairs = chairs
        self._waiting = 0
        self._next_ticket = 0
        self._served = 0
        self._balked = 0
        super().__init__(kernel, history=history, hooks=hooks)

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.COMMUNICATION_COORDINATOR,
            procedures=("GetHaircut", "NextCustomer", "FinishCut"),
            conditions=("customers", "done"),
            rmax=self._chairs,
            discipline=Discipline.SIGNAL_AND_CONTINUE,
        )

    # ------------------------------------------------------------- accounting

    @property
    def chairs(self) -> int:
        return self._chairs

    @property
    def served(self) -> int:
        return self._served

    @property
    def balked(self) -> int:
        """Customers turned away because every chair was taken."""
        return self._balked

    def resource_count(self) -> int:
        """``R#``: free chairs in the waiting room."""
        return self._chairs - self._waiting

    # ------------------------------------------------------------- procedures

    @procedure("GetHaircut")
    def get_haircut(self) -> Iterator[Syscall]:
        """Customer: sit down if a chair is free, wait until served.

        Returns True when the haircut happened, False when the customer
        balked (no free chair).
        """
        if self._waiting >= self._chairs:
            self._balked += 1
            return False
        self._waiting += 1
        ticket = self._next_ticket
        self._next_ticket += 1
        self._mesa_signal("customers")
        while self._served <= ticket:
            yield from self.wait("done")
        return True

    @procedure("NextCustomer")
    def next_customer(self) -> Iterator[Syscall]:
        """Barber: sleep until a customer sits down, then take one."""
        while self._waiting == 0:
            yield from self.wait("customers")
        self._waiting -= 1

    @procedure("FinishCut")
    def finish_cut(self) -> Iterator[Syscall]:
        """Barber: declare the current haircut done; release its customer."""
        self._served += 1
        self.broadcast("done")
        return
        yield  # pragma: no cover - makes this a generator function

    def _mesa_signal(self, cond: str) -> None:
        """Drive a Mesa signal (never blocks under signal-and-continue)."""
        for __ in self._monitor.signal(cond):  # pragma: no cover - no blocks
            raise AssertionError("Mesa signal must not block")
