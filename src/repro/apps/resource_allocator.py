"""Resource-access-right allocators (paper Section 2.1, second monitor type).

The allocator only mediates the *right* to use a resource: a process calls
``Request`` to acquire and ``Release`` to give back; using the resource
happens outside the monitor.  The declared partial order of procedure calls
is ``(Request ; Release)*`` per process — the constraint whose violations
form the level-III (user-process-level) faults:

* III.a — Release without a preceding Request,
* III.b — Request never followed by Release (resource leaked),
* III.c — Request repeated without an intervening Release (self-deadlock).

Algorithm-3 checks these in real time via the Request-List.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.history.sink import EventSink
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Syscall
from repro.monitor.classification import MonitorType
from repro.monitor.construct import MonitorBase
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.procedures import procedure

__all__ = ["SingleResourceAllocator", "CountingResourceAllocator"]


class SingleResourceAllocator(MonitorBase):
    """Grants exclusive access to one resource via Request/Release."""

    def __init__(
        self,
        kernel: Kernel,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        name: str = "allocator",
    ) -> None:
        self._name = name
        self._busy = False
        self._holder: Optional[int] = None
        self._grants = 0
        super().__init__(kernel, history=history, hooks=hooks)

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("Request", "Release"),
            conditions=("free",),
            call_order="(Request ; Release)*",
        )

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def holder(self) -> Optional[int]:
        """Pid currently holding the resource, if any."""
        return self._holder

    @property
    def grants(self) -> int:
        """Total number of grants handed out (test/bench accounting)."""
        return self._grants

    @procedure("Request")
    def request(self) -> Iterator[Syscall]:
        """Acquire the access right, blocking while another process holds it."""
        if self._busy:
            yield from self.wait("free")
        self._busy = True
        self._holder = self.kernel.current_pid()
        self._grants += 1

    @procedure("Release")
    def release(self) -> Iterator[Syscall]:
        """Give the access right back, waking one requester if queued."""
        self._busy = False
        self._holder = None
        self.signal_exit("free")
        # Generator protocol even though this body never blocks: the
        # signal-exit above already left the monitor.
        return
        yield  # pragma: no cover - makes this a generator function


class CountingResourceAllocator(MonitorBase):
    """Grants up to ``units`` simultaneous access rights (counting allocator).

    The same Request/Release discipline as the single allocator, but the
    resource has multiple interchangeable units (think: a pool of tape
    drives).  Still a resource-access-right allocator: the units themselves
    live outside the monitor.
    """

    def __init__(
        self,
        kernel: Kernel,
        units: int,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        name: str = "pool",
    ) -> None:
        if units <= 0:
            raise ValueError(f"allocator must manage >= 1 unit, got {units}")
        self._name = name
        self._units = units
        self._available = units
        self._grants = 0
        super().__init__(kernel, history=history, hooks=hooks)

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("Request", "Release"),
            conditions=("free",),
            call_order="(Request ; Release)*",
            rmax=self._units,
        )

    @property
    def units(self) -> int:
        return self._units

    @property
    def available(self) -> int:
        return self._available

    @property
    def grants(self) -> int:
        return self._grants

    @procedure("Request")
    def request(self) -> Iterator[Syscall]:
        """Take one unit, blocking while none are available."""
        if self._available == 0:
            yield from self.wait("free")
        self._available -= 1
        self._grants += 1

    @procedure("Release")
    def release(self) -> Iterator[Syscall]:
        """Return one unit; hands it directly to one blocked requester."""
        self._available += 1
        self.signal_exit("free")
        return
        yield  # pragma: no cover - makes this a generator function
