"""Readers–writers monitor (Hoare 1974, §5) with a declared call order.

Classified as a resource-access-right allocator: the monitor grants read or
write access rights (``StartRead``/``StartWrite``) and takes them back
(``EndRead``/``EndWrite``); the protected data itself lives outside.  The
declared path expression::

    ((StartRead ; EndRead) | (StartWrite ; EndWrite))*

is checked per process by the generalised Algorithm-3, demonstrating
ordering constraints beyond the built-in Request/Release pair.

The implementation is Hoare's classic chained-wakeup scheme under the
signal-exit discipline: a reader admitted to the resource immediately
signals the next blocked reader, so one writer hand-off releases the whole
reader batch one by one.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.history.sink import EventSink
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Syscall
from repro.monitor.classification import MonitorType
from repro.monitor.construct import MonitorBase
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.procedures import procedure

__all__ = ["ReadersWriters"]


class ReadersWriters(MonitorBase):
    """Grants shared read access or exclusive write access."""

    def __init__(
        self,
        kernel: Kernel,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        name: str = "rwlock",
    ) -> None:
        self._name = name
        self._readers = 0
        self._writing = False
        self._reads_served = 0
        self._writes_served = 0
        super().__init__(kernel, history=history, hooks=hooks)

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("StartRead", "EndRead", "StartWrite", "EndWrite"),
            conditions=("oktoread", "oktowrite"),
            call_order="((StartRead ; EndRead) | (StartWrite ; EndWrite))*",
        )

    # ------------------------------------------------------------- accounting

    @property
    def active_readers(self) -> int:
        return self._readers

    @property
    def writing(self) -> bool:
        return self._writing

    @property
    def reads_served(self) -> int:
        return self._reads_served

    @property
    def writes_served(self) -> int:
        return self._writes_served

    # ------------------------------------------------------------- procedures

    @procedure("StartRead")
    def start_read(self) -> Iterator[Syscall]:
        """Acquire shared access; blocks while a writer holds or awaits it.

        Writers waiting on ``oktowrite`` take priority over new readers so
        a stream of readers cannot starve a writer.
        """
        if self._writing or self.waiting("oktowrite") > 0:
            yield from self.wait("oktoread")
        self._readers += 1
        self._reads_served += 1
        # Chained wakeup: release the next queued reader in the batch.
        self.signal_exit("oktoread")

    @procedure("EndRead")
    def end_read(self) -> Iterator[Syscall]:
        """Drop shared access; the last reader out admits a writer."""
        self._readers -= 1
        if self._readers == 0:
            self.signal_exit("oktowrite")
        return
        yield  # pragma: no cover - makes this a generator function

    @procedure("StartWrite")
    def start_write(self) -> Iterator[Syscall]:
        """Acquire exclusive access; blocks while anyone reads or writes."""
        if self._readers > 0 or self._writing:
            yield from self.wait("oktowrite")
        self._writing = True
        self._writes_served += 1

    @procedure("EndWrite")
    def end_write(self) -> Iterator[Syscall]:
        """Drop exclusive access, preferring queued readers next."""
        self._writing = False
        if self.waiting("oktoread") > 0:
            self.signal_exit("oktoread")
        else:
            self.signal_exit("oktowrite")
        return
        yield  # pragma: no cover - makes this a generator function
