"""Bounded buffer — the communication-coordinator monitor of Section 2.1.

Processes communicate by calling ``Send`` and ``Receive``; the monitor
handles both scheduling and the buffer operations.  The paper states four
integrity constraints for this monitor type:

1. a Send may be delayed iff the buffer is full,
2. a Receive may be delayed iff the buffer is empty,
3. successful Receives never exceed successful Sends (``r <= s``),
4. successful Sends never exceed capacity + successful Receives
   (``s <= r + Rmax``).

Condition naming follows the paper exactly: a sender blocked because the
buffer is *full* waits on condition ``"full"``; a receiver blocked because
it is *empty* waits on ``"empty"``.  ``R#`` (the available-resource count)
is the number of **free slots**, so constraint 1 reads "Wait on ``full``
implies R# = 0" and constraint 2 "Wait on ``empty`` implies R# = Rmax" —
FD-Rule 6 verbatim.

``BufferIntegrityFault`` selects a deliberately buggy variant of the
procedure logic, one per level-II fault of the taxonomy; the injection
campaigns use it to show Algorithm-2 catching each violation.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Iterator, Optional

from repro.history.sink import EventSink
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Delay, Syscall
from repro.monitor.classification import MonitorType
from repro.monitor.construct import MonitorBase
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.procedures import procedure
from repro.monitor.semantics import Discipline

__all__ = ["BufferIntegrityFault", "BoundedBuffer", "HoareBoundedBuffer"]


class BufferIntegrityFault(enum.Enum):
    """Level-II (monitor-procedure-level) faults injectable into the buffer."""

    NONE = "none"
    #: Fault II.a: Send is delayed although the buffer is not full.
    SEND_SPURIOUS_DELAY = "send-spurious-delay"
    #: Fault II.a (second form): Send is not delayed although the buffer is
    #: full — it overwrites; s grows beyond r + Rmax (fault II.d).
    SEND_IGNORES_FULL = "send-ignores-full"
    #: Fault II.b: Receive is delayed although the buffer is not empty.
    RECEIVE_SPURIOUS_DELAY = "receive-spurious-delay"
    #: Fault II.b (second form): Receive is not delayed although the buffer
    #: is empty — r grows beyond s (fault II.c).
    RECEIVE_IGNORES_EMPTY = "receive-ignores-empty"


class BoundedBuffer(MonitorBase):
    """Monitor-protected FIFO buffer with ``Send``/``Receive`` procedures."""

    def __init__(
        self,
        kernel: Kernel,
        capacity: int,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        integrity_fault: BufferIntegrityFault = BufferIntegrityFault.NONE,
        service_time: float = 0.0,
        name: str = "buffer",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive, got {capacity}")
        if service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {service_time}")
        self._capacity = capacity
        self._service = service_time
        self._items: deque[Any] = deque()
        self._fault = integrity_fault
        self._name = name
        super().__init__(kernel, history=history, hooks=hooks)

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.COMMUNICATION_COORDINATOR,
            procedures=("Send", "Receive"),
            conditions=("full", "empty"),
            rmax=self._capacity,
        )

    # ------------------------------------------------------------- resources

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def occupancy(self) -> int:
        return len(self._items)

    def resource_count(self) -> int:
        """``R#``: the number of free buffer slots."""
        return self._capacity - len(self._items)

    # ------------------------------------------------------------- procedures
    # Written against the paper's signal-exit discipline: a single `if` check
    # suffices because the resumed process receives the monitor directly
    # from its signaller with the condition guaranteed to hold.

    @procedure("Send")
    def send(self, item: Any) -> Iterator[Syscall]:
        """Deposit ``item``, blocking while the buffer is full."""
        if self._should_delay_send():
            yield from self.wait("full")
        if self._service:
            # Time spent copying into the buffer while holding the monitor:
            # this is what creates entry-queue contention under load.
            yield Delay(self._service)
        self._deposit(item)
        self.signal_exit("empty")

    @procedure("Receive")
    def receive(self) -> Iterator[Syscall]:
        """Remove and return the oldest item, blocking while empty."""
        if self._should_delay_receive():
            yield from self.wait("empty")
        if self._service:
            yield Delay(self._service)
        item = self._take()
        self.signal_exit("full")
        return item

    # ----------------------------------------------- fault-selectable innards

    def _should_delay_send(self) -> bool:
        full = len(self._items) >= self._capacity
        if self._fault is BufferIntegrityFault.SEND_SPURIOUS_DELAY:
            return True  # delayed even when not full
        if self._fault is BufferIntegrityFault.SEND_IGNORES_FULL:
            return False  # never delayed, even when full
        return full

    def _should_delay_receive(self) -> bool:
        empty = not self._items
        if self._fault is BufferIntegrityFault.RECEIVE_SPURIOUS_DELAY:
            return True
        if self._fault is BufferIntegrityFault.RECEIVE_IGNORES_EMPTY:
            return False
        return empty

    def _deposit(self, item: Any) -> None:
        if (
            self._fault is BufferIntegrityFault.SEND_IGNORES_FULL
            and len(self._items) >= self._capacity
        ):
            # Buggy implementation clobbers the oldest item instead of
            # blocking: occupancy stays put while `s` keeps climbing.
            self._items.popleft()
        self._items.append(item)

    def _take(self) -> Any:
        if not self._items:
            # Only reachable under RECEIVE_IGNORES_EMPTY: the buggy
            # implementation fabricates a value from an empty buffer.
            return None
        return self._items.popleft()


class HoareBoundedBuffer(BoundedBuffer):
    """The same buffer under the Hoare *signal-and-wait* discipline.

    Instead of the combined Signal-Exit, each procedure signals mid-body:
    the signaller is parked on the urgent stack while the resumed waiter
    runs, and continues (then auto-exits) once the waiter releases the
    monitor.  Functionally identical to :class:`BoundedBuffer`; exists to
    exercise the urgent-stack paths of the construct and the extended
    checker on a realistic workload.
    """

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.COMMUNICATION_COORDINATOR,
            procedures=("Send", "Receive"),
            conditions=("full", "empty"),
            rmax=self._capacity,
            discipline=Discipline.SIGNAL_AND_WAIT,
        )

    @procedure("Send")
    def send(self, item: Any) -> Iterator[Syscall]:
        if self._should_delay_send():
            yield from self.wait("full")
        if self._service:
            yield Delay(self._service)
        self._deposit(item)
        # Hoare signal: if a receiver waits, it runs now and we park on the
        # urgent stack; the @procedure wrapper exits for us afterwards.
        yield from self.monitor.signal("empty")

    @procedure("Receive")
    def receive(self) -> Iterator[Syscall]:
        if self._should_delay_receive():
            yield from self.wait("empty")
        if self._service:
            yield Delay(self._service)
        item = self._take()
        yield from self.monitor.signal("full")
        return item
