"""Dining philosophers on a monitor fork table (Hoare 1974, §6).

``ForkTable`` is a resource-access-right allocator under the Mesa
(signal-and-continue) discipline — ``put_down`` must wake up to *two*
neighbours, which the single-shot signal-exit primitive cannot express, so
this app doubles as the exercise for the extended discipline support.

The deadlock-free solution is Hoare's: a philosopher picks up both forks
atomically inside the monitor and waits on a private condition until both
are free.  For contrast (and for the detection examples) :func:`philosopher`
can also drive a *deadlock-prone* protocol where each fork is a separate
:class:`~repro.apps.resource_allocator.SingleResourceAllocator` and every
philosopher grabs left-then-right — five of them reliably deadlock under a
suitable schedule, which the simulation kernel reports.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.history.sink import EventSink
from repro.ids import Pid
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Delay, Syscall
from repro.monitor.classification import MonitorType
from repro.monitor.construct import MonitorBase
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.procedures import procedure
from repro.monitor.semantics import Discipline

__all__ = ["ForkTable", "philosopher", "greedy_philosopher"]

_THINKING = 0
_HUNGRY = 1
_EATING = 2


class ForkTable(MonitorBase):
    """Monitor granting each philosopher both forks atomically."""

    def __init__(
        self,
        kernel: Kernel,
        seats: int = 5,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        name: str = "forktable",
    ) -> None:
        if seats < 2:
            raise ValueError(f"the table needs >= 2 seats, got {seats}")
        self._name = name
        self._seats = seats
        self._state = [_THINKING] * seats
        self._meals = [0] * seats
        super().__init__(kernel, history=history, hooks=hooks)

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("PickUp", "PutDown"),
            conditions=tuple(f"self{i}" for i in range(self._seats)),
            call_order="(PickUp ; PutDown)*",
            discipline=Discipline.SIGNAL_AND_CONTINUE,
        )

    @property
    def seats(self) -> int:
        return self._seats

    @property
    def meals(self) -> tuple[int, ...]:
        return tuple(self._meals)

    def _left(self, seat: int) -> int:
        return (seat - 1) % self._seats

    def _right(self, seat: int) -> int:
        return (seat + 1) % self._seats

    def _may_eat(self, seat: int) -> bool:
        return (
            self._state[seat] == _HUNGRY
            and self._state[self._left(seat)] != _EATING
            and self._state[self._right(seat)] != _EATING
        )

    def _test(self, seat: int) -> None:
        if self._may_eat(seat):
            self._state[seat] = _EATING
            self.signal(f"self{seat}")

    @procedure("PickUp")
    def pick_up(self, seat: int) -> Iterator[Syscall]:
        """Acquire both forks, blocking until neither neighbour eats."""
        self._state[seat] = _HUNGRY
        self._test(seat)
        while self._state[seat] != _EATING:
            yield from self.wait(f"self{seat}")
        self._meals[seat] += 1

    @procedure("PutDown")
    def put_down(self, seat: int) -> Iterator[Syscall]:
        """Release both forks and let either neighbour eat if now able."""
        self._state[seat] = _THINKING
        self._test(self._left(seat))
        self._test(self._right(seat))
        return
        yield  # pragma: no cover - makes this a generator function

    def signal(self, cond: str) -> None:  # type: ignore[override]
        """Mesa signal as a plain call (never blocks under this discipline)."""
        for __ in self._monitor.signal(cond):  # pragma: no cover - no blocks
            raise AssertionError("Mesa signal must not block")


def philosopher(
    table: ForkTable,
    seat: int,
    meals: int,
    *,
    think: float = 0.3,
    eat: float = 0.2,
) -> Iterator[Syscall]:
    """Process body: think / pick up / eat / put down, ``meals`` times."""
    for __ in range(meals):
        yield Delay(think)
        yield from table.pick_up(seat)
        yield Delay(eat)
        yield from table.put_down(seat)


def greedy_philosopher(
    forks: Sequence,  # Sequence[SingleResourceAllocator]
    seat: int,
    meals: int,
    *,
    think: float = 0.3,
    eat: float = 0.2,
) -> Iterator[Syscall]:
    """Deadlock-prone body: grab the left fork, then the right.

    With N philosophers each holding their left fork, the right-fork
    requests form a cycle; the simulation kernel detects the resulting
    global deadlock, and Algorithm-3's Tlimit timer reports the never-
    released forks.
    """
    left = forks[seat]
    right = forks[(seat + 1) % len(forks)]
    for __ in range(meals):
        yield Delay(think)
        yield from left.request()
        yield Delay(0.05)  # the window that makes the cycle easy to hit
        yield from right.request()
        yield Delay(eat)
        yield from right.release()
        yield from left.release()
