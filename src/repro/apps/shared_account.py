"""Shared account — a resource-operation-manager monitor (Section 2.1).

The third monitor type: monitor and resource are combined into one shared
module.  Processes only issue the access operations (``Deposit`` /
``Withdraw``); requesting and releasing are implicit, so user processes
cannot misuse the resource — the paper's argument for this type's
modularity benefit.  The detector runs Algorithm-1 only.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.history.sink import EventSink
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Syscall
from repro.monitor.classification import MonitorType
from repro.monitor.construct import MonitorBase
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.procedures import procedure

__all__ = ["SharedAccount"]


class SharedAccount(MonitorBase):
    """A balance that withdrawals may not drive negative.

    ``Withdraw`` blocks on condition ``funds`` until the balance covers the
    requested amount.  Because the amount is caller-specific, a resumed
    withdrawer re-checks and possibly re-waits (a ``while`` guard) — and
    before re-waiting it cascades the signal onward so a different
    withdrawer whose amount *is* covered gets its chance.
    """

    def __init__(
        self,
        kernel: Kernel,
        initial_balance: int = 0,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        name: str = "account",
    ) -> None:
        if initial_balance < 0:
            raise ValueError("initial balance must be >= 0")
        self._name = name
        self._balance = initial_balance
        self._deposits = 0
        self._withdrawals = 0
        super().__init__(kernel, history=history, hooks=hooks)

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.OPERATION_MANAGER,
            procedures=("Deposit", "Withdraw"),
            conditions=("funds",),
        )

    @property
    def balance(self) -> int:
        return self._balance

    @property
    def deposits(self) -> int:
        return self._deposits

    @property
    def withdrawals(self) -> int:
        return self._withdrawals

    @procedure("Deposit")
    def deposit(self, amount: int) -> Iterator[Syscall]:
        """Add ``amount`` and hand the monitor to one blocked withdrawer."""
        if amount <= 0:
            raise ValueError(f"deposit amount must be positive, got {amount}")
        self._balance += amount
        self._deposits += 1
        self.signal_exit("funds")
        return
        yield  # pragma: no cover - makes this a generator function

    @procedure("Withdraw")
    def withdraw(self, amount: int) -> Iterator[Syscall]:
        """Remove ``amount``, blocking until the balance covers it."""
        if amount <= 0:
            raise ValueError(f"withdraw amount must be positive, got {amount}")
        while self._balance < amount:
            # The guard must be a loop: the amount is caller-specific, so a
            # wake-up only means "the balance changed", not "it now covers
            # this withdrawal".
            yield from self.wait("funds")
        self._balance -= amount
        self._withdrawals += 1
        if self._balance > 0 and self.waiting("funds") > 0:
            # Cascade: some remaining balance may satisfy the next waiter.
            self.signal_exit("funds")
