"""Application monitors — one per functional class of Section 2.1, plus
classic synchronisation workloads used by the examples and benchmarks.

* :class:`~repro.apps.bounded_buffer.BoundedBuffer` — *communication
  coordinator* (the paper's running example: Send/Receive with integrity
  constraints over buffer occupancy).
* :class:`~repro.apps.resource_allocator.SingleResourceAllocator` /
  :class:`~repro.apps.resource_allocator.CountingResourceAllocator` —
  *resource-access-right allocators* (Request/Release with a declared
  partial order, checked in real time by Algorithm-3).
* :class:`~repro.apps.shared_account.SharedAccount` — *resource operation
  manager* (implicit synchronisation; processes only issue operations).
* :class:`~repro.apps.readers_writers.ReadersWriters`,
  :class:`~repro.apps.dining_philosophers.ForkTable`,
  :class:`~repro.apps.sleeping_barber.BarberShop`,
  :class:`~repro.apps.barrier.CyclicBarrier` — classic workloads exercising
  waits, signals and ordering constraints in different shapes.
"""

from repro.apps.barrier import CyclicBarrier
from repro.apps.bounded_buffer import (
    BoundedBuffer,
    BufferIntegrityFault,
    HoareBoundedBuffer,
)
from repro.apps.dining_philosophers import ForkTable, philosopher
from repro.apps.h2o import WaterFactory
from repro.apps.readers_writers import ReadersWriters
from repro.apps.resource_allocator import (
    CountingResourceAllocator,
    SingleResourceAllocator,
)
from repro.apps.shared_account import SharedAccount
from repro.apps.sleeping_barber import BarberShop

__all__ = [
    "BoundedBuffer",
    "BufferIntegrityFault",
    "HoareBoundedBuffer",
    "SingleResourceAllocator",
    "CountingResourceAllocator",
    "SharedAccount",
    "ReadersWriters",
    "ForkTable",
    "philosopher",
    "BarberShop",
    "CyclicBarrier",
    "WaterFactory",
]
