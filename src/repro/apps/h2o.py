"""The H2O (building water molecules) barrier — a group-rendezvous monitor.

A classic synchronisation shape distinct from all the others in
:mod:`repro.apps`: hydrogen and oxygen processes arrive independently, and
the monitor releases them strictly in complete 2H+1O molecules — no atom
may cross while its molecule is incomplete, and no atom is claimed by two
molecules.  Each atom takes a per-species *ticket* on arrival; molecule
``m`` consists of hydrogens ``2m`` and ``2m+1`` and oxygen ``m``, so an
atom crosses exactly when the molecule counter has passed its ticket.
Runs under the Mesa discipline with broadcast (the generation pattern).

Classified as a resource-operation-manager: processes just call ``BondH``
or ``BondO`` and the monitor does all the coordination.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.history.sink import EventSink
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Syscall
from repro.monitor.classification import MonitorType
from repro.monitor.construct import MonitorBase
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.procedures import procedure
from repro.monitor.semantics import Discipline

__all__ = ["WaterFactory"]


class WaterFactory(MonitorBase):
    """Releases hydrogens and oxygens in complete 2H + 1O molecules."""

    def __init__(
        self,
        kernel: Kernel,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        name: str = "water",
    ) -> None:
        self._name = name
        #: Atoms that have ever arrived, per species (ticket counters).
        self._hydrogens_arrived = 0
        self._oxygens_arrived = 0
        #: Completed molecules.
        self._molecules = 0
        super().__init__(kernel, history=history, hooks=hooks)

    def declare(self) -> MonitorDeclaration:
        return MonitorDeclaration(
            name=self._name,
            mtype=MonitorType.OPERATION_MANAGER,
            procedures=("BondH", "BondO"),
            conditions=("bonded",),
            discipline=Discipline.SIGNAL_AND_CONTINUE,
        )

    @property
    def molecules(self) -> int:
        """Completed molecules so far."""
        return self._molecules

    @property
    def banked(self) -> tuple[int, int]:
        """(hydrogens, oxygens) arrived but not yet part of a molecule."""
        return (
            self._hydrogens_arrived - 2 * self._molecules,
            self._oxygens_arrived - self._molecules,
        )

    def _complete_molecules(self) -> None:
        """Advance the molecule counter as far as the banked atoms allow."""
        completed = False
        while (
            self._hydrogens_arrived - 2 * self._molecules >= 2
            and self._oxygens_arrived - self._molecules >= 1
        ):
            self._molecules += 1
            completed = True
        if completed:
            self.broadcast("bonded")

    @procedure("BondH")
    def bond_hydrogen(self) -> Iterator[Syscall]:
        """Contribute one hydrogen; returns its molecule's index."""
        ticket = self._hydrogens_arrived
        self._hydrogens_arrived += 1
        self._complete_molecules()
        while ticket >= 2 * self._molecules:
            yield from self.wait("bonded")
        return ticket // 2

    @procedure("BondO")
    def bond_oxygen(self) -> Iterator[Syscall]:
        """Contribute one oxygen; returns its molecule's index."""
        ticket = self._oxygens_arrived
        self._oxygens_arrived += 1
        self._complete_molecules()
        while ticket >= self._molecules:
            yield from self.wait("bonded")
        return ticket
