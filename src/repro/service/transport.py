"""Transports for the detection service: deterministic sim and real sockets.

:class:`SimNetwork` moves bytes between :class:`DetectionClient`\\ s and a
:class:`DetectionServer` entirely in memory, one :meth:`SimNetwork.pump`
at a time, so a :class:`~repro.kernel.sim.SimKernel` run is bit-for-bit
reproducible — including every network fault the chaos campaign injects:

* :meth:`~SimNetwork.cut` / :meth:`~SimNetwork.cut_all` — connection
  drops (clients notice, back off, reconnect);
* :meth:`~SimNetwork.truncate_next` — a partial frame: bytes vanish from
  the middle of the stream, the server's decoder raises, the connection
  is quarantined and the client reconnects on a fresh one;
* :meth:`~SimNetwork.stall` — a slow consumer: pumps are skipped, acks
  stop, client credits dry up and replay buffers fill;
* :meth:`~SimNetwork.crash_server` / :meth:`~SimNetwork.restart_server`
  — the daemon dies mid-run and a new incarnation recovers from the
  durable journal.

:class:`SocketConnection` / :func:`unix_connector` are the real
counterparts used by ``repro service-client`` against ``repro serve``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.kernel.syscalls import Delay, Syscall
from repro.service.server import DetectionServer

__all__ = [
    "PipeConnection",
    "SimNetwork",
    "network_process",
    "SocketConnection",
    "unix_connector",
]


class PipeConnection:
    """One in-memory duplex byte pipe between a client and the sim network.

    The client half is the connection protocol
    (``send``/``receive``/``close``/``alive``); the network half drains
    ``take_outbound`` into the server and pushes replies with
    ``push_inbound``.  ``receive`` keeps working after death so a client
    can still drain a final error frame before noticing the cut.
    """

    def __init__(self, conn_id: int) -> None:
        self.conn_id = conn_id
        self.alive = True
        self.closed_by_client = False
        self._to_server = bytearray()
        self._to_client = bytearray()
        #: Fault: drop this many bytes from the tail of the next send —
        #: the wire-level signature of a connection dying mid-frame.
        self.truncate_next = 0

    # -------------------------------------------------------- client half

    def send(self, data: bytes) -> bool:
        if not self.alive:
            return False
        if self.truncate_next > 0:
            data = data[: max(0, len(data) - self.truncate_next)]
            self.truncate_next = 0
        self._to_server += data
        return True

    def receive(self) -> bytes:
        data = bytes(self._to_client)
        self._to_client.clear()
        return data

    def close(self) -> None:
        self.alive = False
        self.closed_by_client = True

    # ------------------------------------------------------- network half

    def take_outbound(self) -> bytes:
        data = bytes(self._to_server)
        self._to_server.clear()
        return data

    def push_inbound(self, payload: bytes) -> None:
        if payload:
            self._to_client += payload

    def __repr__(self) -> str:
        return (
            f"PipeConnection(id={self.conn_id}, alive={self.alive}, "
            f"out={len(self._to_server)}B, in={len(self._to_client)}B)"
        )


class SimNetwork:
    """Deterministic in-memory network in front of a
    :class:`~repro.service.server.DetectionServer`.

    ``connect`` is handed to clients as their connector; :meth:`pump`
    (driven by :func:`network_process`) moves client bytes into
    :meth:`~DetectionServer.feed`, runs one :meth:`~DetectionServer.poll`
    and routes the replies back.  All fault injection happens here, never
    inside the sans-IO endpoints.
    """

    def __init__(self, server: Optional[DetectionServer]) -> None:
        self.server = server
        self.accepting = True
        self.conns: dict[int, PipeConnection] = {}
        self._next_id = 1
        self._stall_pumps = 0
        self.pumps = 0
        self.pumps_stalled = 0
        self.connections_cut = 0
        self.frames_truncated = 0
        self.server_crashes = 0

    # ------------------------------------------------------------- connect

    def connect(self) -> Optional[PipeConnection]:
        """Connector handed to clients; None while the server is down."""
        if not self.accepting or self.server is None or self.server.closed:
            return None
        conn = PipeConnection(self._next_id)
        self._next_id += 1
        self.conns[conn.conn_id] = conn
        self.server.connect(conn.conn_id)
        return conn

    # ---------------------------------------------------------------- pump

    def pump(self) -> None:
        """Deliver pending bytes both ways and run one server poll."""
        self.pumps += 1
        if self._stall_pumps > 0:
            self._stall_pumps -= 1
            self.pumps_stalled += 1
            return
        server = self.server
        if server is None or server.closed:
            return
        for conn_id, conn in list(self.conns.items()):
            data = conn.take_outbound()
            if data:
                conn.push_inbound(server.feed(conn_id, data))
        for conn_id, payload in server.poll().items():
            conn = self.conns.get(conn_id)
            if conn is not None:
                conn.push_inbound(payload)
        for conn_id, conn in list(self.conns.items()):
            if conn.closed_by_client or not server.connection_alive(conn_id):
                # Quarantined / said bye / cut: the error frame (if any)
                # is already in the client-bound buffer; the client will
                # drain it, see ``alive`` False and reconnect.
                conn.alive = False
                server.disconnect(conn_id)
                del self.conns[conn_id]

    # -------------------------------------------------------------- faults

    def cut(self, conn_id: int) -> bool:
        """Drop one connection without warning (both directions)."""
        conn = self.conns.pop(conn_id, None)
        if conn is None:
            return False
        conn.alive = False
        if self.server is not None:
            self.server.disconnect(conn_id)
        self.connections_cut += 1
        return True

    def cut_all(self) -> int:
        return sum(1 for conn_id in list(self.conns) if self.cut(conn_id))

    def truncate_next(self, conn_id: int, drop: int = 7) -> bool:
        """Lose the tail of the connection's next send (partial frame)."""
        conn = self.conns.get(conn_id)
        if conn is None:
            return False
        conn.truncate_next = max(1, drop)
        self.frames_truncated += 1
        return True

    def stall(self, pumps: int) -> None:
        """Freeze delivery for ``pumps`` rounds — the slow-consumer fault:
        no acks flow, client credits dry up, replay buffers fill."""
        self._stall_pumps = max(self._stall_pumps, pumps)

    def crash_server(self) -> Optional[DetectionServer]:
        """Kill the daemon ungracefully: no flush, no goodbyes.

        Every live connection is cut and new connects fail until
        :meth:`restart_server`.  Returns the dead server (its journal
        file, written line-buffered, survives like a real crash would).
        """
        dead, self.server = self.server, None
        self.cut_all()
        self.accepting = False
        self.server_crashes += 1
        if dead is not None and dead.journal._handle is not None:
            # Close the fd without the orderly close() path — the
            # process died; whatever reached the fs stays, nothing else.
            dead.journal._handle.close()
            dead.journal._handle = None
        return dead

    def restart_server(self, server: DetectionServer) -> None:
        """Bring a new incarnation online (call its ``recover`` first)."""
        self.server = server
        self.accepting = True

    @property
    def live_connections(self) -> int:
        return sum(1 for conn in self.conns.values() if conn.alive)

    def __repr__(self) -> str:
        return (
            f"SimNetwork(conns={self.live_connections}, pumps={self.pumps}, "
            f"cut={self.connections_cut}, crashes={self.server_crashes})"
        )


def network_process(
    net: SimNetwork, *, interval: float, rounds: Optional[int] = None
) -> Iterator[Syscall]:
    """Kernel process pumping the sim network every ``interval``.

    Pump at half the client checkpoint interval (or faster) so
    handshakes and heartbeats complete between captures.
    """
    remaining = rounds
    while remaining is None or remaining > 0:
        yield Delay(interval)
        net.pump()
        if remaining is not None:
            remaining -= 1


# ------------------------------------------------------------ real sockets


class SocketConnection:
    """Non-blocking socket wrapped in the client connection protocol.

    Outbound bytes are staged in a local outbox and flushed
    opportunistically on every ``send``/``receive`` — a full kernel
    buffer is never an error, only a dead peer is.
    """

    def __init__(self, sock) -> None:
        self._sock = sock
        sock.setblocking(False)
        self.alive = True
        self._outbox = bytearray()

    def _flush(self) -> None:
        while self._outbox and self.alive:
            try:
                sent = self._sock.send(bytes(self._outbox))
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self.alive = False
                return
            if sent <= 0:
                return
            del self._outbox[:sent]

    def send(self, data: bytes) -> bool:
        if not self.alive:
            return False
        self._outbox += data
        self._flush()
        return self.alive

    def receive(self) -> bytes:
        if not self.alive:
            return b""
        self._flush()
        chunks = bytearray()
        while True:
            try:
                data = self._sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self.alive = False
                break
            if not data:
                self.alive = False
                break
            chunks += data
        return bytes(chunks)

    def close(self) -> None:
        self.alive = False
        try:
            self._sock.close()
        except OSError:
            pass


def unix_connector(socket_path, *, timeout: float = 1.0):
    """Connector factory for a unix-socket daemon (``repro serve``)."""
    import socket as socketlib

    path = str(socket_path)

    def _connect() -> Optional[SocketConnection]:
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(path)
        except OSError:
            sock.close()
            return None
        return SocketConnection(sock)

    return _connect
