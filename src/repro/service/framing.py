"""Length-prefixed JSONL framing shared by the socket protocol and the WAL.

One frame on the wire is::

    <decimal byte count>\\n
    <that many bytes of compact JSON, ending in \\n>

The body's trailing newline is counted in the length, so a frame stream
is *also* a well-formed line stream — every frame contributes a bare
integer line followed by a JSON-object line.  That makes the torn-tail
story identical on both sides of the wire: whether a writer died
mid-append to a WAL segment or a connection died mid-frame, the durable
prefix ends at the last complete line that parses as a JSON **object**,
and everything after it — a partial line, a dangling length prefix whose
body never arrived, a half-encoded scalar — is torn tail.
:func:`good_jsonl_prefix` computes that prefix; the write-ahead log and
the service journal truncate to it on reopen, and :class:`FrameDecoder`
enforces the same grammar incrementally on a live byte stream.

This module is deliberately stdlib-only (no imports from the history or
detection layers) so the WAL can share it without an import cycle.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import ServiceError

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_frame",
    "FrameDecoder",
    "good_jsonl_prefix",
]

#: Default upper bound on one frame's body, header included in spirit:
#: a peer announcing more than this is malformed, not ambitious.
MAX_FRAME_BYTES = 8 << 20

#: A length header longer than this many digits is garbage, not a number
#: (10**20 bytes in one frame is no one's event window).
_MAX_HEADER_DIGITS = 20


class FrameError(ServiceError):
    """The byte stream violated the framing grammar (poisoned peer)."""


def encode_frame(payload: dict) -> bytes:
    """Encode one JSON-compatible dict as a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
    return b"%d\n%s" % (len(body), body)


class FrameDecoder:
    """Incremental decoder for a stream of length-prefixed JSON frames.

    Feed it whatever the transport produced — any split of bytes — and it
    returns every complete frame decoded so far.  A grammar violation
    (non-digit header, oversized announcement, body that is not a JSON
    object) raises :class:`FrameError`; the caller quarantines the
    connection.  Bytes of an incomplete trailing frame simply wait in the
    buffer for the next ``feed``.
    """

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 2:
            raise ValueError(
                f"max_frame_bytes must be >= 2, got {max_frame_bytes}"
            )
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        #: Announced body length currently awaited (None = reading header).
        self._needed: Optional[int] = None
        self.frames_decoded = 0
        self.bytes_fed = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict]:
        """Consume ``data``; return every frame it completed, in order."""
        self.bytes_fed += len(data)
        self._buffer += data
        frames: list[dict] = []
        while True:
            if self._needed is None:
                newline = self._buffer.find(b"\n")
                if newline < 0:
                    if len(self._buffer) > _MAX_HEADER_DIGITS:
                        raise FrameError(
                            "unterminated frame header: "
                            f"{bytes(self._buffer[:32])!r}"
                        )
                    if self._buffer and not self._buffer.isdigit():
                        raise FrameError(
                            f"non-numeric frame header: "
                            f"{bytes(self._buffer[:32])!r}"
                        )
                    return frames
                header = bytes(self._buffer[:newline])
                if not header.isdigit():
                    raise FrameError(f"non-numeric frame header: {header!r}")
                needed = int(header)
                if not 2 <= needed <= self.max_frame_bytes:
                    raise FrameError(
                        f"frame length {needed} outside "
                        f"[2, {self.max_frame_bytes}]"
                    )
                del self._buffer[: newline + 1]
                self._needed = needed
            if len(self._buffer) < self._needed:
                return frames
            body = bytes(self._buffer[: self._needed])
            del self._buffer[: self._needed]
            self._needed = None
            try:
                payload = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise FrameError(f"undecodable frame body: {exc}") from exc
            if not isinstance(payload, dict):
                raise FrameError(
                    f"frame body must be a JSON object, got "
                    f"{type(payload).__name__}"
                )
            self.frames_decoded += 1
            frames.append(payload)


def good_jsonl_prefix(raw: bytes) -> int:
    """Byte length of the durable prefix of a JSONL byte stream.

    The prefix ends at the last complete, newline-terminated line whose
    content parses as a JSON *object* — the only record shape the WAL,
    the report journal and the wire protocol ever write.  Scanning from
    the tail, the following are recognised as torn and excluded:

    * a final line without its newline (died mid-body — or mid-header),
    * trailing blank lines,
    * complete all-digit lines (a length prefix whose body never made it
      to disk — the truncated-length-prefix crash signature),
    * at most **one** complete line that is junk in any other way (not
      JSON, or JSON but not an object): a single torn write can corrupt
      at most one such line, so anything deeper is real corruption and is
      deliberately left in place for replay to raise on.
    """
    good = len(raw)
    if raw and not raw.endswith(b"\n"):
        # Partial final line: torn mid-body or mid-length-header.
        good = raw.rfind(b"\n") + 1
    stripped_junk = False
    while good > 0:
        start = raw.rfind(b"\n", 0, good - 1) + 1
        line = raw[start:good].strip()
        if not line:
            good = start  # trailing blank line: harmless filler
            continue
        if line.isdigit():
            # A dangling frame-length prefix; never a valid record.
            good = start
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            if stripped_junk:
                break  # two junk lines deep: corruption, not a torn tail
            stripped_junk = True
            good = start
            continue
        if isinstance(record, dict):
            break
        if stripped_junk:
            break
        stripped_junk = True
        good = start
    return good
