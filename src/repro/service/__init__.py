"""Detection as a service: an ingestion daemon plus a fault-tolerant client.

The paper's detector shares an address space with the monitors it
watches; this package splits them.  Workloads record through a
:class:`~repro.service.client.RemoteEventSink` (a drop-in
:class:`~repro.history.sink.EventSink`), a
:class:`~repro.service.client.DetectionClient` ships checkpoint windows
as length-prefixed JSON frames, and a
:class:`~repro.service.server.DetectionServer` replays them into shadow
monitors registered with an ordinary
:class:`~repro.detection.engine.DetectionEngine` — same rules, breakers,
degraded-mode handling and report streams as in-process detection.

Attribute access is lazy so that importing a leaf module (the WAL
imports :mod:`repro.service.framing` for the shared torn-tail scanner)
does not drag the whole detection stack in and create a cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameDecoder",
    "encode_frame",
    "good_jsonl_prefix",
    "ProtocolError",
    "segment_to_wire",
    "segment_from_wire",
    "ServiceConfig",
    "ServiceJournal",
    "DetectionServer",
    "serve",
    "RemoteEventSink",
    "DetectionClient",
    "client_process",
    "PipeConnection",
    "SimNetwork",
    "network_process",
    "SocketConnection",
    "unix_connector",
]

_EXPORTS = {
    "MAX_FRAME_BYTES": "repro.service.framing",
    "FrameError": "repro.service.framing",
    "FrameDecoder": "repro.service.framing",
    "encode_frame": "repro.service.framing",
    "good_jsonl_prefix": "repro.service.framing",
    "ProtocolError": "repro.service.protocol",
    "segment_to_wire": "repro.service.protocol",
    "segment_from_wire": "repro.service.protocol",
    "ServiceConfig": "repro.service.server",
    "ServiceJournal": "repro.service.server",
    "DetectionServer": "repro.service.server",
    "serve": "repro.service.server",
    "RemoteEventSink": "repro.service.client",
    "DetectionClient": "repro.service.client",
    "client_process": "repro.service.client",
    "PipeConnection": "repro.service.transport",
    "SimNetwork": "repro.service.transport",
    "network_process": "repro.service.transport",
    "SocketConnection": "repro.service.transport",
    "unix_connector": "repro.service.transport",
}

if TYPE_CHECKING:  # pragma: no cover — static import surface for tooling
    from repro.service.client import (  # noqa: F401
        DetectionClient,
        RemoteEventSink,
        client_process,
    )
    from repro.service.framing import (  # noqa: F401
        MAX_FRAME_BYTES,
        FrameDecoder,
        FrameError,
        encode_frame,
        good_jsonl_prefix,
    )
    from repro.service.protocol import (  # noqa: F401
        ProtocolError,
        segment_from_wire,
        segment_to_wire,
    )
    from repro.service.server import (  # noqa: F401
        DetectionServer,
        ServiceConfig,
        ServiceJournal,
        serve,
    )
    from repro.service.transport import (  # noqa: F401
        PipeConnection,
        SimNetwork,
        SocketConnection,
        network_process,
        unix_connector,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
