"""The detection-service wire protocol: frame shapes and window codecs.

Every message is one length-prefixed JSON object frame (see
:mod:`repro.service.framing`) with a ``"type"`` discriminator:

========== ======== ===============================================
type       sender   meaning
========== ======== ===============================================
hello      client   handshake: name, resume token, stream catalogue
                    (rendered declarations + rule overrides) and the
                    client's last-acked watermark per stream
welcome    server   handshake reply: authoritative per-stream
                    watermarks and the initial window credits
window     client   one checkpoint window of one stream: sequence
                    number, the cut segment, and carried loss
                    accounting for windows shed client-side
ack        server   durably-processed watermarks + replenished credits
backpressure server the connection is over its ingest quota; stop
                    sending windows until an ack restores credits
ping/pong  both     heartbeat (silent-death detection)
error      server   protocol violation; the connection is quarantined
bye        client   orderly goodbye
========== ======== ===============================================

Windows reuse the history serialisation codecs
(:mod:`repro.history.serialize`): a :class:`~repro.history.sink.Segment`
travels as its previous/current states plus the event list, with the
``dropped`` count — the same triple the in-process checker consumes, so
the server-side shadow evaluation is input-identical to local checking.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import HistoryError, ServiceError
from repro.history.serialize import segment_from_dict, segment_to_dict
from repro.history.sink import Segment

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "segment_to_wire",
    "segment_from_wire",
    "hello_frame",
    "welcome_frame",
    "window_frame",
    "ack_frame",
    "backpressure_frame",
    "ping_frame",
    "pong_frame",
    "error_frame",
    "bye_frame",
    "frame_type",
]

PROTOCOL_VERSION = 1

#: Per-stream rule overrides a hello may carry (applied server-side on
#: top of the daemon's base DetectorConfig).
STREAM_OVERRIDES = ("tmax", "tio", "tlimit")


class ProtocolError(ServiceError):
    """A structurally valid frame violated the protocol state machine."""


# ----------------------------------------------------------------- windows


def segment_to_wire(segment: Segment) -> dict:
    """One cut checkpoint window as a JSON-compatible dict.

    The codec itself lives in :mod:`repro.history.serialize` (the
    process-parallel evaluation plane shares it); this wrapper pins the
    service's wire shape to it.
    """
    return segment_to_dict(segment)


def segment_from_wire(raw: dict) -> Segment:
    """Rebuild a :class:`~repro.history.sink.Segment` from wire form."""
    try:
        return segment_from_dict(raw)
    except HistoryError as exc:
        raise ProtocolError(f"malformed window segment: {exc}") from exc


# ------------------------------------------------------------------ frames


def hello_frame(
    name: str,
    token: str,
    streams: list[dict],
    resume: dict[str, int],
) -> dict:
    """Client handshake.

    ``streams`` entries carry ``label``, the rendered monitor
    ``declaration`` (parsed server-side into a shadow monitor) and any
    :data:`STREAM_OVERRIDES`; ``resume`` maps stream label to the highest
    window sequence the client has seen acked (−1 = nothing yet).
    """
    return {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "name": name,
        "token": token,
        "streams": streams,
        "resume": resume,
    }


def welcome_frame(
    watermarks: dict[str, int], credits: int, *, resumed: bool
) -> dict:
    return {
        "type": "welcome",
        "version": PROTOCOL_VERSION,
        "watermarks": watermarks,
        "credits": credits,
        "resumed": resumed,
    }


def window_frame(
    stream: str,
    seq: int,
    taken_at: float,
    segment: Segment,
    *,
    lost_windows: int = 0,
    lost_events: int = 0,
) -> dict:
    """One checkpoint window.  ``lost_*`` carries client-side shedding:
    windows evicted from the replay buffer before they could be shipped,
    folded into this (surviving) window's loss accounting."""
    return {
        "type": "window",
        "stream": stream,
        "seq": seq,
        "taken_at": taken_at,
        "segment": segment_to_wire(segment),
        "lost_windows": lost_windows,
        "lost_events": lost_events,
    }


def ack_frame(watermarks: dict[str, int], credits: int) -> dict:
    return {"type": "ack", "watermarks": watermarks, "credits": credits}


def backpressure_frame(reason: str, *, in_flight: int) -> dict:
    return {"type": "backpressure", "reason": reason, "in_flight": in_flight}


def ping_frame(sent_at: float) -> dict:
    return {"type": "ping", "sent_at": sent_at}


def pong_frame(sent_at: float) -> dict:
    return {"type": "pong", "sent_at": sent_at}


def error_frame(reason: str) -> dict:
    return {"type": "error", "reason": reason}


def bye_frame() -> dict:
    return {"type": "bye"}


def frame_type(frame: dict, *, expect: Optional[str] = None) -> str:
    """The frame's ``type`` field; raises :class:`ProtocolError` when it
    is absent, not a string, or (with ``expect``) not the expected one."""
    kind = frame.get("type")
    if not isinstance(kind, str):
        raise ProtocolError(f"frame without a type: {frame!r}")
    if expect is not None and kind != expect:
        raise ProtocolError(f"expected {expect!r} frame, got {kind!r}")
    return kind
