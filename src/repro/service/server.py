"""The detection ingestion daemon: remote windows into a local engine.

:class:`DetectionServer` is deliberately sans-IO: it consumes bytes
(:meth:`DetectionServer.feed`), produces reply bytes, and runs one
supervised evaluation round per :meth:`DetectionServer.poll`.  Transports
— the in-memory :class:`~repro.service.transport.SimNetwork` for
deterministic tests and chaos campaigns, or the real unix-socket loop in
:func:`serve` — only move bytes.

How a remote window is checked
------------------------------
The client runs phase 1 of the two-phase checkpoint *locally* (snapshot +
cut inside its own kernel's atomic section) and ships the frozen window.
The server parses the handshake's rendered declaration into a **shadow
monitor** registered with an ordinary
:class:`~repro.detection.engine.DetectionEngine` (``realtime_orders``
forced off: Algorithm 3 replays the shipped events, and the ``Tlimit``
sweep runs off the replayed Request-List).  Each window becomes a
:class:`~repro.detection.engine.CheckpointCapture` appended to the
engine's pending queue; :meth:`poll` drains the queue under the existing
:class:`~repro.detection.supervision.CheckpointSupervisor` discipline.
Everything downstream — per-monitor breakers, degraded-mode evaluation of
lossy windows, report streams — is the unmodified in-process machinery.

Exactly-once across reconnects and restarts
-------------------------------------------
Windows carry per-stream sequence numbers.  The server acks a window only
after its reports are journaled (:class:`ServiceJournal`, the
:class:`~repro.detection.durability.ReportJournal` pattern) and the
per-stream watermark is advanced — so a client that never saw the ack
replays the window, the watermark skips the duplicate, and re-derived
reports are deduplicated by a **confidence-blind** key
(:func:`service_report_key`): a replayed window re-evaluated after a
server restart may only differ in confidence (the post-restart window is
stamped DEGRADED), and the journal keeps the first derivation.

Loss is visible, never silent
-----------------------------
A sequence gap (client shed windows), client-reported ``lost_events``,
or the first window after a server restart (cold checker state) all bump
the reconstructed segment's ``dropped`` count, which routes evaluation
through the engine's degraded path: drop-tolerant rules only, reports
stamped :attr:`~repro.detection.reports.Confidence.DEGRADED`, Algorithm-2
counters resynced.  A malformed frame or quota-abusing client quarantines
*that connection* — never the fleet.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import IO, Optional, Union

from repro.detection.config import DetectorConfig
from repro.detection.engine import CheckpointCapture, DetectionEngine
from repro.detection.durability import (
    report_from_dict,
    report_to_dict,
)
from repro.detection.reports import FaultReport
from repro.detection.supervision import CheckpointSupervisor
from repro.errors import DeclarationError, RecoveryError, ServiceError
from repro.monitor.construct import Monitor
from repro.observability.export import write_metrics_json
from repro.observability.registry import Histogram, MetricsRegistry
from repro.monitor.declaration import MonitorDeclaration
from repro.service.framing import (
    FrameDecoder,
    FrameError,
    encode_frame,
    good_jsonl_prefix,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    STREAM_OVERRIDES,
    ProtocolError,
    ack_frame,
    backpressure_frame,
    error_frame,
    frame_type,
    pong_frame,
    segment_from_wire,
    welcome_frame,
)

__all__ = [
    "service_report_key",
    "ServiceConfig",
    "ServiceJournal",
    "DetectionServer",
    "serve",
]


def service_report_key(report: FaultReport) -> str:
    """Report identity for service-level dedup, *confidence-blind*.

    Re-deriving a replayed window after a server restart evaluates it in
    degraded mode, so the same finding can come back with a different
    confidence; everything else (rule, monitor, timestamps, pids, window)
    is bit-identical.  Deduping on this key keeps the first derivation
    and absorbs the re-derived twin.
    """
    return "|".join(
        (
            report.rule_id,
            report.monitor,
            repr(report.detected_at),
            ",".join(str(pid) for pid in report.pids),
            repr(report.event_seq),
            repr(report.window_start),
        )
    )


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the ingestion plane (quotas, framing, backpressure).

    * ``window_credits`` — windows one connection may have in flight
      (sent, not yet acked) before the server replies with an explicit
      ``backpressure`` frame.  A connection exceeding **twice** this
      quota is quarantined as abusive.
    * ``max_frame_bytes`` — framing-level bound on one frame's body.
    * ``max_events_per_window`` — a window announcing more events is a
      protocol violation (poisoned client), not a big window.
    * ``max_streams`` — streams one handshake may register.
    """

    window_credits: int = 16
    max_frame_bytes: int = 8 << 20
    max_events_per_window: int = 50_000
    max_streams: int = 64

    def __post_init__(self) -> None:
        for name in (
            "window_credits",
            "max_events_per_window",
            "max_streams",
        ):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"{name} must be >= 1, got {getattr(self, name)!r}"
                )
        if self.max_frame_bytes < 2:
            raise ValueError(
                f"max_frame_bytes must be >= 2, got {self.max_frame_bytes!r}"
            )


class ServiceJournal:
    """Durable exactly-once state: delivered reports + stream watermarks.

    One JSONL file holds two record kinds — ``report`` (the
    :func:`~repro.detection.durability.report_to_dict` shape) and
    ``watermark`` (``token``/``stream``/``seq``).  ``admit`` dedups on
    the confidence-blind :func:`service_report_key`; ``advance`` records
    the highest durably-processed window per (token, stream).  With
    ``path=None`` the journal is memory-only (sim tests, ephemeral
    daemons) but keeps the same dedup semantics.  Reopening truncates a
    torn tail with the shared :func:`~repro.service.framing
    .good_jsonl_prefix` scanner — the same code path as the WAL.
    """

    def __init__(
        self, path: Optional[Union[str, Path]] = None, *, fsync: bool = False
    ) -> None:
        self.path = None if path is None else Path(path)
        self._fsync = fsync
        self.reports: list[FaultReport] = []
        self.seen: set[str] = set()
        self.watermarks: dict[tuple[str, str], int] = {}
        self.journaled = 0
        self.deduplicated = 0
        self.torn_tails_truncated = 0
        self._handle: Optional[IO[str]] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.exists():
                self._load_existing()
            self._handle = open(  # noqa: SIM115 — long-lived
                self.path, "a", buffering=1, encoding="utf-8"
            )

    def _load_existing(self) -> None:
        assert self.path is not None
        raw = self.path.read_bytes()
        good = good_jsonl_prefix(raw)
        if good < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(good)
            self.torn_tails_truncated += 1
        for number, line in enumerate(
            raw[:good].decode("utf-8").splitlines(), start=1
        ):
            if not line.strip():
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "report":
                report = report_from_dict(record)
                self.reports.append(report)
                self.seen.add(service_report_key(report))
            elif kind == "watermark":
                key = (record["token"], record["stream"])
                seq = int(record["seq"])
                if seq > self.watermarks.get(key, -1):
                    self.watermarks[key] = seq
            else:
                raise RecoveryError(
                    f"{self.path.name} line {number}: unknown journal "
                    f"record kind {kind!r}"
                )

    def _write(self, record: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record) + "\n")

    def admit(self, report: FaultReport) -> bool:
        """Journal one report; False when already delivered (any
        confidence) by this or a previous server incarnation."""
        key = service_report_key(report)
        if key in self.seen:
            self.deduplicated += 1
            return False
        self._write(report_to_dict(report))
        self.seen.add(key)
        self.reports.append(report)
        self.journaled += 1
        return True

    def advance(self, token: str, stream: str, seq: int) -> None:
        """Record that windows of ``stream`` through ``seq`` are durably
        processed (evaluated + reports journaled)."""
        key = (token, stream)
        if seq <= self.watermarks.get(key, -1):
            return
        self.watermarks[key] = seq
        self._write(
            {"kind": "watermark", "token": token, "stream": stream, "seq": seq}
        )

    def flush(self) -> None:
        if self._handle is None:
            return
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None


class StreamState:
    """Server-side state of one (client token, stream label) pair."""

    def __init__(
        self,
        label: str,
        entry,
        declaration_text: str,
        watermark: int,
        *,
        resync_pending: bool,
    ) -> None:
        self.label = label
        #: The shadow monitor's RegisteredMonitor in the server engine.
        self.entry = entry
        self.declaration_text = declaration_text
        #: Highest durably-processed window sequence (−1 = none).
        self.watermark = watermark
        #: Highest *accepted* sequence — runs ahead of the watermark while
        #: windows sit in the evaluation queue.  Duplicate and gap checks
        #: use this, not the watermark: a burst of in-flight windows is
        #: continuous, not lossy.
        self.accepted = watermark
        #: True until the first window after a server restart has been
        #: applied: checker state is cold, so that window is forced lossy
        #: (evaluated degraded + Algorithm-2 resync) instead of silently
        #: CONFIRMED on a mid-stream cold start.
        self.resync_pending = resync_pending
        self.windows_applied = 0
        self.duplicates_skipped = 0
        self.gaps_detected = 0
        self.lost_events_reported = 0
        self.lossy_windows = 0
        self.resync_windows = 0


class ClientSession:
    """Everything keyed by one resume token (survives reconnects)."""

    def __init__(self, token: str, name: str) -> None:
        self.token = token
        self.name = name
        self.streams: dict[str, StreamState] = {}
        #: conn_id currently bound to this session (None = disconnected).
        self.conn_id: Optional[int] = None
        self.connects = 0


class _Connection:
    """Per-connection transport state (dies with the connection)."""

    def __init__(self, conn_id: int, max_frame_bytes: int) -> None:
        self.conn_id = conn_id
        self.decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        self.session: Optional[ClientSession] = None
        self.alive = True
        self.quarantined = False
        self.quarantine_reason: Optional[str] = None
        #: Windows accepted from this connection, not yet acked.
        self.in_flight = 0
        self.ack_due = False


@dataclass(frozen=True)
class _WindowMeta:
    """Bookkeeping for one pending capture: who to ack, what to advance."""

    conn_id: int
    session: ClientSession
    stream: StreamState
    seq: int


class _EvaluationPlane:
    """The engine-shaped adapter a CheckpointSupervisor paces.

    The supervisor expects ``config``/``kernel``/``stopped``/
    ``checkpoint()``/``entries``; here one "checkpoint" is the server's
    evaluation round — drain the wire-built captures through
    ``evaluate_phase`` and journal the results — so retries, budget
    accounting and the stall watchdog apply to remote ingestion exactly
    as they do to local checkpoints.
    """

    def __init__(self, server: "DetectionServer") -> None:
        self._server = server

    @property
    def config(self) -> DetectorConfig:
        return self._server.engine.config

    @property
    def kernel(self):
        return self._server.engine.kernel

    @property
    def entries(self):
        return self._server.engine.entries

    @property
    def stopped(self) -> bool:
        return self._server.closed

    def checkpoint(self) -> list[FaultReport]:
        return self._server._evaluation_round()


class DetectionServer:
    """Sans-IO ingestion daemon core.

    Parameters
    ----------
    kernel:
        Substrate the shadow monitors live on.  Never *run* — the server
        only uses its clock (supervisor events, breaker timestamps).
        Pass the sim kernel in deterministic tests, a
        :class:`~repro.kernel.threads.ThreadKernel` in the real daemon.
    config:
        Base :class:`DetectorConfig` for shadow registrations
        (``realtime_orders`` is forced off — remote windows replay).
    service:
        :class:`ServiceConfig` quotas and framing bounds.
    durable_dir:
        When set, the :class:`ServiceJournal` lives at
        ``durable_dir/service.jsonl`` and :meth:`recover` resumes
        watermarks and delivered-report dedup after a restart.
    """

    def __init__(
        self,
        kernel,
        *,
        config: Optional[DetectorConfig] = None,
        service: Optional[ServiceConfig] = None,
        durable_dir: Optional[Union[str, Path]] = None,
        fsync: bool = False,
    ) -> None:
        self.kernel = kernel
        base = config or DetectorConfig()
        self.engine = DetectionEngine(
            kernel, replace(base, realtime_orders=False)
        )
        self.service = service or ServiceConfig()
        self.durable_dir = None if durable_dir is None else Path(durable_dir)
        journal_path = (
            None
            if self.durable_dir is None
            else self.durable_dir / "service.jsonl"
        )
        self.journal = ServiceJournal(journal_path, fsync=fsync)
        self.supervisor = CheckpointSupervisor(_EvaluationPlane(self))
        self._connections: dict[int, _Connection] = {}
        self._sessions: dict[str, ClientSession] = {}
        #: Watermarks loaded by :meth:`recover`, consumed by handshakes.
        self._recovered: dict[tuple[str, str], int] = {}
        self._pending_meta: list[_WindowMeta] = []
        #: Reports evaluated but not yet journal-admitted: a round that
        #: dies between ``evaluate_phase`` (destructive drain) and the
        #: journal write parks them here so the retry delivers them
        #: instead of acking their windows with the findings lost.
        self._pending_reports: list[FaultReport] = []
        #: Reports admitted by the journal, in delivery order.
        self.delivered: list[FaultReport] = []
        self.windows_accepted = 0
        self.windows_duplicate = 0
        self.gaps_detected = 0
        self.lossy_windows = 0
        self.resync_windows = 0
        self.backpressure_sent = 0
        self.quarantines: list[tuple[int, str]] = []
        self.frames_received = 0
        #: Frames emitted to clients (welcomes, acks, backpressure,
        #: pongs, errors) — the out half of frames in/out accounting.
        self.frames_sent = 0
        #: Wall-clock duration of each supervised evaluation round —
        #: the window-to-ack service latency histogram.
        self.ack_latency = Histogram()
        self._closed = False

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop accepting work and flush the journal (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.engine.stop()
        self.journal.close()

    def recover(self) -> dict:
        """Resume exactly-once state from the durable journal.

        Loads delivered-report keys and per-stream watermarks (the
        journal did that at construction); marks every recovered stream
        ``resync_pending`` so its first post-restart window is evaluated
        degraded — the checker state is cold and mid-stream, and a cold
        window must never be silently CONFIRMED.  Streams re-register on
        the client's next handshake (it re-sends the declarations).
        """
        self._recovered = dict(self.journal.watermarks)
        return {
            "reports": len(self.journal.reports),
            "streams": len(self._recovered),
            "watermarks": {
                f"{token}/{stream}": seq
                for (token, stream), seq in sorted(self._recovered.items())
            },
        }

    # ----------------------------------------------------------- connections

    def connect(self, conn_id: int) -> None:
        """Register a new transport connection."""
        if conn_id in self._connections:
            raise ServiceError(f"connection {conn_id} already registered")
        self._connections[conn_id] = _Connection(
            conn_id, self.service.max_frame_bytes
        )

    def disconnect(self, conn_id: int) -> None:
        """Drop a transport connection (its session state survives)."""
        conn = self._connections.pop(conn_id, None)
        if conn is None:
            return
        conn.alive = False
        if conn.session is not None and conn.session.conn_id == conn_id:
            conn.session.conn_id = None

    def connection_alive(self, conn_id: int) -> bool:
        conn = self._connections.get(conn_id)
        return conn is not None and conn.alive and not conn.quarantined

    def connection_quarantined(self, conn_id: int) -> bool:
        conn = self._connections.get(conn_id)
        return conn is not None and conn.quarantined

    def _quarantine(self, conn: _Connection, reason: str) -> bytes:
        conn.quarantined = True
        conn.alive = False
        conn.quarantine_reason = reason
        self.quarantines.append((conn.conn_id, reason))
        if conn.session is not None and conn.session.conn_id == conn.conn_id:
            conn.session.conn_id = None
        return encode_frame(error_frame(reason))

    # ---------------------------------------------------------------- ingest

    def feed(self, conn_id: int, data: bytes) -> bytes:
        """Consume bytes from one connection; return immediate replies.

        A framing or protocol violation quarantines the connection: the
        reply ends with an ``error`` frame and the transport should close
        the connection after delivering it.  Other connections are
        untouched — one poisoned client never stalls the fleet.
        """
        conn = self._connections.get(conn_id)
        if conn is None:
            raise ServiceError(f"feed from unknown connection {conn_id}")
        if not conn.alive or self._closed:
            return b""
        replies: list[bytes] = []
        try:
            frames = conn.decoder.feed(data)
        except FrameError as exc:
            return self._quarantine(conn, f"malformed frame: {exc}")
        for frame in frames:
            self.frames_received += 1
            try:
                kind = frame_type(frame)
                if kind == "hello":
                    replies.append(self._on_hello(conn, frame))
                elif kind == "window":
                    reply = self._on_window(conn, frame)
                    if reply:
                        replies.append(reply)
                elif kind == "ping":
                    replies.append(
                        encode_frame(pong_frame(frame.get("sent_at", 0.0)))
                    )
                elif kind == "bye":
                    conn.alive = False
                    break
                elif kind in ("pong", "ack", "welcome", "backpressure"):
                    # Server-to-client frames echoed back: ignore quietly.
                    continue
                else:
                    raise ProtocolError(f"unexpected frame type {kind!r}")
            except ProtocolError as exc:
                replies.append(self._quarantine(conn, str(exc)))
                break
            if conn.quarantined or not conn.alive:
                # A handler quarantined the connection itself (e.g. the
                # ingest quota): the rest of the batch is dead bytes.
                break
        self.frames_sent += len(replies)
        return b"".join(replies)

    def _on_hello(self, conn: _Connection, frame: dict) -> bytes:
        version = frame.get("version")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: server {PROTOCOL_VERSION}, "
                f"client {version!r}"
            )
        token = frame.get("token")
        name = frame.get("name", "client")
        streams = frame.get("streams")
        resume = frame.get("resume", {})
        if not isinstance(token, str) or not token:
            raise ProtocolError("hello without a session token")
        if not isinstance(streams, list) or not streams:
            raise ProtocolError("hello without streams")
        if not isinstance(resume, dict):
            raise ProtocolError(f"malformed resume map: {resume!r}")
        if len(streams) > self.service.max_streams:
            raise ProtocolError(
                f"hello registers {len(streams)} streams > "
                f"max_streams {self.service.max_streams}"
            )
        session = self._sessions.get(token)
        resumed = session is not None
        if session is None:
            session = ClientSession(token, str(name))
            self._sessions[token] = session
        if session.conn_id is not None and session.conn_id != conn.conn_id:
            # The token moved to a new connection (silent death of the
            # old one): the newest handshake wins, the stale connection
            # is cut loose.
            stale = self._connections.get(session.conn_id)
            if stale is not None:
                stale.alive = False
        session.conn_id = conn.conn_id
        session.connects += 1
        conn.session = session
        for spec in streams:
            self._register_stream(session, spec, resume)
        watermarks = {
            label: stream.watermark
            for label, stream in session.streams.items()
        }
        credits = max(0, self.service.window_credits - conn.in_flight)
        return encode_frame(
            welcome_frame(
                watermarks,
                credits,
                resumed=resumed
                or any(key[0] == token for key in self._recovered),
            )
        )

    def _register_stream(
        self, session: ClientSession, spec: dict, resume: dict
    ) -> None:
        if not isinstance(spec, dict):
            raise ProtocolError(f"malformed stream spec: {spec!r}")
        label = spec.get("label")
        text = spec.get("declaration")
        if not isinstance(label, str) or not label:
            raise ProtocolError(f"stream spec without a label: {spec!r}")
        if not isinstance(text, str) or not text:
            raise ProtocolError(f"stream {label!r} without a declaration")
        existing = session.streams.get(label)
        if existing is not None:
            if existing.declaration_text != text:
                raise ProtocolError(
                    f"stream {label!r} re-registered with a different "
                    "declaration"
                )
            return
        try:
            declaration = MonitorDeclaration.parse(text)
        except DeclarationError as exc:
            raise ProtocolError(
                f"stream {label!r}: undeclarable monitor: {exc}"
            ) from exc
        overrides = {
            key: spec[key]
            for key in STREAM_OVERRIDES
            if key in spec
        }
        for key, value in overrides.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ProtocolError(
                    f"stream {label!r}: override {key} must be a number, "
                    f"got {value!r}"
                )
        try:
            entry_config = replace(
                self.engine.config, realtime_orders=False, **overrides
            )
        except (TypeError, ValueError) as exc:
            # Out-of-range overrides (tmax=-1, ...) are the client's
            # fault, not the fleet's: quarantine this connection.
            raise ProtocolError(
                f"stream {label!r}: invalid override: {exc}"
            ) from exc
        shadow = Monitor(self.kernel, declaration)
        entry = self.engine.register(
            shadow, entry_config, label=f"{session.name}:{label}"
        )
        recovered = self._recovered.get((session.token, label), -1)
        try:
            resumed_from = int(resume.get(label, -1))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"stream {label!r}: malformed resume watermark"
            ) from exc
        watermark = max(recovered, resumed_from)
        session.streams[label] = StreamState(
            label,
            entry,
            text,
            watermark,
            resync_pending=recovered >= 0,
        )

    def _on_window(self, conn: _Connection, frame: dict) -> bytes:
        session = conn.session
        if session is None:
            raise ProtocolError("window before hello")
        label = frame.get("stream")
        stream = session.streams.get(label) if isinstance(label, str) else None
        if stream is None:
            raise ProtocolError(f"window for unknown stream {label!r}")
        try:
            seq = int(frame["seq"])
            taken_at = float(frame["taken_at"])
            lost_windows = int(frame.get("lost_windows", 0))
            lost_events = int(frame.get("lost_events", 0))
            raw_segment = frame["segment"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed window frame: {exc}") from exc
        if seq < 0 or lost_windows < 0 or lost_events < 0:
            raise ProtocolError("window with negative accounting")
        events = raw_segment.get("events") if isinstance(raw_segment, dict) else None
        if not isinstance(events, list):
            raise ProtocolError("window without an event list")
        if len(events) > self.service.max_events_per_window:
            raise ProtocolError(
                f"window carries {len(events)} events > "
                f"max_events_per_window {self.service.max_events_per_window}"
            )
        if seq <= stream.accepted:
            # Replayed duplicate — already durably processed, or already
            # accepted and awaiting evaluation (the client missed our
            # ack): skip, but make sure the next poll re-acks so the
            # client prunes it.
            stream.duplicates_skipped += 1
            self.windows_duplicate += 1
            conn.ack_due = True
            return b""
        quota = self.service.window_credits
        if conn.in_flight >= 2 * quota:
            return self._quarantine(
                conn,
                f"ingest quota exceeded: {conn.in_flight} windows in "
                f"flight > {2 * quota}",
            )
        segment = segment_from_wire(raw_segment)
        gap = seq - stream.accepted - 1 if stream.accepted >= 0 else 0
        extra = lost_events
        if gap > 0:
            stream.gaps_detected += 1
            self.gaps_detected += 1
            if extra == 0:
                extra = 1  # continuity lost, size unknown: still lossy
        if stream.resync_pending:
            stream.resync_windows += 1
            self.resync_windows += 1
            if segment.dropped + extra == 0:
                extra = 1  # cold post-restart checker: force degraded
        stream.resync_pending = False
        if extra:
            segment = replace(segment, dropped=segment.dropped + extra)
        if segment.dropped:
            stream.lossy_windows += 1
            self.lossy_windows += 1
        stream.lost_events_reported += lost_events
        capture = CheckpointCapture(
            entry=stream.entry,
            snapshot=segment.current,
            segment=segment,
            request_list=None,
            taken_at=taken_at,
        )
        self.engine._pending_captures.append(capture)
        self._pending_meta.append(
            _WindowMeta(conn.conn_id, session, stream, seq)
        )
        conn.in_flight += 1
        stream.accepted = seq
        stream.windows_applied += 1
        self.windows_accepted += 1
        if conn.in_flight >= quota:
            self.backpressure_sent += 1
            return encode_frame(
                backpressure_frame(
                    f"{conn.in_flight} windows in flight >= credit "
                    f"quota {quota}",
                    in_flight=conn.in_flight,
                )
            )
        return b""

    # ------------------------------------------------------------ evaluation

    def _evaluation_round(self) -> list[FaultReport]:
        """One supervised round: evaluate pending captures, journal, ack.

        Called by the :class:`CheckpointSupervisor` through the
        evaluation-plane adapter; an exception here is a supervisor
        ``failure`` event and the round is retried with backoff.
        """
        round_started = perf_counter()
        meta = self._pending_meta
        pending = self._pending_reports
        pending.extend(self.engine.evaluate_phase())
        admitted: list[FaultReport] = []
        while pending:
            # Pop only after a successful admit: if the journal throws
            # mid-drain, the retry resumes at the exact report that
            # failed (admit itself dedups, so no double delivery).
            report = pending[0]
            if self.journal.admit(report):
                self.delivered.append(report)
                admitted.append(report)
            pending.pop(0)
        for item in meta:
            if item.seq > item.stream.watermark:
                item.stream.watermark = item.seq
            self.journal.advance(
                item.session.token, item.stream.label, item.seq
            )
        self.journal.flush()
        self._pending_meta = []
        for item in meta:
            conn = self._connections.get(item.conn_id)
            if conn is not None and conn.alive:
                if conn.in_flight > 0:
                    conn.in_flight -= 1
                conn.ack_due = True
        self.engine.checkpoints_run += 1
        self.ack_latency.observe(perf_counter() - round_started)
        return admitted

    def poll(self) -> dict[int, bytes]:
        """Run one supervised evaluation round; return acks per connection.

        Safe to call on every transport tick: with nothing pending it
        only feeds the stall watchdog and flushes due re-acks.
        """
        if self._closed:
            return {}
        if self.engine._pending_captures or self._pending_meta:
            # _pending_meta alone means a previous round died *after*
            # evaluate_phase drained the captures (journal write failed):
            # the un-acked windows still need their journal/ack half, and
            # a backpressured client will never send the new window that
            # used to be the only retry trigger.
            self.supervisor.attempt()
        else:
            self.supervisor.note_idle()
        self.supervisor.check_stall()
        out: dict[int, bytes] = {}
        for conn in self._connections.values():
            if not conn.alive or not conn.ack_due or conn.session is None:
                continue
            conn.ack_due = False
            watermarks = {
                label: stream.watermark
                for label, stream in conn.session.streams.items()
            }
            credits = max(0, self.service.window_credits - conn.in_flight)
            out[conn.conn_id] = encode_frame(ack_frame(watermarks, credits))
        self.frames_sent += len(out)
        return out

    # ------------------------------------------------------------ inspection

    @property
    def reports(self) -> list[FaultReport]:
        """Delivered (journal-admitted) reports, in delivery order."""
        return list(self.delivered)

    def metrics(
        self, registry: Optional[MetricsRegistry] = None
    ) -> MetricsRegistry:
        """Engine metrics plus the ingestion-plane families.

        Frames in/out, window admission/duplication/gap/lossy/resync
        counters, backpressure events, quarantines, journal dedup, the
        supervised-round (window-to-ack) latency histogram, and live
        connection/session/stream gauges.
        """
        registry = self.engine.metrics(registry)

        def counter(name: str, help: str, value: float) -> None:
            registry.counter(name, help).labels().inc(value)

        def gauge(name: str, help: str, value: float) -> None:
            registry.gauge(name, help).labels().set(value)

        counter(
            "repro_service_frames_received_total",
            "Frames ingested from client connections.",
            self.frames_received,
        )
        counter(
            "repro_service_frames_sent_total",
            "Frames emitted to clients (welcome/ack/backpressure/...).",
            self.frames_sent,
        )
        counter(
            "repro_service_windows_accepted_total",
            "Event windows admitted for evaluation.",
            self.windows_accepted,
        )
        counter(
            "repro_service_windows_duplicate_total",
            "Windows rejected as already-delivered duplicates.",
            self.windows_duplicate,
        )
        counter(
            "repro_service_gaps_total",
            "Sequence gaps detected in client streams.",
            self.gaps_detected,
        )
        counter(
            "repro_service_lossy_windows_total",
            "Windows evaluated with acknowledged client-side loss.",
            self.lossy_windows,
        )
        counter(
            "repro_service_resync_windows_total",
            "Windows evaluated degraded after a stream resync.",
            self.resync_windows,
        )
        counter(
            "repro_service_backpressure_total",
            "Backpressure frames sent to over-credit connections.",
            self.backpressure_sent,
        )
        counter(
            "repro_service_quarantined_total",
            "Connections quarantined for protocol violations.",
            len(self.quarantines),
        )
        counter(
            "repro_service_delivered_reports_total",
            "Reports delivered through the service journal.",
            len(self.delivered),
        )
        counter(
            "repro_service_journal_deduplicated_total",
            "Re-derived reports rejected by the service journal.",
            self.journal.deduplicated,
        )
        counter(
            "repro_supervisor_retries_total",
            "Checkpoint retries performed by the service supervisor.",
            self.supervisor.retries_performed,
        )
        counter(
            "repro_supervisor_stalls_total",
            "Watchdog stalls detected by the service supervisor.",
            self.supervisor.stalls_detected,
        )
        counter(
            "repro_supervisor_completed_total",
            "Evaluation rounds completed under the service supervisor.",
            self.supervisor.checkpoints_completed,
        )
        counter(
            "repro_supervisor_abandoned_total",
            "Evaluation rounds abandoned by the service supervisor.",
            self.supervisor.checkpoints_abandoned,
        )
        gauge(
            "repro_service_connections",
            "Live transport connections.",
            len(self._connections),
        )
        gauge(
            "repro_service_sessions",
            "Known client sessions (resume tokens).",
            len(self._sessions),
        )
        gauge(
            "repro_service_streams",
            "Registered client streams across sessions.",
            sum(len(s.streams) for s in self._sessions.values()),
        )
        registry.histogram(
            "repro_phase_latency_seconds",
            "Wall-clock latency per detection phase.",
            ("phase",),
        ).labels(phase="ack").merge(self.ack_latency)
        return registry

    def stats(self) -> dict:
        """Counters for the CLI envelope and campaign assertions."""
        return {
            "connections": len(self._connections),
            "sessions": len(self._sessions),
            "streams": sum(
                len(session.streams) for session in self._sessions.values()
            ),
            "frames_received": self.frames_received,
            "frames_sent": self.frames_sent,
            "windows_accepted": self.windows_accepted,
            "windows_duplicate": self.windows_duplicate,
            "gaps_detected": self.gaps_detected,
            "lossy_windows": self.lossy_windows,
            "resync_windows": self.resync_windows,
            "backpressure_sent": self.backpressure_sent,
            "quarantined_connections": len(self.quarantines),
            "delivered_reports": len(self.delivered),
            "journal_deduplicated": self.journal.deduplicated,
            "evaluations_run": self.engine.evaluations_run,
            "degraded_windows": self.engine.degraded_windows,
            "supervisor_completed": self.supervisor.checkpoints_completed,
            "supervisor_retries": self.supervisor.retries_performed,
        }

    def __repr__(self) -> str:
        return (
            f"DetectionServer(sessions={len(self._sessions)}, "
            f"windows={self.windows_accepted}, "
            f"delivered={len(self.delivered)}, "
            f"quarantined={len(self.quarantines)})"
        )


# -------------------------------------------------------------- real daemon


def serve(
    socket_path: Union[str, Path],
    *,
    server: Optional[DetectionServer] = None,
    config: Optional[DetectorConfig] = None,
    service: Optional[ServiceConfig] = None,
    durable_dir: Optional[Union[str, Path]] = None,
    poll_interval: float = 0.05,
    runtime: Optional[float] = None,
    ready_file: Optional[Union[str, Path]] = None,
    metrics_path: Optional[Union[str, Path]] = None,
    metrics_every: Optional[float] = None,
) -> dict:
    """Run a :class:`DetectionServer` behind a unix stream socket.

    Blocks until ``runtime`` seconds elapse (None = until SIGTERM/SIGINT)
    and returns the server's final :meth:`~DetectionServer.stats`.
    ``ready_file`` is touched once the socket is listening, so
    orchestration (the ``service-smoke`` harness) can wait for it.  The
    loop is single-threaded: select, feed, poll, write — all ingestion
    robustness lives in the sans-IO core, not here.

    ``metrics_path`` opts into metrics export: the daemon dumps its
    :meth:`~DetectionServer.metrics` snapshot there as JSON on shutdown,
    and every ``metrics_every`` wall seconds while running (a scrape
    file for sidecar collectors).
    """
    import selectors
    import signal
    import socket as socketlib
    import time

    from repro.kernel.threads import ThreadKernel

    path = Path(socket_path)
    if server is None:
        server = DetectionServer(
            ThreadKernel(),
            config=config,
            service=service,
            durable_dir=durable_dir,
        )
        if durable_dir is not None:
            server.recover()
    stopping = False

    def _stop(signum, frame) -> None:  # noqa: ARG001 — signal signature
        nonlocal stopping
        stopping = True

    try:
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    except ValueError:
        pass  # not the main thread (tests): rely on runtime
    if path.exists():
        path.unlink()
    listener = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    listener.bind(str(path))
    listener.listen(64)
    listener.setblocking(False)
    selector = selectors.DefaultSelector()
    selector.register(listener, selectors.EVENT_READ, data=None)
    sockets: dict[int, socketlib.socket] = {}
    outboxes: dict[int, bytearray] = {}
    next_id = 1
    if metrics_every is not None and metrics_every <= 0:
        raise ValueError(f"metrics_every must be positive, got {metrics_every}")
    if metrics_every is not None and metrics_path is None:
        raise ValueError("metrics_every requires metrics_path")
    if ready_file is not None:
        Path(ready_file).write_text("ready\n", encoding="utf-8")
    deadline = None if runtime is None else time.monotonic() + runtime
    next_dump = (
        None if metrics_every is None else time.monotonic() + metrics_every
    )

    def _enqueue(conn_id: int, payload: bytes) -> None:
        if payload and conn_id in sockets:
            outboxes[conn_id] += payload

    def _drop(conn_id: int) -> None:
        sock = sockets.pop(conn_id, None)
        outboxes.pop(conn_id, None)
        if sock is not None:
            try:
                selector.unregister(sock)
            except (KeyError, ValueError):
                pass
            sock.close()
        server.disconnect(conn_id)

    def _flush(conn_id: int) -> None:
        sock = sockets.get(conn_id)
        box = outboxes.get(conn_id)
        if sock is None or not box:
            return
        try:
            sent = sock.send(bytes(box))
            del box[:sent]
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            _drop(conn_id)

    try:
        while not stopping:
            if deadline is not None and time.monotonic() >= deadline:
                break
            events = selector.select(timeout=poll_interval)
            for key, __ in events:
                if key.data is None:
                    try:
                        sock, __addr = listener.accept()
                    except OSError:
                        continue
                    sock.setblocking(False)
                    conn_id = next_id
                    next_id += 1
                    sockets[conn_id] = sock
                    outboxes[conn_id] = bytearray()
                    selector.register(
                        sock, selectors.EVENT_READ, data=conn_id
                    )
                    server.connect(conn_id)
                    continue
                conn_id = key.data
                sock = sockets.get(conn_id)
                if sock is None:
                    continue
                try:
                    data = sock.recv(1 << 16)
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError:
                    _drop(conn_id)
                    continue
                if not data:
                    _drop(conn_id)
                    continue
                _enqueue(conn_id, server.feed(conn_id, data))
            for conn_id, payload in server.poll().items():
                _enqueue(conn_id, payload)
            for conn_id in list(sockets):
                _flush(conn_id)
                if not server.connection_alive(conn_id) and not outboxes.get(
                    conn_id
                ):
                    _drop(conn_id)
            if next_dump is not None and time.monotonic() >= next_dump:
                write_metrics_json(str(metrics_path), server.metrics())
                next_dump = time.monotonic() + metrics_every
    finally:
        stats = server.stats()
        if metrics_path is not None:
            write_metrics_json(str(metrics_path), server.metrics())
        server.close()
        for conn_id in list(sockets):
            _drop(conn_id)
        selector.close()
        listener.close()
        if path.exists():
            path.unlink()
    return stats
