"""The fault-tolerant detection client: record locally, ship windows remotely.

:class:`RemoteEventSink` is a drop-in
:class:`~repro.history.sink.EventSink` — a bounded ring with the same
drop accounting as :class:`~repro.history.bounded.BoundedHistory` — whose
cut windows are handed to a :class:`DetectionClient` instead of a local
engine.  The client runs phase 1 of the two-phase checkpoint itself
(:meth:`DetectionClient.capture` snapshots and cuts every attached stream
inside one ``kernel.atomic`` section) and ships the frozen windows as
protocol frames.

The client is built to *degrade, never block, never raise*:

* **Disconnected?**  Windows keep accumulating in a bounded per-stream
  replay buffer.  When the buffer overflows, the oldest window is shed
  and its event count folded into the next surviving window's
  ``lost_events`` — so the loss reaches the server as explicit
  accounting and the post-reconnect window is evaluated DEGRADED, never
  silently CONFIRMED.
* **Reconnect.**  Exponential backoff with seeded jitter; the handshake
  carries the session resume token and the last-acked watermark per
  stream, so the server skips replayed duplicates and the client prunes
  windows the server already processed.
* **Silent death.**  Heartbeat pings; a connection that stops answering
  is cut and the reconnect machinery takes over.
* **No exception escapes.**  Every transport interaction is wrapped;
  failures increment counters and flip the state machine to
  ``disconnected``.  The workload being monitored never sees them.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

from repro.history.bounded import BoundedHistory
from repro.history.sink import Segment
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Delay, Syscall
from repro.monitor.declaration import MonitorDeclaration
from repro.service.framing import FrameDecoder, FrameError, encode_frame
from repro.service.protocol import (
    STREAM_OVERRIDES,
    bye_frame,
    frame_type,
    hello_frame,
    ping_frame,
    window_frame,
)

__all__ = ["RemoteEventSink", "DetectionClient", "client_process"]


class RemoteEventSink(BoundedHistory):
    """A bounded event sink whose cut windows ship to a detection daemon.

    Behaves exactly like :class:`~repro.history.bounded.BoundedHistory`
    for recording (ring eviction, drop accounting, staging); every
    :meth:`cut` additionally enqueues the window with the owning
    :class:`DetectionClient` for asynchronous shipping.
    """

    def __init__(
        self,
        client: "DetectionClient",
        label: str,
        capacity: int,
        *,
        staging: Optional[int] = None,
    ) -> None:
        super().__init__(capacity, staging=staging)
        self._client = client
        self._label = label

    @property
    def label(self) -> str:
        return self._label

    def cut(self, current_state) -> Segment:
        segment = super().cut(current_state)
        self._client._on_window(self._label, segment)
        return segment


class _Stream:
    """Client-side state of one monitored stream."""

    def __init__(
        self,
        label: str,
        monitor,
        sink: RemoteEventSink,
        declaration_text: str,
        overrides: dict,
    ) -> None:
        self.label = label
        self.monitor = monitor
        self.sink = sink
        self.declaration_text = declaration_text
        self.overrides = overrides
        #: Window frames captured but not yet acked (replay buffer).
        self.pending: list[dict] = []
        #: Prefix of ``pending`` already sent on the *current* connection.
        self.sent = 0
        #: Highest window sequence the server has acked.
        self.acked = -1
        self.next_seq = 0
        #: Loss accounting carried into the next captured window: windows
        #: shed from the replay buffer and the events they held.
        self.carried_lost_windows = 0
        self.carried_lost_events = 0
        self.windows_captured = 0
        self.windows_evicted = 0
        self.events_lost = 0

    def spec(self) -> dict:
        entry = {"label": self.label, "declaration": self.declaration_text}
        entry.update(self.overrides)
        return entry


class DetectionClient:
    """Ships checkpoint windows to a :class:`DetectionServer`, resiliently.

    Parameters
    ----------
    kernel:
        The workload's kernel — capture timestamps, backoff scheduling
        and heartbeats all run on its clock.
    connector:
        Zero-argument callable returning a connection (an object with
        ``send(bytes) -> bool``, ``receive() -> bytes``, ``close()``,
        ``alive``) or ``None`` when the server is unreachable.  May
        raise; the client treats that as unreachable too.
    name:
        Human-readable client name (prefixes server-side stream labels).
    interval:
        Checkpoint period, in kernel time (drives heartbeat defaults).
    replay_limit:
        Per-stream bound on buffered unacked windows; beyond it the
        oldest window is shed with explicit loss accounting.
    seed:
        Seeds backoff jitter and the deterministic resume token.
    """

    def __init__(
        self,
        kernel: Kernel,
        connector: Callable[[], object],
        *,
        name: str = "client",
        interval: float = 5.0,
        replay_limit: int = 64,
        heartbeat_interval: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        backoff_base: float = 0.5,
        backoff_max: float = 30.0,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        if replay_limit < 1:
            raise ValueError(
                f"replay_limit must be >= 1, got {replay_limit!r}"
            )
        self.kernel = kernel
        self.connector = connector
        self.name = name
        self.interval = interval
        self.replay_limit = replay_limit
        self.heartbeat_interval = (
            2.0 * interval if heartbeat_interval is None else heartbeat_interval
        )
        self.heartbeat_timeout = (
            6.0 * interval if heartbeat_timeout is None else heartbeat_timeout
        )
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.jitter = jitter
        self._rng = random.Random(seed)
        #: Deterministic resume token: stable across client restarts with
        #: the same name/seed, which is what lets the server resume the
        #: session's streams.
        self.token = f"{name}-{seed}"
        self._streams: dict[str, _Stream] = {}
        self._conn = None
        self._decoder: Optional[FrameDecoder] = None
        #: "disconnected" | "handshaking" | "ready"
        self.state = "disconnected"
        self._retry_at = 0.0
        self._attempts = 0
        self._handshake_started = 0.0
        self._last_rx = 0.0
        self._last_ping = float("-inf")
        self.credits = 0
        self.connects = 0
        self.disconnects = 0
        self.reconnect_delays: list[float] = []
        self.windows_shipped = 0
        self.windows_acked = 0
        self.heartbeats_sent = 0
        self.backpressure_seen = 0
        self.server_resumed = 0
        #: Server error frames received (quarantines); should stay empty.
        self.server_errors: list[str] = []
        #: Unexpected local failures; the campaign asserts this is empty.
        self.errors: list[str] = []

    # -------------------------------------------------------------- streams

    def attach(
        self,
        target,
        *,
        label: Optional[str] = None,
        capacity: int = 256,
        staging: Optional[int] = None,
        tmax: Optional[float] = None,
        tio: Optional[float] = None,
        tlimit: Optional[float] = None,
    ):
        """Wire a monitor's history into this client as one stream.

        Returns the attached :class:`RemoteEventSink`.  The monitor's
        declaration is rendered and shipped in the handshake, so the
        server can build the shadow checker without sharing any code
        objects — the declaration text is the entire contract.
        """
        monitor = getattr(target, "monitor", target)
        name = label or monitor.name
        if name in self._streams:
            raise ValueError(f"stream {name!r} already attached")
        sink = RemoteEventSink(self, name, capacity, staging=staging)
        overrides = {
            key: value
            for key, value in zip(STREAM_OVERRIDES, (tmax, tio, tlimit))
            if value is not None
        }
        declaration: MonitorDeclaration = monitor.declaration
        stream = _Stream(name, monitor, sink, declaration.render(), overrides)
        self._streams[name] = stream
        monitor.core.attach_history(sink)
        if not sink.opened:
            sink.open(monitor.core.snapshot())
        return sink

    @property
    def streams(self) -> dict[str, _Stream]:
        return self._streams

    @property
    def pending_windows(self) -> int:
        return sum(len(s.pending) for s in self._streams.values())

    @property
    def connected(self) -> bool:
        return self.state == "ready"

    # -------------------------------------------------------------- capture

    def capture(self) -> int:
        """Phase 1 for every stream, inside one atomic section.

        Snapshots and cuts all attached sinks at one consistent instant;
        the resulting windows land in the replay buffers via
        :meth:`RemoteEventSink.cut` → :meth:`_on_window`.  Returns the
        number of windows captured.
        """
        streams = list(self._streams.values())
        if not streams:
            return 0

        def _cut_all() -> int:
            for stream in streams:
                snapshot = stream.monitor.core.snapshot()
                stream.sink.cut(snapshot)
            return len(streams)

        return self.kernel.atomic(_cut_all)

    def _on_window(self, label: str, segment: Segment) -> None:
        stream = self._streams.get(label)
        if stream is None:
            return  # sink detached or foreign cut: nothing to ship
        frame = window_frame(
            label,
            stream.next_seq,
            self.kernel.now(),
            segment,
            lost_windows=stream.carried_lost_windows,
            lost_events=stream.carried_lost_events,
        )
        stream.carried_lost_windows = 0
        stream.carried_lost_events = 0
        stream.next_seq += 1
        stream.pending.append(frame)
        stream.windows_captured += 1
        while len(stream.pending) > self.replay_limit:
            shed = stream.pending.pop(0)
            if stream.sent > 0:
                stream.sent -= 1
            lost = (
                len(shed["segment"]["events"])
                + shed["segment"]["dropped"]
                + shed["lost_events"]
            )
            # The shed window's loss rides on the *oldest unsent*
            # window so the server hears about the gap on this
            # connection's next send — never on a frame already on the
            # wire, whose bytes were encoded at send time.  The frame
            # just appended is always unsent, so the index is in range.
            survivor = stream.pending[stream.sent]
            survivor["lost_windows"] += 1 + shed["lost_windows"]
            survivor["lost_events"] += lost
            stream.windows_evicted += 1
            stream.events_lost += lost

    # ------------------------------------------------------------- transport

    def _safe_close(self) -> None:
        conn, self._conn = self._conn, None
        self._decoder = None
        if conn is not None:
            try:
                conn.close()
            except Exception:  # noqa: BLE001 — transport must never raise out
                pass

    def _schedule_retry(self, reason: str) -> None:
        delay = min(
            self.backoff_base * (2.0 ** min(self._attempts, 16)),
            self.backoff_max,
        )
        delay *= 1.0 + self._rng.random() * self.jitter
        self._attempts += 1
        self._retry_at = self.kernel.now() + delay
        self.reconnect_delays.append(delay)
        del reason  # kept for debuggability in subclasses / tracing

    def _drop_connection(self, reason: str) -> None:
        if self._conn is not None or self.state != "disconnected":
            self.disconnects += 1
        self._safe_close()
        self.state = "disconnected"
        self.credits = 0
        for stream in self._streams.values():
            stream.sent = 0  # unacked frames will replay on reconnect
        self._schedule_retry(reason)

    def _try_connect(self) -> None:
        now = self.kernel.now()
        if now < self._retry_at:
            return
        try:
            conn = self.connector()
        except Exception as exc:  # noqa: BLE001 — unreachable server is data
            conn = None
            del exc
        if conn is None or not getattr(conn, "alive", False):
            self._schedule_retry("connect failed")
            return
        self._conn = conn
        self._decoder = FrameDecoder()
        hello = hello_frame(
            self.name,
            self.token,
            [stream.spec() for stream in self._streams.values()],
            {label: s.acked for label, s in self._streams.items()},
        )
        if not self._send_bytes(encode_frame(hello)):
            self._drop_connection("hello send failed")
            return
        self.state = "handshaking"
        self._handshake_started = now
        self._last_rx = now
        self._last_ping = float("-inf")
        self.connects += 1

    def _send_bytes(self, payload: bytes) -> bool:
        conn = self._conn
        if conn is None:
            return False
        try:
            return bool(conn.send(payload))
        except Exception as exc:  # noqa: BLE001 — dead socket is data
            del exc
            return False

    # --------------------------------------------------------------- frames

    def _apply_watermarks(self, watermarks: dict) -> None:
        for label, mark in watermarks.items():
            stream = self._streams.get(label)
            if stream is None or not isinstance(mark, int):
                continue
            if mark > stream.acked:
                stream.acked = mark
            while stream.pending and stream.pending[0]["seq"] <= mark:
                stream.pending.pop(0)
                if stream.sent > 0:
                    stream.sent -= 1
                self.windows_acked += 1

    def _handle_frame(self, frame: dict) -> None:
        kind = frame_type(frame)
        self._last_rx = self.kernel.now()
        if kind == "welcome":
            self._apply_watermarks(frame.get("watermarks", {}))
            self.credits = int(frame.get("credits", 0))
            if frame.get("resumed"):
                self.server_resumed += 1
            self.state = "ready"
            self._attempts = 0
        elif kind == "ack":
            self._apply_watermarks(frame.get("watermarks", {}))
            self.credits = int(frame.get("credits", 0))
        elif kind == "backpressure":
            self.backpressure_seen += 1
            self.credits = 0
        elif kind == "pong":
            pass  # _last_rx update above is the point
        elif kind == "error":
            self.server_errors.append(str(frame.get("reason", "")))
            self._drop_connection("server error frame")
        # Unknown/unexpected kinds are ignored: a newer server may speak
        # frames this client does not know, and ignoring them is safe.

    def _receive(self) -> bool:
        """Drain the connection's inbound bytes; False = connection died."""
        conn, decoder = self._conn, self._decoder
        if conn is None or decoder is None:
            return False
        try:
            data = conn.receive()
        except Exception as exc:  # noqa: BLE001 — dead socket is data
            del exc
            return False
        if data:
            try:
                frames = decoder.feed(data)
            except FrameError:
                return False  # garbled server stream: reconnect
            for frame in frames:
                self._handle_frame(frame)
                if self.state == "disconnected":
                    return True  # error frame already tore us down
        return getattr(conn, "alive", False)

    # ----------------------------------------------------------------- tick

    def tick(self) -> None:
        """One turn of the client state machine.  Never raises."""
        try:
            self._tick()
        except Exception as exc:  # noqa: BLE001 — the workload must survive
            self.errors.append(f"{type(exc).__name__}: {exc}")
            try:
                self._drop_connection("internal error")
            except Exception:  # noqa: BLE001 — last-ditch containment
                self.state = "disconnected"
                self._conn = None

    def _tick(self) -> None:
        if self.state == "disconnected":
            self._try_connect()
            if self.state == "disconnected":
                return
        if not self._receive():
            self._drop_connection("connection lost")
            return
        if self.state == "disconnected":
            return  # torn down while draining (server error frame)
        now = self.kernel.now()
        if now - self._last_rx > self.heartbeat_timeout:
            self._drop_connection("heartbeat timeout")
            return
        if self.state == "handshaking":
            if now - self._handshake_started > self.heartbeat_timeout:
                self._drop_connection("handshake timeout")
            return
        # state == "ready": ship unsent windows while credits last,
        # round-robin across streams so one chatty stream cannot starve
        # the others.
        streams = [s for s in self._streams.values() if s.sent < len(s.pending)]
        while self.credits > 0 and streams:
            for stream in list(streams):
                if self.credits <= 0:
                    break
                if stream.sent >= len(stream.pending):
                    streams.remove(stream)
                    continue
                frame = stream.pending[stream.sent]
                if not self._send_bytes(encode_frame(frame)):
                    self._drop_connection("window send failed")
                    return
                stream.sent += 1
                self.credits -= 1
                self.windows_shipped += 1
            streams = [
                s for s in streams if s.sent < len(s.pending)
            ]
        if (
            now - self._last_rx > self.heartbeat_interval
            and now - self._last_ping > self.heartbeat_interval
        ):
            if self._send_bytes(encode_frame(ping_frame(now))):
                self._last_ping = now
                self.heartbeats_sent += 1
            else:
                self._drop_connection("ping send failed")

    def close(self) -> None:
        """Orderly goodbye (best effort) and teardown."""
        if self._conn is not None and self.state == "ready":
            self._send_bytes(encode_frame(bye_frame()))
        self._safe_close()
        self.state = "disconnected"

    # ------------------------------------------------------------ inspection

    def stats(self) -> dict:
        return {
            "state": self.state,
            "connects": self.connects,
            "disconnects": self.disconnects,
            "windows_captured": sum(
                s.windows_captured for s in self._streams.values()
            ),
            "windows_shipped": self.windows_shipped,
            "windows_acked": self.windows_acked,
            "windows_evicted": sum(
                s.windows_evicted for s in self._streams.values()
            ),
            "events_lost": sum(s.events_lost for s in self._streams.values()),
            "pending_windows": self.pending_windows,
            "heartbeats_sent": self.heartbeats_sent,
            "backpressure_seen": self.backpressure_seen,
            "server_errors": list(self.server_errors),
            "errors": list(self.errors),
        }

    def __repr__(self) -> str:
        return (
            f"DetectionClient({self.name!r}, state={self.state}, "
            f"streams={len(self._streams)}, pending={self.pending_windows})"
        )


def client_process(
    client: DetectionClient,
    *,
    rounds: int,
    drain_rounds: int = 25,
) -> Iterator[Syscall]:
    """Kernel process running a client's capture/ship loop.

    Every ``client.interval`` it captures one window per stream and turns
    the state machine; after ``rounds`` captures it keeps ticking (up to
    ``drain_rounds`` extra intervals) until the replay buffers drain, so
    a run that ends while disconnected still delivers its tail after the
    reconnect, then says goodbye.
    """
    for _ in range(rounds):
        yield Delay(client.interval)
        client.capture()
        client.tick()
    for _ in range(drain_rounds):
        if client.pending_windows == 0 and client.state == "ready":
            break
        yield Delay(client.interval)
        client.tick()
    client.close()
