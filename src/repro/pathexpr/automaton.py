"""NFA/DFA compilation of path expressions for prefix-validity checking.

Algorithm-3 asks, per Enter event: *given this process's call history, may
it invoke this procedure now?*  That is prefix membership in the declared
expression's language.  We Thompson-construct an epsilon-NFA from the AST,
determinise by subset construction, and drop states from which no accepting
state is reachable — in the trimmed DFA, *any* missing transition is a
genuine ordering violation, so the per-event check is a single dict lookup.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.pathexpr.ast import Alt, Name, Opt, PathExpr, Plus, Seq, Star
from repro.pathexpr.parser import parse_path_expression

__all__ = ["OrderAutomaton", "compile_order"]


# --------------------------------------------------------------------- NFA


class _Nfa:
    """Epsilon-NFA under construction (Thompson)."""

    def __init__(self) -> None:
        self._ids = itertools.count()
        self.eps: dict[int, set[int]] = {}
        self.step: dict[tuple[int, str], set[int]] = {}

    def state(self) -> int:
        s = next(self._ids)
        self.eps.setdefault(s, set())
        return s

    def add_eps(self, src: int, dst: int) -> None:
        self.eps.setdefault(src, set()).add(dst)

    def add_step(self, src: int, symbol: str, dst: int) -> None:
        self.step.setdefault((src, symbol), set()).add(dst)

    def closure(self, states: frozenset[int]) -> frozenset[int]:
        seen = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for nxt in self.eps.get(s, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)


def _build(nfa: _Nfa, expr: PathExpr) -> tuple[int, int]:
    """Thompson construction: returns (entry, exit) states for ``expr``."""
    if isinstance(expr, Name):
        a, b = nfa.state(), nfa.state()
        nfa.add_step(a, expr.value, b)
        return a, b
    if isinstance(expr, Seq):
        first_in, prev_out = _build(nfa, expr.parts[0])
        for part in expr.parts[1:]:
            part_in, part_out = _build(nfa, part)
            nfa.add_eps(prev_out, part_in)
            prev_out = part_out
        return first_in, prev_out
    if isinstance(expr, Alt):
        a, b = nfa.state(), nfa.state()
        for option in expr.options:
            opt_in, opt_out = _build(nfa, option)
            nfa.add_eps(a, opt_in)
            nfa.add_eps(opt_out, b)
        return a, b
    if isinstance(expr, Star):
        a, b = nfa.state(), nfa.state()
        inner_in, inner_out = _build(nfa, expr.inner)
        nfa.add_eps(a, inner_in)
        nfa.add_eps(a, b)
        nfa.add_eps(inner_out, inner_in)
        nfa.add_eps(inner_out, b)
        return a, b
    if isinstance(expr, Plus):
        inner_in, inner_out = _build(nfa, expr.inner)
        b = nfa.state()
        nfa.add_eps(inner_out, inner_in)
        nfa.add_eps(inner_out, b)
        return inner_in, b
    if isinstance(expr, Opt):
        a, b = nfa.state(), nfa.state()
        inner_in, inner_out = _build(nfa, expr.inner)
        nfa.add_eps(a, inner_in)
        nfa.add_eps(a, b)
        nfa.add_eps(inner_out, b)
        return a, b
    raise TypeError(f"unknown path expression node: {expr!r}")


# --------------------------------------------------------------------- DFA


@dataclass(frozen=True)
class OrderAutomaton:
    """Trimmed DFA answering per-call order queries.

    States are small ints; ``step`` returns the successor state or ``None``
    when the call violates the declared order.  Symbols outside
    :attr:`alphabet` are unconstrained (a declaration need not mention
    every procedure) and leave the state unchanged.
    """

    source: str
    start: int
    transitions: dict[tuple[int, str], int]
    accepting: frozenset[int]
    alphabet: frozenset[str]

    def step(self, state: int, symbol: str) -> Optional[int]:
        """Successor state after invoking ``symbol``, or None on violation."""
        if symbol not in self.alphabet:
            return state
        return self.transitions.get((state, symbol))

    def accepts_now(self, state: int) -> bool:
        """True when the history so far is a *complete* word of the language.

        A process that terminates with ``accepts_now() == False`` holds an
        unfinished protocol (e.g. Request without Release).
        """
        return state in self.accepting

    def check(self, symbols: list[str]) -> Optional[int]:
        """Walk a whole call sequence; index of the first violation or None."""
        state = self.start
        for index, symbol in enumerate(symbols):
            nxt = self.step(state, symbol)
            if nxt is None:
                return index
            state = nxt
        return None

    def __repr__(self) -> str:
        return (
            f"OrderAutomaton({self.source!r}, states="
            f"{len({s for s, _ in self.transitions} | self.accepting | {self.start})})"
        )


def compile_order(source: str) -> OrderAutomaton:
    """Parse and compile a path expression into an :class:`OrderAutomaton`."""
    expr = parse_path_expression(source)
    alphabet = expr.alphabet()
    nfa = _Nfa()
    entry, exit_ = _build(nfa, expr)

    # subset construction
    start_set = nfa.closure(frozenset({entry}))
    dfa_ids: dict[frozenset[int], int] = {start_set: 0}
    transitions: dict[tuple[int, str], int] = {}
    accepting: set[int] = set()
    worklist = [start_set]
    while worklist:
        current = worklist.pop()
        cid = dfa_ids[current]
        if exit_ in current:
            accepting.add(cid)
        for symbol in alphabet:
            targets: set[int] = set()
            for state in current:
                targets |= nfa.step.get((state, symbol), set())
            if not targets:
                continue
            closed = nfa.closure(frozenset(targets))
            if closed not in dfa_ids:
                dfa_ids[closed] = len(dfa_ids)
                worklist.append(closed)
            transitions[(cid, symbol)] = dfa_ids[closed]

    # trim: keep only states from which an accepting state is reachable,
    # so prefix validity == "a transition exists".
    reach_accepting = set(accepting)
    changed = True
    while changed:
        changed = False
        for (src, __), dst in transitions.items():
            if dst in reach_accepting and src not in reach_accepting:
                reach_accepting.add(src)
                changed = True
    trimmed = {
        key: dst
        for key, dst in transitions.items()
        if key[0] in reach_accepting and dst in reach_accepting
    }
    return OrderAutomaton(
        source=source,
        start=0,
        transitions=trimmed,
        accepting=frozenset(accepting),
        alphabet=alphabet,
    )
