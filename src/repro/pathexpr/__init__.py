"""Path-expression notation for procedure call orders (paper Section 3).

The paper requires "the partial ordering of procedure calls within a
monitor be specified in the monitor declaration" using a "path-expression
like notation" (Campbell & Kolstad, reference [3]).  This package provides
the notation:

* a small grammar — names, sequencing ``;``, alternation ``|``, repetition
  ``*`` / ``+`` / ``?``, grouping ``( )``,
* a recursive-descent parser producing an AST,
* a Thompson-construction NFA, determinised and trimmed into an
  :class:`~repro.pathexpr.automaton.OrderAutomaton` that answers the one
  question Algorithm-3 asks per event: *may this process, given its call
  history, invoke this procedure now?*

Validity is prefix-based: a call sequence is legal while it is a prefix of
some word in the expression's language.  Example::

    auto = compile_order("(Request ; Release)*")
    state = auto.start
    state = auto.step(state, "Request")   # ok
    auto.step(state, "Request")           # -> None: violation (III.c)
"""

from repro.pathexpr.ast import Alt, Name, Opt, PathExpr, Plus, Seq, Star
from repro.pathexpr.automaton import OrderAutomaton, compile_order
from repro.pathexpr.parser import parse_path_expression

__all__ = [
    "PathExpr",
    "Name",
    "Seq",
    "Alt",
    "Star",
    "Plus",
    "Opt",
    "parse_path_expression",
    "OrderAutomaton",
    "compile_order",
]
