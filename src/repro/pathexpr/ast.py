"""AST node types for path expressions."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PathExpr", "Name", "Seq", "Alt", "Star", "Plus", "Opt"]


class PathExpr:
    """Base class for path-expression AST nodes."""

    __slots__ = ()

    def alphabet(self) -> frozenset[str]:
        """Every procedure name mentioned in the expression."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Name(PathExpr):
    """A single procedure invocation."""

    value: str

    def alphabet(self) -> frozenset[str]:
        return frozenset({self.value})

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Seq(PathExpr):
    """``a ; b`` — a then b."""

    parts: tuple[PathExpr, ...]

    def alphabet(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for part in self.parts:
            result |= part.alphabet()
        return result

    def __str__(self) -> str:
        return " ; ".join(_wrap(p) for p in self.parts)


@dataclass(frozen=True, slots=True)
class Alt(PathExpr):
    """``a | b`` — a or b."""

    options: tuple[PathExpr, ...]

    def alphabet(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for option in self.options:
            result |= option.alphabet()
        return result

    def __str__(self) -> str:
        return " | ".join(_wrap(o) for o in self.options)


@dataclass(frozen=True, slots=True)
class Star(PathExpr):
    """``a*`` — zero or more repetitions."""

    inner: PathExpr

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True, slots=True)
class Plus(PathExpr):
    """``a+`` — one or more repetitions."""

    inner: PathExpr

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}+"


@dataclass(frozen=True, slots=True)
class Opt(PathExpr):
    """``a?`` — zero or one occurrence."""

    inner: PathExpr

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}?"


def _wrap(expr: PathExpr) -> str:
    if isinstance(expr, (Seq, Alt)):
        return f"({expr})"
    return str(expr)
