"""Recursive-descent parser for path expressions.

Grammar (lowest to highest precedence)::

    expr   := seq ( '|' seq )*
    seq    := rep ( ';' rep )*
    rep    := atom ( '*' | '+' | '?' )*
    atom   := NAME | '(' expr ')'
    NAME   := [A-Za-z_][A-Za-z0-9_]*

Whitespace is insignificant.  ``;`` binds tighter than ``|``, so
``a ; b | c`` parses as ``(a ; b) | c``.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import PathExpressionSyntaxError
from repro.pathexpr.ast import Alt, Name, Opt, PathExpr, Plus, Seq, Star

__all__ = ["parse_path_expression"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)|(?P<punct>[();|*+?]))"
)


class _Tokenizer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.current: Optional[str] = None
        self.advance()

    def advance(self) -> None:
        rest = self.source[self.pos :]
        if not rest.strip():
            self.current = None
            self.pos = len(self.source)
            return
        match = _TOKEN_RE.match(self.source, self.pos)
        if match is None:
            raise PathExpressionSyntaxError(
                "unexpected character", self.pos, self.source
            )
        self.pos = match.end()
        self.current = match.group("name") or match.group("punct")

    def expect(self, punct: str) -> None:
        if self.current != punct:
            raise PathExpressionSyntaxError(
                f"expected {punct!r}, found {self.current!r}",
                self.pos,
                self.source,
            )
        self.advance()


def parse_path_expression(source: str) -> PathExpr:
    """Parse ``source`` into a :class:`~repro.pathexpr.ast.PathExpr`."""
    if not source or not source.strip():
        raise PathExpressionSyntaxError("empty path expression", 0, source)
    tokens = _Tokenizer(source)
    expr = _parse_alt(tokens)
    if tokens.current is not None:
        raise PathExpressionSyntaxError(
            f"trailing input {tokens.current!r}", tokens.pos, source
        )
    return expr


def _parse_alt(tokens: _Tokenizer) -> PathExpr:
    options = [_parse_seq(tokens)]
    while tokens.current == "|":
        tokens.advance()
        options.append(_parse_seq(tokens))
    if len(options) == 1:
        return options[0]
    return Alt(tuple(options))


def _parse_seq(tokens: _Tokenizer) -> PathExpr:
    parts = [_parse_rep(tokens)]
    while tokens.current == ";":
        tokens.advance()
        parts.append(_parse_rep(tokens))
    if len(parts) == 1:
        return parts[0]
    return Seq(tuple(parts))


def _parse_rep(tokens: _Tokenizer) -> PathExpr:
    expr = _parse_atom(tokens)
    while tokens.current in ("*", "+", "?"):
        if tokens.current == "*":
            expr = Star(expr)
        elif tokens.current == "+":
            expr = Plus(expr)
        else:
            expr = Opt(expr)
        tokens.advance()
    return expr


def _parse_atom(tokens: _Tokenizer) -> PathExpr:
    token = tokens.current
    if token == "(":
        tokens.advance()
        expr = _parse_alt(tokens)
        tokens.expect(")")
        return expr
    if token is None or token in ");|*+?":
        raise PathExpressionSyntaxError(
            f"expected a name or '(', found {token!r}",
            tokens.pos,
            tokens.source,
        )
    tokens.advance()
    return Name(token)
