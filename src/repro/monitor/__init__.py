"""The monitor construct, augmented for run-time fault detection.

Layering (mirrors Figure 1 of the paper):

* :class:`~repro.monitor.core.MonitorCore` — a *pure* scheduling state
  machine: Running set, entry queue, condition queues, urgent stack.  Every
  transition is a plain function from state to (state, processes-to-wake).
  It performs the data gathering (event recording) and exposes the
  perturbation hooks used by fault injection.  Being pure makes it
  unit-testable without any kernel and identical across substrates.
* :class:`~repro.monitor.construct.Monitor` — binds a core to a
  :class:`~repro.kernel.base.Kernel`: it wraps each transition in
  ``kernel.atomic``, translates "caller must block" into the ``Block``
  syscall, and delivers wake-ups via ``kernel.make_ready``.
* :class:`~repro.monitor.construct.MonitorBase` + the
  :func:`~repro.monitor.procedures.procedure` decorator — the user-facing
  construct: declare a monitor class, write procedures as generator
  methods, get Enter/Exit bracketing, history recording and call-order
  specification automatically.
"""

from repro.monitor.classification import MonitorType
from repro.monitor.construct import Monitor, MonitorBase
from repro.monitor.core import MonitorCore, Transition
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.metrics import DurationStats, MonitorMetrics
from repro.monitor.procedures import procedure
from repro.monitor.semantics import Discipline

__all__ = [
    "MonitorType",
    "Discipline",
    "MonitorDeclaration",
    "CoreHooks",
    "MonitorCore",
    "Transition",
    "Monitor",
    "MonitorBase",
    "procedure",
    "MonitorMetrics",
    "DurationStats",
]
