"""Signalling disciplines (monitor classification of Buhr & Fortier [2]).

The paper's primitive set combines signal and exit into ``Signal-Exit``,
following Hoare's observation that signalling processes "normally exit the
monitor right after issuing the signalling operation".  For completeness —
and because the paper's Section 2 grounds its taxonomy in the wider monitor
classification literature — the construct also implements the two classic
non-exiting disciplines.  The detection algorithms are defined (and proved)
for the ``SIGNAL_EXIT`` discipline; the extended checker tracks the urgent
stack so Hoare-style monitors can be checked too (documented deviation, see
DESIGN.md).
"""

from __future__ import annotations

import enum

__all__ = ["Discipline"]


class Discipline(enum.Enum):
    """How ``signal`` hands the monitor to a waiting process."""

    #: The paper's primitive: signalling and exiting are one operation.  The
    #: resumed waiter (if any) receives the monitor directly.
    SIGNAL_EXIT = "signal-exit"

    #: Hoare semantics: the signaller is suspended on the *urgent stack*, the
    #: waiter runs immediately, and the signaller resumes with priority once
    #: the waiter releases the monitor.  Condition checks need only ``if``.
    SIGNAL_AND_WAIT = "signal-and-wait"

    #: Mesa semantics: the signalled waiter is moved to the entry queue and
    #: re-admitted later; the signaller keeps running.  Condition checks
    #: must be ``while`` loops.
    SIGNAL_AND_CONTINUE = "signal-and-continue"

    @property
    def signaller_keeps_monitor(self) -> bool:
        return self is Discipline.SIGNAL_AND_CONTINUE

    @property
    def waiter_runs_immediately(self) -> bool:
        return self in (Discipline.SIGNAL_EXIT, Discipline.SIGNAL_AND_WAIT)
