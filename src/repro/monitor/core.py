"""The monitor scheduling core: a pure, instrumented state machine.

``MonitorCore`` owns the scheduling state of one monitor — the Running set,
the entry queue (EQ), the condition queues (CQ[Cond]) and, for the Hoare
discipline, the urgent stack — and implements the primitives Enter, Wait,
Signal, Signal-Exit and Exit as *transitions*: plain functions that mutate
the state and return what the substrate must do (block the caller and/or
wake other processes).  The core never blocks and never touches a kernel,
which is what lets the same implementation run under the simulation kernel,
the thread kernel and the unit tests' no-kernel harness.

Two cross-cutting concerns are threaded through every transition:

* **Data gathering** (the paper's real-time recording routines): each
  transition emits a :class:`~repro.history.events.SchedulingEvent` into the
  attached :class:`~repro.history.sink.EventSink` (typically a
  :class:`~repro.history.database.HistoryDatabase`; any sink implementation
  works — the core only speaks the protocol).  A core with no sink attached
  is the paper's "monitor without the extension" baseline used in the
  overhead experiment.
* **Perturbation hooks** (:class:`~repro.monitor.hooks.CoreHooks`): every
  scheduling decision consults the hooks so the fault-injection campaigns
  can realise each taxonomy entry.  Injected misbehaviour changes *reality*
  (the queues, the wake-ups) while recording continues to log what the
  implementation claims happened — exactly the discrepancy the detection
  algorithms exist to catch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.errors import (
    MonitorUsageError,
    NotInsideMonitorError,
    UnknownConditionError,
    UnknownProcedureError,
)
from repro.history.sink import EventSink
from repro.history.events import (
    SchedulingEvent,
    enter_event,
    signal_event,
    signal_exit_event,
    wait_event,
)
from repro.history.states import QueueEntry, SchedulingState
from repro.ids import Cond, Pid, Pname
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks
from repro.monitor.semantics import Discipline

__all__ = ["Transition", "MonitorCore"]


@dataclass(frozen=True, slots=True)
class Transition:
    """What the substrate must do after a core transition.

    ``caller_blocks`` — the invoking process must block (the driver yields a
    ``Block`` syscall).  ``wake`` — pids to hand wake-up permits to, in
    order.  ``event`` — the scheduling event recorded (None when recording
    was suppressed or no database is attached).
    """

    caller_blocks: bool
    wake: tuple[Pid, ...] = ()
    event: Optional[SchedulingEvent] = None


class MonitorCore:
    """Scheduling state machine for one monitor.

    Parameters
    ----------
    declaration:
        The monitor's static specification.
    now:
        Time source (the bound kernel's clock); queue entries are stamped
        with it so the checker can evaluate ``Timer(pid)``.
    history:
        Event sink for recording (any :class:`EventSink`), or None to run
        bare (the overhead baseline).
    hooks:
        Perturbation hooks; defaults to correct behaviour.
    resource_probe:
        For communication-coordinator monitors: callable returning ``R#``,
        the number of currently available resources (free buffer slots).
        Captured into every state snapshot.
    """

    def __init__(
        self,
        declaration: MonitorDeclaration,
        now: Callable[[], float],
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        resource_probe: Optional[Callable[[], int]] = None,
    ) -> None:
        self.declaration = declaration
        self._now = now
        self._history = history
        self._hooks = hooks or CoreHooks()
        self._probe = resource_probe
        self._running: list[QueueEntry] = []
        self._entry_queue: deque[QueueEntry] = deque()
        self._cond_queues: dict[Cond, deque[QueueEntry]] = {
            cond: deque() for cond in declaration.conditions
        }
        self._urgent: list[QueueEntry] = []

    # --------------------------------------------------------------- plumbing

    @property
    def hooks(self) -> CoreHooks:
        return self._hooks

    @hooks.setter
    def hooks(self, hooks: CoreHooks) -> None:
        self._hooks = hooks

    @property
    def history(self) -> Optional[EventSink]:
        return self._history

    def attach_history(self, history: EventSink) -> None:
        """Attach the event sink and install the initial snapshot."""
        self._history = history
        if not history.opened:
            history.open(self.snapshot())

    def _record(self, build: Callable[[int], SchedulingEvent]) -> Optional[SchedulingEvent]:
        if self._history is None:
            return None
        event = build(self._history.next_seq())
        if not self._hooks.should_record(event):
            return None
        self._history.record(event)
        return event

    # ------------------------------------------------------------- validation

    def _check_procedure(self, pname: Pname) -> None:
        if not self.declaration.has_procedure(pname):
            raise UnknownProcedureError(
                f"monitor {self.declaration.name!r} has no procedure {pname!r}"
            )

    def _check_condition(self, cond: Cond) -> None:
        if cond not in self._cond_queues:
            raise UnknownConditionError(
                f"monitor {self.declaration.name!r} has no condition {cond!r}"
            )

    def _running_entry(self, pid: Pid, op: str) -> QueueEntry:
        for entry in self._running:
            if entry.pid == pid:
                return entry
        raise NotInsideMonitorError(
            f"process P{pid} called {op} on monitor "
            f"{self.declaration.name!r} without being inside it"
        )

    def _where(self, pid: Pid) -> Optional[str]:
        if any(e.pid == pid for e in self._running):
            return "running"
        if any(e.pid == pid for e in self._entry_queue):
            return "entry queue"
        if any(e.pid == pid for e in self._urgent):
            return "urgent stack"
        for cond, queue in self._cond_queues.items():
            if any(e.pid == pid for e in queue):
                return f"condition queue {cond!r}"
        return None

    # ------------------------------------------------------------ transitions

    def enter(self, pid: Pid, pname: Pname) -> Transition:
        """The Enter primitive: acquire mutually exclusive monitor access."""
        self._check_procedure(pname)
        where = self._where(pid)
        if where is not None:
            raise MonitorUsageError(
                f"process P{pid} re-entered monitor {self.declaration.name!r} "
                f"while already in its {where} (nested monitor calls are not "
                "supported)"
            )
        now = self._now()
        if not self._running or self._hooks.enter_admit_despite_owner(pid, pname):
            self._running.append(QueueEntry(pid, pname, now))
            event = self._record(
                lambda seq: enter_event(seq, pid, pname, now, flag=1)
            )
            return Transition(caller_blocks=False, event=event)
        event = self._record(lambda seq: enter_event(seq, pid, pname, now, flag=0))
        if not self._hooks.enter_drop_request(pid, pname):
            self._entry_queue.append(QueueEntry(pid, pname, now))
        return Transition(caller_blocks=True, event=event)

    def wait(self, pid: Pid, cond: Cond) -> Transition:
        """The Wait primitive: block on a condition, releasing the monitor."""
        self._check_condition(cond)
        entry = self._running_entry(pid, f"Wait({cond})")
        now = self._now()
        event = self._record(
            lambda seq: wait_event(seq, pid, entry.pname, cond, now)
        )
        if self._hooks.wait_no_block(pid, cond):
            # Fault I.b.1: the caller just keeps running inside the monitor.
            return Transition(caller_blocks=False, event=event)
        self._running.remove(entry)
        if not self._hooks.wait_lose_caller(pid, cond):
            self._cond_queues[cond].append(QueueEntry(pid, entry.pname, now))
        if self._hooks.wait_hold_monitor(pid, cond):
            # Fault I.b.6: the lock is never handed over.  Reality: the slot
            # stays occupied by the now-sleeping process.
            self._running.append(entry)
            return Transition(caller_blocks=True, event=event)
        wake = self._admit_next(now, origin="wait")
        return Transition(caller_blocks=True, wake=tuple(wake), event=event)

    def signal_exit(self, pid: Pid, cond: Optional[Cond] = None) -> Transition:
        """The combined Signal-Exit primitive (paper Section 2).

        With ``cond=None`` this is a plain Exit: no condition is signalled,
        flag is recorded 0, and the entry queue head (if any) is admitted.
        """
        if cond is not None:
            self._check_condition(cond)
        entry = self._running_entry(pid, f"Signal-Exit({cond})")
        now = self._now()
        queue = self._cond_queues.get(cond) if cond is not None else None
        waiter: Optional[QueueEntry] = None
        flag = 0
        if queue:
            if self._hooks.sigexit_fake_resume(pid, cond):
                flag = 1  # recorded claim; nobody actually resumed
            else:
                waiter = queue.popleft()
                flag = 1
        event = self._record(
            lambda seq: signal_exit_event(
                seq, pid, entry.pname, now, flag=flag, cond=cond
            )
        )
        wake: list[Pid] = []
        if not self._hooks.sigexit_hold_monitor(pid):
            self._running.remove(entry)
        if waiter is not None:
            self._running.append(replace(waiter, since=now))
            wake.append(waiter.pid)
            if (
                self._hooks.admission_admit_extra("signal-exit-handoff")
                and self._entry_queue
            ):
                extra = self._entry_queue.popleft()
                self._running.append(replace(extra, since=now))
                wake.append(extra.pid)
        else:
            wake.extend(self._admit_next(now, origin="signal-exit"))
        return Transition(caller_blocks=False, wake=tuple(wake), event=event)

    def exit(self, pid: Pid) -> Transition:
        """Plain Exit: leave the monitor without signalling any condition."""
        return self.signal_exit(pid, cond=None)

    def signal(self, pid: Pid, cond: Cond) -> Transition:
        """The Signal primitive under the declared discipline.

        * ``SIGNAL_EXIT`` — identical to :meth:`signal_exit`.
        * ``SIGNAL_AND_WAIT`` (Hoare) — the waiter runs at once; the
          signaller is parked on the urgent stack and blocks.
        * ``SIGNAL_AND_CONTINUE`` (Mesa) — the waiter is moved to the entry
          queue; the signaller keeps the monitor.
        """
        discipline = self.declaration.discipline
        if discipline is Discipline.SIGNAL_EXIT:
            return self.signal_exit(pid, cond)
        self._check_condition(cond)
        entry = self._running_entry(pid, f"Signal({cond})")
        now = self._now()
        queue = self._cond_queues[cond]
        if discipline is Discipline.SIGNAL_AND_WAIT:
            if not queue:
                event = self._record(
                    lambda seq: signal_event(seq, pid, entry.pname, cond, now, 0)
                )
                return Transition(caller_blocks=False, event=event)
            waiter = queue.popleft()
            event = self._record(
                lambda seq: signal_event(seq, pid, entry.pname, cond, now, 1)
            )
            self._running.remove(entry)
            self._urgent.append(replace(entry, since=now))
            self._running.append(replace(waiter, since=now))
            return Transition(caller_blocks=True, wake=(waiter.pid,), event=event)
        # SIGNAL_AND_CONTINUE
        flag = 0
        if queue:
            waiter = queue.popleft()
            self._entry_queue.append(replace(waiter, since=now))
            flag = 1
        event = self._record(
            lambda seq: signal_event(seq, pid, entry.pname, cond, now, flag)
        )
        return Transition(caller_blocks=False, event=event)

    def broadcast(self, pid: Pid, cond: Cond) -> Transition:
        """Signal every waiter on ``cond`` (Mesa extension, cf. notifyAll).

        Only meaningful under ``SIGNAL_AND_CONTINUE``: each waiter is moved
        to the entry queue (recorded as one Signal event per waiter) and
        re-admitted as the monitor frees up.  Under the other disciplines a
        broadcast cannot preserve mutual exclusion, so it is rejected.
        """
        if self.declaration.discipline is not Discipline.SIGNAL_AND_CONTINUE:
            raise MonitorUsageError(
                f"broadcast requires the signal-and-continue discipline; "
                f"monitor {self.declaration.name!r} declares "
                f"{self.declaration.discipline.value}"
            )
        self._check_condition(cond)
        entry = self._running_entry(pid, f"Broadcast({cond})")
        now = self._now()
        queue = self._cond_queues[cond]
        last_event: Optional[SchedulingEvent] = None
        while queue:
            waiter = queue.popleft()
            self._entry_queue.append(replace(waiter, since=now))
            last_event = self._record(
                lambda seq: signal_event(seq, pid, entry.pname, cond, now, 1)
            )
        return Transition(caller_blocks=False, event=last_event)

    def expel(self, pid: Pid) -> list[Pid]:
        """Forcibly vacate ``pid``'s Running slot (recovery extension).

        Out-of-band with respect to the event history: recovery repairs the
        *actual* state, it does not rewrite what happened.  Returns the
        pids to wake from the follow-up admission.
        """
        entry = self._running_entry(pid, "Expel")
        self._running.remove(entry)
        return self._admit_next(self._now(), origin="signal-exit")

    def queue_length(self, cond: Cond) -> int:
        """Number of processes waiting on ``cond`` (Hoare's ``cond.queue``)."""
        self._check_condition(cond)
        return len(self._cond_queues[cond])

    # -------------------------------------------------------------- admission

    def _admit_next(self, now: float, origin: str) -> list[Pid]:
        """Hand the free monitor to the next waiting process, if any.

        Priority: urgent stack (Hoare signallers) over the entry queue.
        Resumption is deliberately *not* recorded as a new event — the
        trimmed EVENTset of Section 3.3.1 infers it from the releasing
        event, which is what keeps checking single-pass.
        """
        if self._hooks.admission_suppressed(origin):
            return []
        if self._running:
            return []
        wake: list[Pid] = []
        chosen: Optional[QueueEntry] = None
        if self._urgent:
            chosen = self._urgent.pop()
        elif self._entry_queue:
            chosen = self._pop_entry_honouring_victims()
        if chosen is not None:
            self._running.append(replace(chosen, since=now))
            wake.append(chosen.pid)
            if self._hooks.admission_admit_extra(origin) and self._entry_queue:
                extra = self._pop_entry_honouring_victims()
                if extra is not None:
                    self._running.append(replace(extra, since=now))
                    wake.append(extra.pid)
        return wake

    def _pop_entry_honouring_victims(self) -> Optional[QueueEntry]:
        """Pop the entry-queue head, skipping injected starvation victims."""
        for index, entry in enumerate(self._entry_queue):
            if not self._hooks.admission_skip_victim(entry.pid):
                del self._entry_queue[index]
                return entry
        return None

    # --------------------------------------------------------------- snapshot

    def snapshot(self) -> SchedulingState:
        """Capture the actual scheduling state (the checker's ``s_t``)."""
        return SchedulingState(
            time=self._now(),
            entry_queue=tuple(self._entry_queue),
            cond_queues={
                cond: tuple(queue) for cond, queue in self._cond_queues.items()
            },
            running=tuple(self._running),
            resource_count=self._probe() if self._probe is not None else None,
            urgent=tuple(self._urgent),
        )

    # ------------------------------------------------------------- inspection

    @property
    def running_pids(self) -> tuple[Pid, ...]:
        return tuple(entry.pid for entry in self._running)

    @property
    def entry_pids(self) -> tuple[Pid, ...]:
        return tuple(entry.pid for entry in self._entry_queue)

    def cond_pids(self, cond: Cond) -> tuple[Pid, ...]:
        self._check_condition(cond)
        return tuple(entry.pid for entry in self._cond_queues[cond])

    def is_inside(self, pid: Pid) -> bool:
        return any(entry.pid == pid for entry in self._running)

    @property
    def idle(self) -> bool:
        """True when nobody is inside and nobody is waiting."""
        return (
            not self._running
            and not self._entry_queue
            and not self._urgent
            and all(not q for q in self._cond_queues.values())
        )

    def __repr__(self) -> str:
        return (
            f"MonitorCore({self.declaration.name!r}, running={self.running_pids}, "
            f"eq={self.entry_pids})"
        )
