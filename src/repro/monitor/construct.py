"""The kernel-bound monitor construct and the user-facing base class.

:class:`Monitor` binds a :class:`~repro.monitor.core.MonitorCore` to a
kernel.  Each primitive is a generator: the core transition runs inside
``kernel.atomic``, wake-ups are delivered through ``kernel.make_ready``, and
"caller must block" becomes a ``Block`` syscall — so the primitives compose
with process bodies via ``yield from``.

:class:`MonitorBase` is what applications subclass.  Together with the
:func:`~repro.monitor.procedures.procedure` decorator it reproduces the
paper's augmented declaration form: the monitor type, condition variables
and procedure call order are stated once in a
:class:`~repro.monitor.declaration.MonitorDeclaration`, and Enter /
Signal-Exit bracketing plus history recording happen automatically.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Iterator, Optional

from repro.errors import MonitorUsageError
from repro.history.sink import EventSink
from repro.history.states import SchedulingState
from repro.ids import Cond, Pid, Pname
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Block, Syscall
from repro.monitor.core import MonitorCore, Transition
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.hooks import CoreHooks

__all__ = ["Monitor", "MonitorBase"]


class Monitor:
    """A monitor bound to an execution kernel.

    Parameters
    ----------
    kernel:
        The execution substrate.
    declaration:
        Static monitor specification (name, type, conditions, call order).
    history:
        Attach an event sink (e.g. a history database) to enable the
        paper's extension (event recording + snapshots).  ``None`` runs the
        plain construct — the baseline of the overhead experiment.
    hooks:
        Perturbation hooks for fault injection.
    resource_probe:
        ``R#`` probe for communication-coordinator monitors.
    """

    def __init__(
        self,
        kernel: Kernel,
        declaration: MonitorDeclaration,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
        resource_probe: Optional[Callable[[], int]] = None,
    ) -> None:
        self.kernel = kernel
        #: Pids whose current procedure invocation already issued an
        #: explicit Signal-Exit/Exit.  The @procedure wrapper consults this
        #: instead of the Running set so an injected "monitor not released"
        #: fault is not silently repaired by the automatic exit.
        self.explicit_exits: set[Pid] = set()
        #: Accumulated wall-clock seconds spent executing primitives, and
        #: the number of primitive invocations (overhead accounting).
        self.op_seconds = 0.0
        self.op_count = 0
        self.core = MonitorCore(
            declaration,
            now=kernel.now,
            history=None,
            hooks=hooks,
            resource_probe=resource_probe,
        )
        if history is not None:
            self.core.attach_history(history)

    @property
    def declaration(self) -> MonitorDeclaration:
        return self.core.declaration

    @property
    def name(self) -> str:
        return self.core.declaration.name

    @property
    def history(self) -> Optional[EventSink]:
        return self.core.history

    # ------------------------------------------------------------- primitives
    #
    # Each primitive accumulates the wall-clock time spent *executing* the
    # monitor operation (the atomic transition plus wake-up delivery, not
    # any blocking) into ``op_seconds``.  The overhead experiment (Table 1)
    # is the ratio of this figure — plus checking time — between the
    # augmented and the plain construct, which is how the paper defines
    # "the time spent on executing monitor operations".

    def _apply(self, transition: Transition) -> None:
        for pid in transition.wake:
            self.kernel.make_ready(pid)

    def _timed(self, fn: Callable[[], Transition]) -> Transition:
        started = perf_counter()
        try:
            transition = self.kernel.atomic(fn)
            self._apply(transition)
        finally:
            self.op_seconds += perf_counter() - started
        self.op_count += 1
        return transition

    def enter(self, pname: Pname) -> Iterator[Syscall]:
        """Enter primitive; ``yield from`` it inside a process body."""
        pid = self.kernel.current_pid()
        transition = self._timed(lambda: self.core.enter(pid, pname))
        if transition.caller_blocks:
            yield Block(reason=f"monitor-entry:{self.name}")

    def wait(self, cond: Cond) -> Iterator[Syscall]:
        """Wait primitive; blocks on the named condition queue."""
        pid = self.kernel.current_pid()
        transition = self._timed(lambda: self.core.wait(pid, cond))
        if transition.caller_blocks:
            yield Block(reason=f"monitor-cond:{self.name}:{cond}")

    def signal_exit(self, cond: Optional[Cond] = None) -> None:
        """Signal-Exit primitive (never blocks; plain call)."""
        pid = self.kernel.current_pid()
        self._timed(lambda: self.core.signal_exit(pid, cond))
        self.explicit_exits.add(pid)

    def exit(self) -> None:
        """Plain Exit (Signal-Exit with no condition)."""
        self.signal_exit(None)

    def signal(self, cond: Cond) -> Iterator[Syscall]:
        """Signal primitive under the declared discipline.

        Must be ``yield from``-ed: under the Hoare discipline the signaller
        blocks on the urgent stack.
        """
        pid = self.kernel.current_pid()
        transition = self._timed(lambda: self.core.signal(pid, cond))
        if transition.caller_blocks:
            yield Block(reason=f"monitor-urgent:{self.name}")

    def broadcast(self, cond: Cond) -> None:
        """Signal every waiter on ``cond`` (Mesa discipline only)."""
        pid = self.kernel.current_pid()
        self._timed(lambda: self.core.broadcast(pid, cond))

    # --------------------------------------------------------------- support

    def waiting(self, cond: Cond) -> int:
        """Number of processes waiting on ``cond`` (Hoare's ``cond.queue``)."""
        return self.kernel.atomic(lambda: self.core.queue_length(cond))

    def snapshot(self) -> SchedulingState:
        """Atomically capture the monitor's actual scheduling state."""
        return self.kernel.atomic(self.core.snapshot)

    def is_inside(self, pid: Pid) -> bool:
        return self.core.is_inside(pid)

    def __repr__(self) -> str:
        return f"Monitor({self.name!r} on {type(self.kernel).__name__})"


class MonitorBase:
    """Base class for application monitors.

    Subclasses provide :meth:`declare` (returning the declaration) and write
    monitor procedures as generator methods decorated with
    :func:`~repro.monitor.procedures.procedure`.  Example::

        class Allocator(MonitorBase):
            def declare(self):
                return MonitorDeclaration(
                    name="allocator",
                    mtype=MonitorType.RESOURCE_ALLOCATOR,
                    procedures=("Request", "Release"),
                    conditions=("free",),
                    call_order="(Request ; Release)*",
                )

            @procedure("Request")
            def request(self):
                if self._busy:
                    yield from self.wait("free")
                self._busy = True

            @procedure("Release")
            def release(self):
                self._busy = False
                self.signal_exit("free")

    A procedure that does not call ``signal_exit`` itself gets a plain Exit
    appended automatically, so "exit is not observed" can only occur when a
    campaign injects it.
    """

    def __init__(
        self,
        kernel: Kernel,
        *,
        history: Optional[EventSink] = None,
        hooks: Optional[CoreHooks] = None,
    ) -> None:
        self._declaration = self.declare()
        self._validate_procedures()
        self._monitor = Monitor(
            kernel,
            self._declaration,
            history=history,
            hooks=hooks,
            resource_probe=self._resource_probe_or_none(),
        )

    def _validate_procedures(self) -> None:
        """Fail at construction when an @procedure name is undeclared.

        The declaration is the visible contract; a decorated method whose
        name is missing from it would otherwise only explode on first call.
        """
        from repro.errors import DeclarationError
        from repro.monitor.procedures import declared_procedures

        implemented = set(declared_procedures(type(self)))
        declared = set(self._declaration.procedures)
        undeclared = implemented - declared
        if undeclared:
            raise DeclarationError(
                f"monitor {self._declaration.name!r} implements procedures "
                f"not in its declaration: {sorted(undeclared)}"
            )

    # -- subclass interface ---------------------------------------------------

    def declare(self) -> MonitorDeclaration:
        """Return this monitor's declaration (subclasses must override)."""
        raise NotImplementedError

    def resource_count(self) -> Optional[int]:
        """Return ``R#`` (available resources / free buffer slots).

        Communication-coordinator subclasses override this; the default
        None means the monitor has no resource-count notion.
        """
        return None

    def _resource_probe_or_none(self) -> Optional[Callable[[], int]]:
        if type(self).resource_count is MonitorBase.resource_count:
            return None

        def probe() -> int:
            count = self.resource_count()
            if count is None:
                raise MonitorUsageError(
                    f"monitor {self._declaration.name!r} resource_count() "
                    "returned None"
                )
            return count

        return probe

    # -- primitives re-exported for procedure bodies ---------------------------

    @property
    def monitor(self) -> Monitor:
        return self._monitor

    @property
    def kernel(self) -> Kernel:
        return self._monitor.kernel

    @property
    def declaration(self) -> MonitorDeclaration:
        return self._declaration

    @property
    def name(self) -> str:
        return self._declaration.name

    @property
    def history(self) -> Optional[EventSink]:
        return self._monitor.history

    def wait(self, cond: Cond) -> Iterator[Syscall]:
        return self._monitor.wait(cond)

    def signal(self, cond: Cond) -> Iterator[Syscall]:
        return self._monitor.signal(cond)

    def signal_exit(self, cond: Optional[Cond] = None) -> None:
        self._monitor.signal_exit(cond)

    def broadcast(self, cond: Cond) -> None:
        self._monitor.broadcast(cond)

    def waiting(self, cond: Cond) -> int:
        return self._monitor.waiting(cond)

    def snapshot(self) -> SchedulingState:
        return self._monitor.snapshot()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._declaration.name!r})"
