"""Perturbation hooks — the seam between the monitor core and fault injection.

Every decision point of the monitor scheduling machinery consults a
:class:`CoreHooks` instance.  The default implementation answers "behave
correctly" everywhere, so a production monitor pays one virtual call per
decision and nothing else.  The fault-injection campaigns in
:mod:`repro.injection` subclass this to realise each entry of the paper's
fault taxonomy (Section 2.2) as a concrete misbehaviour.

The hook names reference the taxonomy: ``I.a`` = Enter procedure faults,
``I.b`` = Wait procedure faults, ``I.c`` = Signal-Exit procedure faults.
Level-II faults (resource-state integrity) are injected in the *application*
logic of communication-coordinator monitors, and level-III faults (calling
order) in the *user processes*, so neither needs core hooks.
"""

from __future__ import annotations

from typing import Optional

from repro.history.events import SchedulingEvent
from repro.ids import Cond, Pid, Pname

__all__ = ["CoreHooks"]


class CoreHooks:
    """Correct-behaviour defaults for every perturbation point.

    Subclasses override individual methods to misbehave.  All methods are
    consulted *inside* the kernel-atomic transition, so overrides must not
    block; they may keep state (e.g. fire only on the n-th call).
    """

    # ------------------------------------------------------------- recording

    def should_record(self, event: SchedulingEvent) -> bool:
        """Return False to suppress recording of this event.

        Fault I.a.4 ("entry is not observed — the process running inside
        the monitor has not invoked the Enter primitive") is modelled by
        suppressing the Enter record while the admission still happens.
        """
        return True

    # ----------------------------------------------------------------- enter

    def enter_admit_despite_owner(self, pid: Pid, pname: Pname) -> bool:
        """Fault I.a.1: admit even though the monitor is occupied.

        Two (or more) processes end up inside simultaneously — the mutual
        exclusion violation of FD-Rule 1(a) / ST-Rule 3.
        """
        return False

    def enter_drop_request(self, pid: Pid, pname: Pname) -> bool:
        """Fault I.a.2: lose the requesting process.

        The Enter event is recorded (the invocation happened) but the
        process is neither queued nor admitted; it blocks forever.
        """
        return False

    # ------------------------------------------------------------- admission
    # These govern which waiting process receives the monitor whenever it is
    # released (by Wait or by a Signal-Exit that resumed nobody).

    def admission_suppressed(self, origin: str) -> bool:
        """Faults I.a.3 / I.b.3: release resumes nobody.

        ``origin`` names the releasing primitive (``"wait"`` or
        ``"signal-exit"``) so campaigns can target one path.  The monitor
        becomes (or stays) idle while processes starve on the entry queue.
        """
        return False

    def admission_skip_victim(self, pid: Pid) -> bool:
        """Fault I.b.4: starve a specific entry-queue process.

        Admission passes over ``pid`` (returns True) and admits the next
        process instead, violating FIFO fairness until the victim's ``Tio``
        timer expires.
        """
        return False

    def admission_admit_extra(self, origin: str) -> bool:
        """Faults I.b.5 / I.c.3: resume a second process into the monitor.

        After the legitimate admission, the entry-queue head is *also*
        admitted, putting two processes inside simultaneously.  ``origin``
        is ``"wait"``, ``"signal-exit"`` or ``"signal-exit-handoff"`` (the
        direct condition-waiter hand-off path).
        """
        return False

    # ------------------------------------------------------------------ wait

    def wait_no_block(self, pid: Pid, cond: Cond) -> bool:
        """Fault I.b.1: synchronisation not guaranteed.

        The Wait event is recorded but the caller keeps running inside the
        monitor instead of blocking on the condition queue.
        """
        return False

    def wait_lose_caller(self, pid: Pid, cond: Cond) -> bool:
        """Fault I.b.2: the waiting process is lost.

        The caller leaves the Running set but is never appended to the
        condition queue — no future signal can ever find it.
        """
        return False

    def wait_hold_monitor(self, pid: Pid, cond: Cond) -> bool:
        """Fault I.b.6: the monitor is not released on wait.

        The caller blocks on the condition queue but the mutual-exclusion
        lock is never handed over, so every other process starves.
        """
        return False

    # ----------------------------------------------------------- signal-exit

    def sigexit_fake_resume(self, pid: Pid, cond: Optional[Cond]) -> bool:
        """Fault I.c.1: waiting processes are not resumed.

        The Signal-Exit event is recorded with flag=1 (the implementation
        *claims* it resumed a waiter) but the waiter stays blocked on the
        condition queue.
        """
        return False

    def sigexit_hold_monitor(self, pid: Pid) -> bool:
        """Fault I.c.2: the monitor is not released on exit.

        The caller leaves, but the Running slot is never vacated; the
        monitor is wedged.
        """
        return False
