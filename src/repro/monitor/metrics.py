"""Monitor performance metrics derived from the scheduling event stream.

The same history information that feeds fault detection also answers the
performance questions an operator asks: how long do processes queue at the
entry, how long do they hold the monitor, how long do condition waits
last, and how busy is each procedure.  ``MonitorMetrics`` subscribes to a
monitor's history database and maintains these figures with the same
inference the checker uses (admissions are inferred from the releasing
event, because resumptions are not re-recorded).

Usage::

    buffer = BoundedBuffer(kernel, capacity=3, history=HistoryDatabase())
    metrics = MonitorMetrics.attach(buffer)
    ... run ...
    print(metrics.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro._tables import render_table
from repro.history.events import EventKind, SchedulingEvent
from repro.ids import Cond, Pid, Pname

__all__ = ["DurationStats", "MonitorMetrics"]


@dataclass
class DurationStats:
    """Streaming summary of a duration population (seconds of virtual time)."""

    count: int = 0
    total: float = 0.0
    maximum: float = 0.0
    _samples: list = field(default_factory=list, repr=False)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Empirical percentile (e.g. 0.95); 0.0 when no samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def row(self) -> list:
        return [
            self.count,
            f"{self.mean:.4f}",
            f"{self.percentile(0.95):.4f}",
            f"{self.maximum:.4f}",
        ]


class MonitorMetrics:
    """Live metrics for one monitor, fed by its history database."""

    def __init__(self) -> None:
        #: Time spent queued at the entry before admission.
        self.entry_wait = DurationStats()
        #: Time spent inside the monitor (admission to release).
        self.service = DurationStats()
        #: Time spent blocked on each condition queue.
        self.cond_wait: dict[Cond, DurationStats] = {}
        #: Completed invocations per procedure (counted at release).
        self.calls: dict[Pname, int] = {}
        #: Enter invocations that had to queue.
        self.contended_enters = 0
        self.immediate_enters = 0
        # internal model state (mirrors the checker's inference)
        self._entry_since: dict[Pid, float] = {}
        self._entry_order: list[Pid] = []
        self._running_since: dict[Pid, float] = {}
        self._cond_since: dict[Cond, list[tuple[Pid, float]]] = {}

    @classmethod
    def attach(cls, target) -> "MonitorMetrics":
        """Subscribe to a Monitor/MonitorBase's history database."""
        monitor = getattr(target, "monitor", target)
        history = monitor.history
        if history is None:
            raise ValueError(
                f"monitor {monitor.name!r} has no history database attached"
            )
        metrics = cls()
        history.subscribe(metrics.observe)
        return metrics

    # ------------------------------------------------------------- observation

    def observe(self, event: SchedulingEvent) -> None:
        """Fold one scheduling event into the metrics."""
        if event.kind is EventKind.ENTER:
            if event.flag == 1:
                self.immediate_enters += 1
                self._running_since[event.pid] = event.time
            else:
                self.contended_enters += 1
                self._entry_since[event.pid] = event.time
                self._entry_order.append(event.pid)
        elif event.kind is EventKind.WAIT:
            self._leave_running(event.pid, event.time, event.pname, count=False)
            assert event.cond is not None
            self._cond_since.setdefault(event.cond, []).append(
                (event.pid, event.time)
            )
            self._admit_next(event.time)
        elif event.kind is EventKind.SIGNAL_EXIT:
            self._leave_running(event.pid, event.time, event.pname, count=True)
            if event.flag == 1 and event.cond is not None:
                queue = self._cond_since.get(event.cond, [])
                if queue:
                    pid, since = queue.pop(0)
                    self.cond_wait.setdefault(
                        event.cond, DurationStats()
                    ).add(event.time - since)
                    self._running_since[pid] = event.time
            else:
                self._admit_next(event.time)
        elif event.kind is EventKind.SIGNAL:
            # Extended disciplines: approximate — count the resumed waiter's
            # condition wait; urgent-stack residency folds into service time.
            if event.flag == 1 and event.cond is not None:
                queue = self._cond_since.get(event.cond, [])
                if queue:
                    pid, since = queue.pop(0)
                    self.cond_wait.setdefault(
                        event.cond, DurationStats()
                    ).add(event.time - since)
                    self._running_since[pid] = event.time

    def _leave_running(
        self, pid: Pid, now: float, pname: Pname, *, count: bool
    ) -> None:
        since = self._running_since.pop(pid, None)
        if since is not None:
            self.service.add(now - since)
        if count:
            self.calls[pname] = self.calls.get(pname, 0) + 1

    def _admit_next(self, now: float) -> None:
        if self._entry_order:
            pid = self._entry_order.pop(0)
            since = self._entry_since.pop(pid, None)
            if since is not None:
                self.entry_wait.add(now - since)
            self._running_since[pid] = now

    # --------------------------------------------------------------- reporting

    @property
    def total_enters(self) -> int:
        return self.immediate_enters + self.contended_enters

    @property
    def contention_ratio(self) -> float:
        """Fraction of Enter invocations that had to queue."""
        total = self.total_enters
        return self.contended_enters / total if total else 0.0

    def render(self) -> str:
        """Text summary of all duration populations and call counts."""
        rows = [["entry wait", *self.entry_wait.row()]]
        rows.append(["service", *self.service.row()])
        for cond in sorted(self.cond_wait):
            rows.append([f"wait[{cond}]", *self.cond_wait[cond].row()])
        tables = [
            render_table(
                ["population", "n", "mean", "p95", "max"],
                rows,
                title=(
                    f"monitor timings (contention "
                    f"{self.contention_ratio:.1%} of "
                    f"{self.total_enters} enters)"
                ),
            )
        ]
        if self.calls:
            tables.append(
                render_table(
                    ["procedure", "completed calls"],
                    sorted(self.calls.items()),
                    title="\ncompleted calls",
                )
            )
        return "\n".join(tables)
