"""The ``@procedure`` decorator: monitor procedures with automatic bracketing.

A monitor procedure decorated with ``@procedure("Name")``:

* performs the Enter primitive before the body runs,
* performs a plain Exit after the body returns **iff** the body has not
  already left the monitor via ``signal_exit`` (the paper's normal pattern
  is an explicit Signal-Exit as the last action),
* does *not* swallow exceptions: a body that raises terminates its process
  inside the monitor, which is exactly the paper's fault I.d ("internal
  process termination") and is left for the detector to find.

The body may be a generator (when it waits or signals under the Hoare
discipline) or a plain function (when it never blocks)::

    class Buffer(MonitorBase):
        @procedure("Send")
        def send(self, item):
            if self._full():
                yield from self.wait("full")
            self._deposit(item)
            self.signal_exit("empty")
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Iterator, Optional

from repro.kernel.syscalls import Syscall

__all__ = ["procedure", "declared_procedures"]

#: Attribute set on wrapped methods so tooling can discover procedures.
_MARKER = "__monitor_procedure__"


def procedure(pname: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Mark a :class:`~repro.monitor.construct.MonitorBase` method as the
    monitor procedure named ``pname``.

    The returned wrapper is always a generator function, to be driven from a
    process body with ``yield from instance.method(...)``; its return value
    is the body's return value.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        body_is_generator = inspect.isgeneratorfunction(fn)

        @functools.wraps(fn)
        def wrapper(self, *args: Any, **kwargs: Any) -> Iterator[Syscall]:
            monitor = self._monitor
            pid = monitor.kernel.current_pid()
            monitor.explicit_exits.discard(pid)
            yield from monitor.enter(pname)
            if body_is_generator:
                result = yield from fn(self, *args, **kwargs)
            else:
                result = fn(self, *args, **kwargs)
            # Append a plain Exit only when the body did not explicitly
            # leave.  Checking the Running set instead would silently repair
            # an injected "monitor not released" fault.
            if pid not in monitor.explicit_exits and monitor.core.is_inside(pid):
                monitor.exit()
            monitor.explicit_exits.discard(pid)
            return result

        setattr(wrapper, _MARKER, pname)
        return wrapper

    return decorate


def declared_procedures(cls: type) -> tuple[str, ...]:
    """Procedure names declared via ``@procedure`` on ``cls`` (and bases)."""
    names: list[str] = []
    for attr in vars(cls).values():
        pname: Optional[str] = getattr(attr, _MARKER, None)
        if pname is not None:
            names.append(pname)
    for base in cls.__bases__:
        for inherited in declared_procedures(base):
            if inherited not in names:
                names.append(inherited)
    return tuple(names)
