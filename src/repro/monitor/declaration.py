"""Monitor declarations — the "visible part" of the augmented construct.

Section 3 splits the extension into a visible part (information the user
supplies in the monitor declaration) and an invisible part (the internal
detection machinery).  Section 4 gives the declaration form::

    MonitorName: Monitor (type);
        Declarations of local variables;
        Declarations of condition variables;
        Specification of procedure call orders;
        Declarations of monitor procedures;
        ...

:class:`MonitorDeclaration` is that form as a value object.  The procedure
call order is a path-expression string (paper reference [3]) compiled by
:mod:`repro.pathexpr`; the detector's Algorithm-3 checks each process's call
sequence against it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DeclarationError
from repro.ids import Cond, Pname
from repro.monitor.classification import MonitorType
from repro.monitor.semantics import Discipline

__all__ = ["MonitorDeclaration"]

#: Conventional procedure names recognised by Algorithm-3's built-in
#: Request/Release pairing (the paper uses Acquire/Request and Release).
ACQUIRE_NAMES = frozenset({"Acquire", "Request"})
RELEASE_NAMES = frozenset({"Release"})


@dataclass(frozen=True)
class MonitorDeclaration:
    """Static specification of one monitor.

    Parameters
    ----------
    name:
        Monitor name (used in reports and event rendering).
    mtype:
        Functional classification, selects which algorithms the detector
        runs (see :class:`~repro.monitor.classification.MonitorType`).
    procedures:
        Names of the monitor procedures user processes may invoke.
    conditions:
        Names of the condition variables.
    call_order:
        Optional path-expression source declaring the per-process partial
        order of procedure calls, e.g. ``"(Request ; Release)*"`` for an
        allocator.  ``None`` means no ordering constraint is declared.
    rmax:
        Maximum number of resources (``Rmax``).  Required for
        communication-coordinator monitors (it is the buffer capacity in
        the paper's integrity constraints), optional otherwise.
    discipline:
        Signalling discipline; the paper's algorithms assume
        ``SIGNAL_EXIT``.
    """

    name: str
    mtype: MonitorType
    procedures: tuple[Pname, ...]
    conditions: tuple[Cond, ...] = ()
    call_order: Optional[str] = None
    rmax: Optional[int] = None
    discipline: Discipline = Discipline.SIGNAL_EXIT

    def __post_init__(self) -> None:
        if not self.name:
            raise DeclarationError("monitor name must be non-empty")
        if not self.procedures:
            raise DeclarationError(
                f"monitor {self.name!r} declares no procedures"
            )
        if len(set(self.procedures)) != len(self.procedures):
            raise DeclarationError(
                f"monitor {self.name!r} declares duplicate procedure names"
            )
        if len(set(self.conditions)) != len(self.conditions):
            raise DeclarationError(
                f"monitor {self.name!r} declares duplicate condition names"
            )
        overlap = set(self.procedures) & set(self.conditions)
        if overlap:
            raise DeclarationError(
                f"monitor {self.name!r}: names used for both procedures and "
                f"conditions: {sorted(overlap)}"
            )
        if self.mtype.needs_resource_checking and self.rmax is None:
            raise DeclarationError(
                f"communication-coordinator monitor {self.name!r} must "
                "declare rmax (the buffer capacity)"
            )
        if self.rmax is not None and self.rmax <= 0:
            raise DeclarationError(
                f"monitor {self.name!r}: rmax must be positive, got {self.rmax}"
            )

    # ------------------------------------------------------------- predicates

    def has_procedure(self, pname: Pname) -> bool:
        return pname in self.procedures

    def has_condition(self, cond: Cond) -> bool:
        return cond in self.conditions

    @property
    def acquire_procedures(self) -> tuple[Pname, ...]:
        """Declared procedures playing the Request/Acquire role."""
        return tuple(p for p in self.procedures if p in ACQUIRE_NAMES)

    @property
    def release_procedures(self) -> tuple[Pname, ...]:
        """Declared procedures playing the Release role."""
        return tuple(p for p in self.procedures if p in RELEASE_NAMES)

    def render(self) -> str:
        """Pretty-print in the paper's declaration form (Section 4)."""
        lines = [f"{self.name}: Monitor ({self.mtype.value});"]
        if self.conditions:
            lines.append(f"  condition {', '.join(self.conditions)};")
        if self.call_order:
            lines.append(f"  order {self.call_order};")
        for proc in self.procedures:
            lines.append(f"  procedure {proc};")
        if self.rmax is not None:
            lines.append(f"  rmax = {self.rmax};")
        if self.discipline is not Discipline.SIGNAL_EXIT:
            lines.append(f"  discipline {self.discipline.value};")
        lines.append(f"End {self.name}.")
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "MonitorDeclaration":
        """Parse the Section-4 declaration form back into a declaration.

        Inverse of :meth:`render` — ``parse(decl.render()) == decl`` (up to
        field equality).  The format is line-oriented::

            Name: Monitor (type);
              condition c1, c2;
              order (Request ; Release)*;
              procedure P;
              rmax = N;
              discipline signal-and-wait;
            End Name.
        """
        lines = [line.strip() for line in text.strip().splitlines()]
        lines = [line for line in lines if line]
        if len(lines) < 2:
            raise DeclarationError("declaration too short to parse")
        header = lines[0]
        match = re.fullmatch(
            r"(?P<name>\w[\w-]*)\s*:\s*Monitor\s*\((?P<type>[\w-]+)\)\s*;",
            header,
        )
        if match is None:
            raise DeclarationError(f"malformed declaration header: {header!r}")
        name = match.group("name")
        try:
            mtype = MonitorType(match.group("type"))
        except ValueError:
            raise DeclarationError(
                f"unknown monitor type {match.group('type')!r}"
            ) from None
        footer = lines[-1]
        if footer != f"End {name}.":
            raise DeclarationError(
                f"declaration footer {footer!r} does not close {name!r}"
            )
        conditions: list[Cond] = []
        procedures: list[Pname] = []
        call_order: Optional[str] = None
        rmax: Optional[int] = None
        discipline = Discipline.SIGNAL_EXIT
        for line in lines[1:-1]:
            body = line.rstrip(";").strip()
            if body.startswith("condition "):
                conditions.extend(
                    part.strip() for part in body[len("condition "):].split(",")
                )
            elif body.startswith("order "):
                call_order = body[len("order "):].strip()
            elif body.startswith("procedure "):
                procedures.append(body[len("procedure "):].strip())
            elif body.startswith("rmax"):
                try:
                    rmax = int(body.split("=", 1)[1])
                except (IndexError, ValueError):
                    raise DeclarationError(f"malformed rmax line: {line!r}") from None
            elif body.startswith("discipline "):
                try:
                    discipline = Discipline(body[len("discipline "):].strip())
                except ValueError:
                    raise DeclarationError(
                        f"unknown discipline in {line!r}"
                    ) from None
            else:
                raise DeclarationError(f"unrecognised declaration line: {line!r}")
        return cls(
            name=name,
            mtype=mtype,
            procedures=tuple(procedures),
            conditions=tuple(conditions),
            call_order=call_order,
            rmax=rmax,
            discipline=discipline,
        )
