"""Classification of monitors by functional characteristics (Section 2.1).

The paper divides monitors into three types.  The type is part of the
monitor declaration and selects which detection algorithms apply:

=====================================  ==========================================
Type                                   Algorithms run by the detector
=====================================  ==========================================
``COMMUNICATION_COORDINATOR``          Algorithm-1 + Algorithm-2 (resource states)
``RESOURCE_ALLOCATOR``                 Algorithm-1 + Algorithm-3 (calling orders,
                                       checked in real time)
``OPERATION_MANAGER``                  Algorithm-1 only
=====================================  ==========================================
"""

from __future__ import annotations

import enum

__all__ = ["MonitorType"]


class MonitorType(enum.Enum):
    """Functional classification of a monitor (paper Section 2.1)."""

    #: Pairs of processes exchange data through the monitor (e.g. a bounded
    #: buffer with Send/Receive).  Subject to the four integrity constraints
    #: of Section 2.1 and therefore to Algorithm-2.
    COMMUNICATION_COORDINATOR = "communication-coordinator"

    #: The monitor only grants and revokes the *right* to use a resource
    #: (Request/Release); the resource operations themselves happen outside.
    #: Subject to the partial-ordering constraint and Algorithm-3.
    RESOURCE_ALLOCATOR = "resource-access-right-allocator"

    #: Monitor and resource are combined into one shared module; processes
    #: issue operations and the monitor handles request/release implicitly.
    OPERATION_MANAGER = "resource-operation-manager"

    @property
    def needs_resource_checking(self) -> bool:
        """True when Algorithm-2 (consistency of resource states) applies."""
        return self is MonitorType.COMMUNICATION_COORDINATOR

    @property
    def needs_order_checking(self) -> bool:
        """True when Algorithm-3 (calling orders) applies.

        The paper mandates *real-time* order checking for this type: "Only
        the user process level faults ... should be detected during real
        time execution."
        """
        return self is MonitorType.RESOURCE_ALLOCATOR

    def describe(self) -> str:
        if self is MonitorType.COMMUNICATION_COORDINATOR:
            return (
                "communication coordinator: processes exchange data through "
                "monitor-controlled buffers (Send/Receive)"
            )
        if self is MonitorType.RESOURCE_ALLOCATOR:
            return (
                "resource-access-right allocator: the monitor grants and "
                "revokes access rights (Request/Release) but does not mediate "
                "use of the resource"
            )
        return (
            "resource operation manager: monitor and resource are combined; "
            "synchronisation is implicit in the operations"
        )
