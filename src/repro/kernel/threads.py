"""Real-thread kernel: the same process protocol on OS threads.

This kernel interprets the identical generator/syscall protocol as
:class:`repro.kernel.sim.SimKernel`, but each process runs on its own
``threading.Thread`` and time is the wall clock.  It exists for one purpose:
the Table-1 overhead experiment, which must measure the *real* cost of
history recording and periodic checking, something a virtual clock cannot
express.

Timing model
------------
``Delay`` durations and ``now()`` are in *virtual seconds*, converted to wall
time by ``time_scale``.  With ``time_scale=0.01`` a workload written with
``Delay(0.5)`` think times finishes 100x faster while every ratio between
configurations is preserved — which is all the overhead table needs.

Determinism caveat
------------------
Thread interleavings are inherently nondeterministic; correctness tests and
fault-injection campaigns therefore run on the sim kernel.  This kernel's own
test suite asserts only schedule-independent properties.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Optional, TypeVar

from repro.errors import KernelError, UnknownProcessError
from repro.ids import Pid
from repro.kernel.base import Kernel, ProcessRecord, ProcessState, RunResult
from repro.kernel.syscalls import Block, Delay, ProcessBody, Spawn, Syscall, Yield

__all__ = ["ThreadKernel"]

T = TypeVar("T")


class _ThreadProcess(ProcessRecord):
    """ProcessRecord plus the thread and wake-up event driving it."""

    def __init__(self, pid: Pid, name: str, body: ProcessBody, spawned_at: float):
        super().__init__(pid=pid, name=name, spawned_at=spawned_at)
        self.body = body
        self.thread: Optional[threading.Thread] = None
        self.wake_event = threading.Event()


class ThreadKernel(Kernel):
    """Kernel over ``threading`` for wall-clock measurements."""

    def __init__(self, *, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        self._time_scale = time_scale
        self._start = time.monotonic()
        self._procs: dict[Pid, _ThreadProcess] = {}
        self._pid_counter = itertools.count(1)
        self._lock = threading.RLock()
        self._by_ident: dict[int, Pid] = {}

    # ------------------------------------------------------------------ api

    def now(self) -> float:
        return (time.monotonic() - self._start) / self._time_scale

    def spawn(self, body: ProcessBody, name: Optional[str] = None) -> Pid:
        with self._lock:
            pid = next(self._pid_counter)
            proc = _ThreadProcess(
                pid=pid,
                name=name or f"proc-{pid}",
                body=body,
                spawned_at=self.now(),
            )
            proc.state = ProcessState.READY
            self._procs[pid] = proc
        thread = threading.Thread(
            target=self._interpret, args=(proc,), name=proc.name, daemon=True
        )
        proc.thread = thread
        thread.start()
        return pid

    def process(self, pid: Pid) -> ProcessRecord:
        with self._lock:
            try:
                return self._procs[pid]
            except KeyError:
                raise UnknownProcessError(f"unknown pid {pid}") from None

    def processes(self) -> tuple[ProcessRecord, ...]:
        with self._lock:
            return tuple(self._procs.values())

    def current_pid(self) -> Pid:
        pid = self._by_ident.get(threading.get_ident())
        if pid is None:
            raise KernelError("current_pid() called outside a kernel process")
        return pid

    def atomic(self, fn: Callable[[], T]) -> T:
        with self._lock:
            return fn()

    def make_ready(self, pid: Pid, value: Any = None) -> None:
        with self._lock:
            proc = self._procs.get(pid)
            if proc is None:
                raise UnknownProcessError(f"unknown pid {pid}")
            proc.wake_value = value
            proc.wake_event.set()

    # -------------------------------------------------------------- run/join

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> RunResult:
        """Join every spawned thread; ``until`` is a virtual-time deadline."""
        deadline = (
            None if until is None else self._start + until * self._time_scale
        )
        for proc in self.processes():
            thread = proc.thread  # type: ignore[attr-defined]
            if thread is None:
                continue
            if deadline is None:
                thread.join()
            else:
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    thread.join(timeout=remaining)
        terminated, failed, live = [], [], []
        with self._lock:
            for proc in self._procs.values():
                if proc.state is ProcessState.TERMINATED:
                    terminated.append(proc.pid)
                elif proc.state is ProcessState.FAILED:
                    failed.append(proc.pid)
                else:
                    live.append(proc.pid)
        return RunResult(
            end_time=self.now(),
            steps=0,
            terminated=tuple(terminated),
            failed=tuple(failed),
            live=tuple(live),
            deadlocked=False,
        )

    # ------------------------------------------------------------ interpreter

    def _interpret(self, proc: _ThreadProcess) -> None:
        self._by_ident[threading.get_ident()] = proc.pid
        proc.state = ProcessState.RUNNING
        value: Any = None
        try:
            while True:
                syscall = proc.body.send(value)
                value = self._execute(proc, syscall)
        except StopIteration as stop:
            with self._lock:
                proc.state = ProcessState.TERMINATED
                proc.result = stop.value
                proc.finished_at = self.now()
        except Exception as exc:
            with self._lock:
                proc.state = ProcessState.FAILED
                proc.failure = exc
                proc.finished_at = self.now()
        finally:
            self._by_ident.pop(threading.get_ident(), None)

    def _execute(self, proc: _ThreadProcess, syscall: Syscall) -> Any:
        if isinstance(syscall, Delay):
            time.sleep(syscall.duration * self._time_scale)
            return None
        if isinstance(syscall, Yield):
            time.sleep(0)
            return None
        if isinstance(syscall, Block):
            proc.state = ProcessState.BLOCKED
            proc.block_reason = syscall.reason or "block"
            proc.wake_event.wait()
            with self._lock:
                proc.wake_event.clear()
                proc.state = ProcessState.RUNNING
                proc.block_reason = None
                value = proc.wake_value
                proc.wake_value = None
            return value
        if isinstance(syscall, Spawn):
            return self.spawn(syscall.factory(), name=syscall.name)
        raise KernelError(
            f"process {proc.pid} ({proc.name}) yielded a non-syscall: {syscall!r}"
        )
