"""Low-level synchronisation built directly on kernel primitives.

The monitor construct in :mod:`repro.monitor` manages its own queues (it has
to — the detector inspects them), but a plain counting semaphore is still
needed by workloads, tests and the thread kernel's internals, and it doubles
as the reference example of how to build a blocking primitive from
``atomic`` + ``Block`` + ``make_ready``.

Usage (inside a process body)::

    sem = KernelSemaphore(kernel, initial=1)

    def worker(kernel):
        yield from sem.acquire()
        try:
            ...critical section...
        finally:
            sem.release()
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.ids import Pid
from repro.kernel.base import Kernel
from repro.kernel.syscalls import Block, Syscall

__all__ = ["KernelSemaphore"]


class KernelSemaphore:
    """Counting semaphore with a strict FIFO wait queue.

    FIFO hand-off (the released permit goes *directly* to the head waiter,
    not back into the counter) gives the fairness property the paper's
    FD-Rule 4 ("free of starvation") assumes of a correct substrate.
    """

    def __init__(self, kernel: Kernel, initial: int = 1, name: Optional[str] = None):
        if initial < 0:
            raise ValueError(f"semaphore initial value must be >= 0, got {initial}")
        self._kernel = kernel
        self._count = initial
        self._queue: deque[Pid] = deque()
        self.name = name or "sem"

    @property
    def value(self) -> int:
        """Current counter value (snapshot; for tests and diagnostics)."""
        return self._count

    @property
    def waiters(self) -> tuple[Pid, ...]:
        """Pids currently queued (snapshot; for tests and diagnostics)."""
        return tuple(self._queue)

    def acquire(self) -> Iterator[Syscall]:
        """Generator: take one permit, blocking FIFO when none available."""
        me = self._kernel.current_pid()

        def try_take() -> bool:
            if self._count > 0:
                self._count -= 1
                return True
            self._queue.append(me)
            return False

        if not self._kernel.atomic(try_take):
            yield Block(reason=f"sem:{self.name}")

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True when a permit was taken."""

        def try_take() -> bool:
            if self._count > 0:
                self._count -= 1
                return True
            return False

        return self._kernel.atomic(try_take)

    def release(self) -> None:
        """Return one permit, handing it to the head waiter if any.

        Plain method (never blocks), callable from any process.
        """

        def give_back() -> Optional[Pid]:
            if self._queue:
                return self._queue.popleft()
            self._count += 1
            return None

        waiter = self._kernel.atomic(give_back)
        if waiter is not None:
            self._kernel.make_ready(waiter)

    def __repr__(self) -> str:
        return (
            f"KernelSemaphore(name={self.name!r}, value={self._count}, "
            f"waiters={len(self._queue)})"
        )
