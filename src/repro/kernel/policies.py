"""Scheduling policies for the simulation kernel.

The policy decides which ready process runs next.  Determinism is the whole
point: given the same seed and workload, the kernel reproduces the same
interleaving event-for-event, which is what makes the fault-injection
experiments repeatable (the paper injected faults "randomly"; we inject them
reproducibly).

Policies see only the ordered tuple of ready pids, never process internals,
so they cannot accidentally depend on mutable state.
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Sequence

from repro.ids import Pid

__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "LifoPolicy",
    "RandomPolicy",
    "ScriptedPolicy",
    "make_policy",
]


class SchedulingPolicy(abc.ABC):
    """Strategy object choosing the next pid from the ready queue."""

    @abc.abstractmethod
    def choose(self, ready: Sequence[Pid]) -> Pid:
        """Return one element of ``ready`` (non-empty)."""

    def fork(self) -> "SchedulingPolicy":
        """Return an independent policy with equivalent configuration.

        Used when a benchmark wants several kernels with identical
        scheduling behaviour.
        """
        return self


class FifoPolicy(SchedulingPolicy):
    """Run the process that became ready earliest (round-robin-ish)."""

    def choose(self, ready: Sequence[Pid]) -> Pid:
        if not ready:
            raise ValueError("choose() called with empty ready queue")
        return ready[0]

    def __repr__(self) -> str:
        return "FifoPolicy()"


class LifoPolicy(SchedulingPolicy):
    """Run the most recently readied process first.

    Deliberately unfair; useful in tests for provoking starvation-shaped
    schedules without injecting faults.
    """

    def choose(self, ready: Sequence[Pid]) -> Pid:
        if not ready:
            raise ValueError("choose() called with empty ready queue")
        return ready[-1]

    def __repr__(self) -> str:
        return "LifoPolicy()"


class RandomPolicy(SchedulingPolicy):
    """Choose uniformly at random under a fixed seed.

    The default policy for tests and experiments: it explores many
    interleavings while staying perfectly reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def choose(self, ready: Sequence[Pid]) -> Pid:
        if not ready:
            raise ValueError("choose() called with empty ready queue")
        return ready[self._rng.randrange(len(ready))]

    def fork(self) -> "RandomPolicy":
        return RandomPolicy(self._seed)

    def __repr__(self) -> str:
        return f"RandomPolicy(seed={self._seed})"


class ScriptedPolicy(SchedulingPolicy):
    """Follow an explicit script of pid choices, then fall back to FIFO.

    Built for tests that must construct one *exact* interleaving: each
    script entry names the pid to run next; when the named pid is not
    ready (or the script is exhausted) the head of the ready queue runs
    instead, and the miss is recorded in :attr:`misses` so the test can
    assert the script was actually honoured.
    """

    def __init__(self, script: Sequence[Pid]) -> None:
        self._script = list(script)
        self._cursor = 0
        #: (position, wanted pid) entries where the script could not be
        #: followed because the pid was not ready.
        self.misses: list[tuple[int, Pid]] = []

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._script)

    def choose(self, ready: Sequence[Pid]) -> Pid:
        if not ready:
            raise ValueError("choose() called with empty ready queue")
        while self._cursor < len(self._script):
            wanted = self._script[self._cursor]
            self._cursor += 1
            if wanted in ready:
                return wanted
            self.misses.append((self._cursor - 1, wanted))
        return ready[0]

    def __repr__(self) -> str:
        return (
            f"ScriptedPolicy(cursor={self._cursor}/{len(self._script)}, "
            f"misses={len(self.misses)})"
        )


def make_policy(spec: Optional[str] = None, seed: int = 0) -> SchedulingPolicy:
    """Build a policy from a short textual spec.

    ``None`` or ``"fifo"`` -> FIFO; ``"lifo"`` -> LIFO; ``"random"`` ->
    seeded random.  Benchmarks use this so a policy can be selected from a
    command-line flag.
    """
    if spec is None or spec == "fifo":
        return FifoPolicy()
    if spec == "lifo":
        return LifoPolicy()
    if spec == "random":
        return RandomPolicy(seed=seed)
    raise ValueError(f"unknown scheduling policy {spec!r}")
