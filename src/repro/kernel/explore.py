"""Schedule exploration: run one workload under many seeds, check each run.

The simulation kernel makes interleavings a function of the scheduling
seed, which turns concurrency testing into a search problem: sweep seeds,
assert an invariant on every run, report the seeds that break it.  This is
the substrate-level companion to the detector — the detector checks a
*live* run from the inside; the explorer checks *many* runs from the
outside.

Example::

    def build(kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        kernel.spawn(producer(buffer, 10))
        kernel.spawn(consumer(buffer, 10))
        return buffer

    def check(kernel, buffer):
        if buffer.occupancy != 0:
            return f"buffer not drained: {buffer.occupancy}"
        return None

    result = explore_seeds(build, check, seeds=range(100))
    assert result.all_passed, result.failures
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, TypeVar

from repro.kernel.base import RunResult
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel

__all__ = ["SeedFailure", "ExplorationResult", "explore_seeds"]

T = TypeVar("T")

#: build(kernel) -> context object handed to check()
Builder = Callable[[SimKernel], T]
#: check(kernel, context) -> None/"" when fine, else a failure description
Checker = Callable[[SimKernel, T], Optional[str]]


@dataclass(frozen=True)
class SeedFailure:
    """One seed whose run violated the invariant (or crashed)."""

    seed: int
    reason: str
    end_time: float


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of a seed sweep."""

    seeds_run: int
    failures: tuple[SeedFailure, ...]
    deadlocked_seeds: tuple[int, ...]

    @property
    def all_passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.all_passed else "FAILED"
        return (
            f"{status}: {self.seeds_run} seeds, "
            f"{len(self.failures)} failure(s), "
            f"{len(self.deadlocked_seeds)} deadlocked"
        )


def explore_seeds(
    build: Builder,
    check: Checker,
    *,
    seeds: Iterable[int] = range(50),
    until: Optional[float] = 1000.0,
    max_steps: int = 2_000_000,
    allow_deadlock: bool = False,
    stop_after: Optional[int] = None,
) -> ExplorationResult:
    """Run ``build``'s workload once per seed and apply ``check`` to each.

    A run fails when any process dies with an exception, when the run
    deadlocks (unless ``allow_deadlock``), or when ``check`` returns a
    non-empty reason.  ``stop_after`` bounds the number of failures
    collected before the sweep stops early (None = sweep everything).
    """
    failures: list[SeedFailure] = []
    deadlocked: list[int] = []
    seeds_run = 0
    for seed in seeds:
        seeds_run += 1
        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        context = build(kernel)
        result: RunResult = kernel.run(until=until, max_steps=max_steps)
        reason: Optional[str] = None
        process_failures = kernel.failures()
        if process_failures:
            pid, exc = next(iter(process_failures.items()))
            reason = f"process P{pid} died: {type(exc).__name__}: {exc}"
        elif result.deadlocked:
            deadlocked.append(seed)
            if not allow_deadlock:
                reason = "kernel deadlock"
        if reason is None:
            reason = check(kernel, context) or None
        if reason:
            failures.append(
                SeedFailure(seed=seed, reason=reason, end_time=result.end_time)
            )
            if stop_after is not None and len(failures) >= stop_after:
                break
    return ExplorationResult(
        seeds_run=seeds_run,
        failures=tuple(failures),
        deadlocked_seeds=tuple(deadlocked),
    )
