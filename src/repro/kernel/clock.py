"""Virtual clock with a timer wheel for the simulation kernel.

The clock owns *virtual time*: a monotonically non-decreasing float that the
kernel advances explicitly.  Timers are kept in a binary heap keyed by
``(deadline, sequence)``; the sequence number makes expiry order total and
deterministic even when deadlines tie, which matters for reproducibility of
whole-system runs under a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Timer", "VirtualClock"]


@dataclass(frozen=True, slots=True)
class Timer:
    """A scheduled wake-up.

    ``payload`` is opaque to the clock; the kernel stores the pid to wake.
    """

    deadline: float
    sequence: int
    payload: Any

    def sort_key(self) -> tuple[float, int]:
        return (self.deadline, self.sequence)


class VirtualClock:
    """Monotonic virtual time plus a deterministic timer heap."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: list[tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule(self, delay: float, payload: Any) -> Timer:
        """Register a timer ``delay`` units from now and return it."""
        if delay < 0:
            raise ValueError(f"timer delay must be >= 0, got {delay}")
        timer = Timer(self._now + delay, next(self._seq), payload)
        heapq.heappush(self._heap, (timer.deadline, timer.sequence, timer))
        return timer

    def cancel(self, timer: Timer) -> None:
        """Cancel a previously scheduled timer (lazy removal)."""
        self._cancelled.add(timer.sequence)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            __, seq, __timer = heapq.heappop(self._heap)
            self._cancelled.discard(seq)

    @property
    def has_timers(self) -> bool:
        """True when at least one live (non-cancelled) timer is pending."""
        self._drop_cancelled()
        return bool(self._heap)

    def next_deadline(self) -> Optional[float]:
        """Deadline of the earliest live timer, or None when none pending."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def advance_to_next(self) -> list[Timer]:
        """Jump to the earliest deadline and pop every timer expiring then.

        Returns the expired timers in registration order.  Raises
        ``RuntimeError`` when no timer is pending (callers must check
        :attr:`has_timers` first) so that an accidental time warp is loud.
        """
        self._drop_cancelled()
        if not self._heap:
            raise RuntimeError("advance_to_next() called with no pending timers")
        deadline = self._heap[0][0]
        if deadline < self._now:  # pragma: no cover - defensive
            raise RuntimeError(
                f"timer heap corrupted: deadline {deadline} < now {self._now}"
            )
        self._now = deadline
        expired: list[Timer] = []
        while self._heap and self._heap[0][0] == deadline:
            __, seq, timer = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            expired.append(timer)
        return expired

    def pop_due(self) -> list[Timer]:
        """Pop every live timer whose deadline is <= now, in expiry order."""
        self._drop_cancelled()
        due: list[Timer] = []
        while self._heap and self._heap[0][0] <= self._now:
            __, seq, timer = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            due.append(timer)
        return due

    def advance_capped(self, amount: float) -> float:
        """Advance by at most ``amount``, stopping at the next deadline.

        Returns the amount actually advanced.  Unlike :meth:`advance_by`
        this never raises on a pending timer — it simply stops there, and
        the caller is expected to drain :meth:`pop_due`.
        """
        if amount < 0:
            raise ValueError(f"cannot move time backwards (amount={amount})")
        target = self._now + amount
        nxt = self.next_deadline()
        if nxt is not None and target > nxt:
            target = nxt
        advanced = target - self._now
        self._now = target
        return advanced

    def advance_by(self, amount: float) -> None:
        """Advance time without touching timers (kernel step accounting).

        Refuses to jump past the next pending deadline — that would silently
        reorder time with respect to timer expiry.
        """
        if amount < 0:
            raise ValueError(f"cannot move time backwards (amount={amount})")
        target = self._now + amount
        nxt = self.next_deadline()
        if nxt is not None and target > nxt:
            raise RuntimeError(
                f"advance_by({amount}) would skip a timer due at {nxt}"
            )
        self._now = target
