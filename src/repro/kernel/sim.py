"""Deterministic discrete-event simulation kernel.

This is the primary execution substrate of the reproduction.  Processes are
generators; the kernel resumes one process at a time, so a generator segment
between two ``yield``s is atomic by construction.  All nondeterminism is
funnelled through a single seedable :class:`~repro.kernel.policies.SchedulingPolicy`,
which makes every run — including runs with injected faults — exactly
reproducible.

Why simulate instead of using real threads?  Two reasons, both from the
paper's evaluation needs:

1. The robustness experiment requires *constructing* executions that violate
   monitor semantics (two owners at once, lost wake-ups, starved queues).
   Under CPython's GIL such interleavings are impossible to produce reliably
   with OS threads; under the sim kernel they are one injection hook away.
2. Fault detection reasons about *event orderings*.  A virtual clock gives
   stable timestamps, so detector behaviour (timeouts ``Tio``/``Tmax``,
   checking period ``T``) is testable without real sleeps.

The wall-clock overhead experiment (Table 1) uses the sibling
:class:`repro.kernel.threads.ThreadKernel` instead.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, TypeVar

from repro.errors import (
    KernelError,
    ProcessStateError,
    SchedulerStalled,
    SimulationDeadlock,
    UnknownProcessError,
)
from repro.ids import Pid
from repro.kernel.base import Kernel, ProcessRecord, ProcessState, RunResult
from repro.kernel.clock import VirtualClock
from repro.kernel.policies import FifoPolicy, SchedulingPolicy
from repro.kernel.syscalls import Block, Delay, ProcessBody, Spawn, Syscall, Yield

__all__ = ["SimKernel"]

T = TypeVar("T")

#: Block reason used internally for Delay, distinguishing timer sleeps from
#: synchronisation blocks.
_DELAY_REASON = "__delay__"


class _SimProcess(ProcessRecord):
    """ProcessRecord plus the generator being driven (sim-kernel private)."""

    def __init__(self, pid: Pid, name: str, body: ProcessBody, spawned_at: float):
        super().__init__(pid=pid, name=name, spawned_at=spawned_at)
        self.body = body
        #: Timer for a pending Delay, so injection/shutdown can cancel it.
        self.delay_timer = None


class SimKernel(Kernel):
    """Cooperative, deterministic kernel over virtual time.

    Parameters
    ----------
    policy:
        Scheduling policy choosing among ready processes.  Defaults to FIFO.
    step_cost:
        Virtual time consumed by each scheduler step.  The default ``0.0``
        means time only advances through explicit :class:`Delay` syscalls;
        set a small positive value when workloads have no natural delays but
        timeout-based detection rules still need time to move.
    on_deadlock:
        ``"raise"`` (default) raises :class:`SimulationDeadlock` when every
        live process is blocked with no pending timer; ``"stop"`` ends the
        run and flags :attr:`RunResult.deadlocked` instead — used by tests
        and campaigns that deliberately create deadlocks.
    """

    def __init__(
        self,
        policy: Optional[SchedulingPolicy] = None,
        *,
        step_cost: float = 0.0,
        on_deadlock: str = "raise",
    ) -> None:
        if on_deadlock not in ("raise", "stop"):
            raise ValueError(f"on_deadlock must be 'raise' or 'stop', got {on_deadlock!r}")
        if step_cost < 0:
            raise ValueError(f"step_cost must be >= 0, got {step_cost}")
        self._policy = policy or FifoPolicy()
        self._step_cost = step_cost
        self._on_deadlock = on_deadlock
        self._clock = VirtualClock()
        self._procs: dict[Pid, _SimProcess] = {}
        self._ready: list[Pid] = []
        self._pid_counter = itertools.count(1)
        self._current: Optional[Pid] = None
        self._steps = 0

    # ------------------------------------------------------------------ api

    @property
    def clock(self) -> VirtualClock:
        return self._clock

    @property
    def steps(self) -> int:
        """Total scheduler steps executed so far (proxy for simulated work)."""
        return self._steps

    def now(self) -> float:
        return self._clock.now

    def spawn(self, body: ProcessBody, name: Optional[str] = None) -> Pid:
        pid = next(self._pid_counter)
        proc = _SimProcess(
            pid=pid,
            name=name or f"proc-{pid}",
            body=body,
            spawned_at=self._clock.now,
        )
        proc.state = ProcessState.READY
        self._procs[pid] = proc
        self._ready.append(pid)
        return pid

    def process(self, pid: Pid) -> ProcessRecord:
        try:
            return self._procs[pid]
        except KeyError:
            raise UnknownProcessError(f"unknown pid {pid}") from None

    def processes(self) -> tuple[ProcessRecord, ...]:
        return tuple(self._procs.values())

    def current_pid(self) -> Pid:
        if self._current is None:
            raise KernelError("current_pid() called outside a process step")
        return self._current

    def atomic(self, fn: Callable[[], T]) -> T:
        # Generator segments are atomic on this kernel; nothing to lock.
        return fn()

    # ------------------------------------------------------- wake-up permits

    def make_ready(self, pid: Pid, value: Any = None, *, force: bool = False) -> None:
        proc = self._procs.get(pid)
        if proc is None:
            raise UnknownProcessError(f"unknown pid {pid}")
        if not proc.alive:
            if force:
                return
            raise ProcessStateError(f"cannot wake dead process {pid} ({proc.name})")
        if proc.state is ProcessState.BLOCKED:
            if proc.block_reason == _DELAY_REASON:
                if not force:
                    raise ProcessStateError(
                        f"process {pid} is sleeping on a Delay, not a sync block"
                    )
                if proc.delay_timer is not None:
                    self._clock.cancel(proc.delay_timer)
                    proc.delay_timer = None
            proc.state = ProcessState.READY
            proc.block_reason = None
            proc.wake_value = value
            self._ready.append(pid)
            return
        # Not blocked yet: leave a sticky permit.
        if proc.permit and not force:
            raise ProcessStateError(
                f"double wake-up for process {pid} ({proc.name}): permit already set"
            )
        proc.permit = True
        proc.permit_value = value

    def forget(self, pid: Pid) -> None:
        """Drop a blocked process on the floor (fault injection only).

        Models the paper's "requesting process is lost" faults: the process
        stays BLOCKED forever and nothing will ever wake it.  The kernel's
        own deadlock detection ignores forgotten processes so that the
        *detector*, not the substrate, is the thing that notices.
        """
        proc = self._procs.get(pid)
        if proc is None:
            raise UnknownProcessError(f"unknown pid {pid}")
        proc.block_reason = "__forgotten__"

    # --------------------------------------------------------------- run loop

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = 1_000_000,
    ) -> RunResult:
        deadlocked = False
        steps_at_entry = self._steps
        while True:
            # 1. expire any timers due at the current instant
            for timer in self._clock.pop_due():
                self._wake_from_timer(timer.payload)

            if until is not None and self._clock.now >= until:
                break

            if self._ready:
                if max_steps is not None and self._steps - steps_at_entry >= max_steps:
                    raise SchedulerStalled(
                        f"step budget of {max_steps} exhausted at t={self._clock.now:g} "
                        f"with {len(self._ready)} process(es) still ready"
                    )
                self._step_one()
                if self._step_cost:
                    self._clock.advance_capped(self._step_cost)
                continue

            # 2. nothing ready: advance time to the next timer if any
            if self._clock.has_timers:
                nxt = self._clock.next_deadline()
                assert nxt is not None
                if until is not None and nxt > until:
                    # The horizon falls inside this idle gap: the run
                    # covers [start, until], so the clock lands on until.
                    self._clock.advance_capped(until - self._clock.now)
                    break
                for timer in self._clock.advance_to_next():
                    self._wake_from_timer(timer.payload)
                continue

            # 3. no ready processes, no timers: quiescent or deadlocked
            blocked = tuple(
                p.pid
                for p in self._procs.values()
                if p.alive
                and p.state is ProcessState.BLOCKED
                and p.block_reason != "__forgotten__"
            )
            if blocked:
                if self._on_deadlock == "raise":
                    raise SimulationDeadlock(blocked, self._clock.now)
                deadlocked = True
            break

        return self._result(deadlocked)

    def _result(self, deadlocked: bool) -> RunResult:
        terminated, failed, live = [], [], []
        for proc in self._procs.values():
            if proc.state is ProcessState.TERMINATED:
                terminated.append(proc.pid)
            elif proc.state is ProcessState.FAILED:
                failed.append(proc.pid)
            else:
                live.append(proc.pid)
        return RunResult(
            end_time=self._clock.now,
            steps=self._steps,
            terminated=tuple(terminated),
            failed=tuple(failed),
            live=tuple(live),
            deadlocked=deadlocked,
        )

    def _wake_from_timer(self, pid: Pid) -> None:
        proc = self._procs.get(pid)
        if proc is None or not proc.alive:
            return
        if proc.state is ProcessState.BLOCKED and proc.block_reason == _DELAY_REASON:
            proc.state = ProcessState.READY
            proc.block_reason = None
            proc.delay_timer = None
            proc.wake_value = None
            self._ready.append(pid)

    def _step_one(self) -> None:
        pid = self._policy.choose(self._ready)
        self._ready.remove(pid)
        proc = self._procs[pid]
        if not proc.alive:  # pragma: no cover - defensive
            raise ProcessStateError(f"dead process {pid} found on ready queue")
        proc.state = ProcessState.RUNNING
        self._current = pid
        self._steps += 1
        wake = proc.wake_value
        proc.wake_value = None
        try:
            syscall = proc.body.send(wake)
        except StopIteration as stop:
            self._terminate(proc, result=stop.value)
            return
        except Exception as exc:
            proc.state = ProcessState.FAILED
            proc.failure = exc
            proc.finished_at = self._clock.now
            return
        finally:
            self._current = None
        self._dispatch(proc, syscall)

    def _terminate(self, proc: _SimProcess, result: Any) -> None:
        proc.state = ProcessState.TERMINATED
        proc.result = result
        proc.finished_at = self._clock.now

    def _dispatch(self, proc: _SimProcess, syscall: Syscall) -> None:
        if isinstance(syscall, Delay):
            proc.state = ProcessState.BLOCKED
            proc.block_reason = _DELAY_REASON
            proc.delay_timer = self._clock.schedule(syscall.duration, proc.pid)
        elif isinstance(syscall, Yield):
            proc.state = ProcessState.READY
            self._ready.append(proc.pid)
        elif isinstance(syscall, Block):
            if proc.permit:
                proc.permit = False
                proc.wake_value = proc.permit_value
                proc.permit_value = None
                proc.state = ProcessState.READY
                self._ready.append(proc.pid)
            else:
                proc.state = ProcessState.BLOCKED
                proc.block_reason = syscall.reason or "block"
        elif isinstance(syscall, Spawn):
            child = self.spawn(syscall.factory(), name=syscall.name)
            proc.state = ProcessState.READY
            proc.wake_value = child
            self._ready.append(proc.pid)
        else:
            proc.state = ProcessState.FAILED
            proc.failure = KernelError(
                f"process {proc.pid} ({proc.name}) yielded a non-syscall: {syscall!r}"
            )
            proc.finished_at = self._clock.now
