"""Syscall objects yielded by simulated processes.

A *process body* in this package is a Python generator.  Whenever the body
needs the kernel to do something on its behalf — pass time, give up the CPU,
or block until another process wakes it — it ``yield``s one of the small
request objects defined here.  The kernel interprets the request and resumes
the generator later with ``generator.send(value)``.

The protocol is deliberately tiny (compare SimPy's event zoo): monitors and
every higher layer are built from just :class:`Delay`, :class:`Yield` and
:class:`Block` plus direct (non-blocking, atomic) kernel method calls such as
``kernel.make_ready(pid)``.

Example
-------
A producer that sleeps and then deposits into a monitor-protected buffer::

    def producer(kernel, buffer):
        for item in range(10):
            yield Delay(0.5)               # think time
            yield from buffer.send(item)   # may yield Block() internally
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

__all__ = ["Syscall", "Delay", "Yield", "Block", "Spawn", "ProcessBody"]

#: The type of a process body: a generator that yields syscalls and receives
#: wake-up values back.
ProcessBody = Generator["Syscall", Any, Any]


class Syscall:
    """Marker base class for everything a process body may yield."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Delay(Syscall):
    """Suspend the calling process for ``duration`` units of (virtual) time.

    On the simulation kernel the clock is virtual and jumps directly to the
    next scheduled wake-up; on the thread kernel this maps to
    ``time.sleep`` scaled by the kernel's ``time_scale``.
    """

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"Delay duration must be >= 0, got {self.duration}")


@dataclass(frozen=True, slots=True)
class Yield(Syscall):
    """Give up the CPU voluntarily; the process stays ready.

    Used to create extra preemption points so that scheduling policies can
    explore more interleavings.
    """


@dataclass(frozen=True, slots=True)
class Block(Syscall):
    """Suspend the calling process until someone calls ``make_ready(pid)``.

    ``reason`` is a free-form label recorded on the process for diagnostics
    (e.g. ``"monitor-entry:buffer"`` or ``"cond:full"``).

    Wake-ups are *sticky permits*: if ``make_ready`` for this pid happens
    before the process actually blocks (possible on the thread kernel), the
    block consumes the permit and returns immediately.  This mirrors how
    real schedulers avoid lost-wakeup races.
    """

    reason: Optional[str] = None


@dataclass(frozen=True, slots=True)
class Spawn(Syscall):
    """Ask the kernel to start a new process from within a running one.

    ``factory`` is a zero-argument callable returning a process body
    generator; the new pid is sent back as the result of the ``yield``.
    """

    factory: Callable[[], ProcessBody]
    name: Optional[str] = None
