"""Execution substrates for monitor-based concurrent programs.

The paper evaluated a Java prototype with real preemptive threads.  For the
reproduction we provide two interchangeable kernels behind one process model:

* :class:`repro.kernel.sim.SimKernel` — a deterministic discrete-event
  simulation kernel.  Processes are Python generators that yield *syscalls*;
  the kernel interleaves them under a pluggable, seedable scheduling policy
  and advances a virtual clock.  This kernel is the default everywhere
  because CPython's GIL masks genuine data races: the robustness experiment
  needs faults such as "two processes inside the monitor at once" to be
  *constructible and reproducible*, which only a simulated interleaving
  substrate provides.

* :class:`repro.kernel.threads.ThreadKernel` — a real ``threading`` kernel
  that interprets the *same* generator protocol on OS threads.  It exists so
  that the Table-1 overhead experiment measures genuine wall-clock cost of
  history recording and checking.

Both kernels implement :class:`repro.kernel.base.Kernel`, so monitors, apps,
workloads and benchmarks are written once and run on either.
"""

from repro.kernel.base import Kernel, ProcessRecord, ProcessState, RunResult
from repro.kernel.clock import VirtualClock
from repro.kernel.explore import ExplorationResult, SeedFailure, explore_seeds
from repro.kernel.policies import (
    FifoPolicy,
    LifoPolicy,
    RandomPolicy,
    SchedulingPolicy,
    ScriptedPolicy,
    make_policy,
)
from repro.kernel.sim import SimKernel
from repro.kernel.sync import KernelSemaphore
from repro.kernel.syscalls import Block, Delay, Spawn, Syscall, Yield
from repro.kernel.threads import ThreadKernel

__all__ = [
    "Kernel",
    "ProcessRecord",
    "ProcessState",
    "RunResult",
    "VirtualClock",
    "explore_seeds",
    "ExplorationResult",
    "SeedFailure",
    "SchedulingPolicy",
    "FifoPolicy",
    "LifoPolicy",
    "RandomPolicy",
    "ScriptedPolicy",
    "make_policy",
    "SimKernel",
    "ThreadKernel",
    "KernelSemaphore",
    "Syscall",
    "Delay",
    "Block",
    "Yield",
    "Spawn",
]
