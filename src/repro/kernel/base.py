"""Kernel interface shared by the simulation and thread substrates.

A *kernel* owns a set of processes, a notion of time, and three capabilities
that the monitor construct is built from:

* ``current_pid()`` — identity of the process executing right now,
* ``atomic(fn)`` — run ``fn`` as one indivisible action with respect to all
  other processes (trivially true on the cooperative simulation kernel; a
  global lock on the thread kernel),
* ``make_ready(pid)`` — grant a wake-up permit to a blocked process.

Everything higher level — semaphores, monitors, detectors — is expressed in
terms of these plus the syscall protocol in :mod:`repro.kernel.syscalls`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TypeVar

from repro.ids import Pid
from repro.kernel.syscalls import ProcessBody

__all__ = ["ProcessState", "ProcessRecord", "RunResult", "Kernel"]

T = TypeVar("T")


class ProcessState(enum.Enum):
    """Lifecycle of a kernel process."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    TERMINATED = "terminated"
    FAILED = "failed"


@dataclass
class ProcessRecord:
    """Kernel bookkeeping for one process."""

    pid: Pid
    name: str
    state: ProcessState = ProcessState.NEW
    #: Label explaining why a blocked process is blocked (diagnostics only).
    block_reason: Optional[str] = None
    #: Sticky wake-up permit: set by make_ready before the process blocks.
    permit: bool = False
    #: Value carried by a sticky permit, delivered at the next Block (kept
    #: separate from wake_value so an intermediate Yield resume does not
    #: consume it).
    permit_value: Any = None
    #: Value delivered to the process when it resumes from a Block.
    wake_value: Any = None
    #: Exception that terminated the process, when state is FAILED.
    failure: Optional[BaseException] = None
    #: Value returned by the body generator, when state is TERMINATED.
    result: Any = None
    #: Virtual time at which the process was spawned / terminated.
    spawned_at: float = 0.0
    finished_at: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.TERMINATED, ProcessState.FAILED)


@dataclass(frozen=True)
class RunResult:
    """Summary returned by ``Kernel.run``."""

    #: Virtual (sim) or wall-clock (threads) time when the run stopped.
    end_time: float
    #: Number of scheduler steps executed (sim kernel only; 0 for threads).
    steps: int
    #: Pids that terminated normally during the run.
    terminated: tuple[Pid, ...]
    #: Pids that died with an exception, with the exception attached
    #: to their ProcessRecord.
    failed: tuple[Pid, ...]
    #: Pids still alive (blocked or ready) when the run stopped.
    live: tuple[Pid, ...]
    #: True when the run ended because every live process was blocked with
    #: no pending timers (kernel-level deadlock) and the kernel was
    #: configured not to raise.
    deadlocked: bool = False

    @property
    def quiesced(self) -> bool:
        """True when no live processes remained at the end of the run."""
        return not self.live


class Kernel(abc.ABC):
    """Abstract execution substrate.

    Concrete kernels:  :class:`repro.kernel.sim.SimKernel` (deterministic,
    virtual time) and :class:`repro.kernel.threads.ThreadKernel` (real
    threads, wall-clock time).
    """

    # -- process management -------------------------------------------------

    @abc.abstractmethod
    def spawn(self, body: ProcessBody, name: Optional[str] = None) -> Pid:
        """Register a new process; it becomes READY immediately."""

    @abc.abstractmethod
    def process(self, pid: Pid) -> ProcessRecord:
        """Return the bookkeeping record for ``pid`` (raises if unknown)."""

    @abc.abstractmethod
    def processes(self) -> tuple[ProcessRecord, ...]:
        """Snapshot of every process the kernel has ever spawned."""

    # -- execution -----------------------------------------------------------

    @abc.abstractmethod
    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> RunResult:
        """Drive processes until quiescence, ``until`` time, or step budget."""

    # -- primitives used by synchronisation layers ---------------------------

    @abc.abstractmethod
    def now(self) -> float:
        """Current time (virtual or wall-clock)."""

    @abc.abstractmethod
    def current_pid(self) -> Pid:
        """Pid of the process currently executing (raises outside one)."""

    @abc.abstractmethod
    def atomic(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` indivisibly with respect to every other process."""

    @abc.abstractmethod
    def make_ready(self, pid: Pid, value: Any = None) -> None:
        """Grant a wake-up permit to ``pid``, delivering ``value``.

        If ``pid`` is currently blocked it becomes ready; if it has not
        blocked yet the permit is remembered (sticky) and its next ``Block``
        returns immediately.  Waking an already-permitted or dead process is
        a :class:`repro.errors.ProcessStateError` — double wake-ups are how
        mutual-exclusion violations sneak in, so the substrate refuses them
        loudly unless fault injection explicitly asks for them.
        """

    # -- conveniences ---------------------------------------------------------

    def failures(self) -> dict[Pid, BaseException]:
        """Map of pid -> exception for every failed process."""
        return {
            rec.pid: rec.failure
            for rec in self.processes()
            if rec.state is ProcessState.FAILED and rec.failure is not None
        }

    def raise_failures(self) -> None:
        """Re-raise the first process failure, if any (test helper)."""
        for rec in self.processes():
            if rec.state is ProcessState.FAILED and rec.failure is not None:
                raise rec.failure
