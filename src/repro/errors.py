"""Exception hierarchy for the robust-monitor reproduction.

Two families of errors exist in this system and must never be confused:

* **Usage errors** (:class:`MonitorUsageError` and friends) are raised
  *synchronously* to the offending process, exactly like a Java monitor
  throwing ``IllegalMonitorStateException``.  They indicate that client code
  called a primitive it was not allowed to call (e.g. ``wait`` while not
  inside the monitor).

* **Detected concurrency-control faults** are *not* exceptions.  They are
  :class:`repro.detection.reports.FaultReport` values produced by the
  detection algorithms, because the whole point of the paper is that the
  faulty execution has *already happened* — the detector observes history
  and reports violations after the fact.

Kernel-level errors (:class:`KernelError` and friends) indicate misuse of the
execution substrate itself.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "KernelError",
    "UnknownProcessError",
    "ProcessStateError",
    "SchedulerStalled",
    "SimulationDeadlock",
    "MonitorError",
    "MonitorUsageError",
    "NotInsideMonitorError",
    "UnknownConditionError",
    "UnknownProcedureError",
    "DeclarationError",
    "PathExpressionError",
    "PathExpressionSyntaxError",
    "HistoryError",
    "CheckpointError",
    "ServiceError",
    "InjectionError",
    "UnknownCampaignError",
    "RecoveryError",
]


class ReproError(Exception):
    """Base class for every exception raised by this package."""


# ---------------------------------------------------------------------------
# Kernel / substrate errors
# ---------------------------------------------------------------------------


class KernelError(ReproError):
    """Base class for errors raised by an execution kernel."""


class UnknownProcessError(KernelError):
    """An operation referenced a pid the kernel has never seen."""


class ProcessStateError(KernelError):
    """A process was asked to transition from an incompatible state.

    For example unblocking a process that is not blocked, or stepping a
    process that has already terminated.
    """


class SchedulerStalled(KernelError):
    """``run()`` hit its step budget before the system quiesced."""


class SimulationDeadlock(KernelError):
    """Every live process is blocked and no timer can wake any of them.

    This is the *kernel's* notion of deadlock (nothing can ever run again).
    The paper's user-process-level deadlock fault (fault III.c) is detected
    separately, by Algorithm-3, from the monitor call history.
    """

    def __init__(self, blocked_pids: tuple[int, ...], at_time: float) -> None:
        self.blocked_pids = blocked_pids
        self.at_time = at_time
        names = ", ".join(f"P{p}" for p in blocked_pids)
        super().__init__(
            f"simulation deadlock at t={at_time:g}: all live processes "
            f"blocked ({names}) and no pending timers"
        )


# ---------------------------------------------------------------------------
# Monitor construct errors
# ---------------------------------------------------------------------------


class MonitorError(ReproError):
    """Base class for monitor-construct errors."""


class MonitorUsageError(MonitorError):
    """Client code called a monitor primitive it was not permitted to call."""


class NotInsideMonitorError(MonitorUsageError):
    """``wait``/``signal``/``exit`` was called by a process not inside."""


class UnknownConditionError(MonitorUsageError):
    """A condition-variable name was used that the monitor never declared."""


class UnknownProcedureError(MonitorUsageError):
    """A procedure name was invoked that the declaration does not define."""


class DeclarationError(MonitorError):
    """The monitor declaration itself is malformed."""


# ---------------------------------------------------------------------------
# Path expression errors
# ---------------------------------------------------------------------------


class PathExpressionError(ReproError):
    """Base class for path-expression handling errors."""


class PathExpressionSyntaxError(PathExpressionError):
    """The path-expression source text could not be parsed."""

    def __init__(self, message: str, position: int, source: str) -> None:
        self.position = position
        self.source = source
        super().__init__(f"{message} at position {position} in {source!r}")


# ---------------------------------------------------------------------------
# History / detection errors
# ---------------------------------------------------------------------------


class HistoryError(ReproError):
    """Base class for history-database errors."""


class CheckpointError(HistoryError):
    """A checkpoint operation was invalid (e.g. out-of-order cut)."""


# ---------------------------------------------------------------------------
# Detection-service (remote ingestion) errors
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for detection-service (daemon/client) errors.

    Transport failures are *not* service errors — a dead socket is data
    the client's reconnect machinery absorbs.  ServiceError covers the
    protocol itself: malformed frames, handshake violations, quota abuse.
    """


# ---------------------------------------------------------------------------
# Injection / recovery errors
# ---------------------------------------------------------------------------


class InjectionError(ReproError):
    """Base class for fault-injection framework errors."""


class UnknownCampaignError(InjectionError):
    """A campaign name was requested that the registry does not define."""


class RecoveryError(ReproError):
    """An error-recovery strategy could not be applied."""
