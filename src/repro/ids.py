"""Shared lightweight identifier types.

The paper's formalism names three kinds of identifiers:

* ``Pid`` — the identity of a user process (an integer issued by the kernel),
* ``Pname`` — the name of the monitor *procedure* being executed
  (``"Send"``, ``"Receive"``, ``"Acquire"``, ...),
* ``Cond`` — the name of a condition variable (``"full"``, ``"empty"``, ...).

We keep them as plain ``int``/``str`` aliases rather than wrapper classes so
that event records stay cheap to create (they are created on every monitor
primitive invocation) while signatures stay self-describing.
"""

from __future__ import annotations

from typing import TypeAlias

__all__ = ["Pid", "Pname", "Cond", "NO_PID"]

Pid: TypeAlias = int
Pname: TypeAlias = str
Cond: TypeAlias = str

#: Sentinel pid used in records that need a pid slot but have no process
#: (for instance a detector-generated synthetic event).
NO_PID: Pid = -1
