"""repro — robust monitors with run-time concurrency-control fault detection.

A complete, from-scratch reproduction of *"Run-time Fault Detection in
Monitor Based Concurrent Programming"* (Jiannong Cao, Nick K.C. Cheung,
Alvin T.S. Chan — DSN 2001): the monitor construct, the taxonomy of 21
concurrency-control faults, the scheduling event/state history model, the
FD- and ST-rules, the three detection algorithms, the fault-injection
robustness experiment and the checking-overhead experiment — all on a
deterministic simulated concurrency substrate (plus a real-thread kernel
for wall-clock measurements).

Quickstart::

    from repro import (SimKernel, RandomPolicy, Delay, HistoryDatabase,
                       BoundedBuffer, DetectionSession, DetectorConfig)

    kernel = SimKernel(RandomPolicy(seed=1))
    buffer = BoundedBuffer(kernel, capacity=4, history=HistoryDatabase())
    session = DetectionSession(
        kernel, monitors=[buffer], config=DetectorConfig(interval=0.5)
    )

    def producer():
        for item in range(100):
            yield Delay(0.05)
            yield from buffer.send(item)

    def consumer():
        for __ in range(100):
            yield Delay(0.05)
            yield from buffer.receive()

    kernel.spawn(producer())
    kernel.spawn(consumer())
    session.start()
    kernel.run(until=60)
    assert session.clean

Scaling out is a keyword argument — ``DetectionSession(kernel,
monitors=fleet, shards=4, durable_dir="state/")`` partitions the fleet
across four staggered engine shards with per-shard crash durability.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.apps import (
    BarberShop,
    BoundedBuffer,
    BufferIntegrityFault,
    CountingResourceAllocator,
    CyclicBarrier,
    ForkTable,
    ReadersWriters,
    SharedAccount,
    SingleResourceAllocator,
    WaterFactory,
    philosopher,
)
from repro.detection import (
    BreakerState,
    CallingOrderChecker,
    CheckpointSupervisor,
    CircuitBreaker,
    Confidence,
    DeadlockDetector,
    DetectionCluster,
    DetectionEngine,
    DetectionSession,
    DetectorConfig,
    DurableEngine,
    LabelSharding,
    RateBalancedSharding,
    RoundRobinSharding,
    ShardPolicy,
    make_shard_policy,
    shard_process,
    RecoverySummary,
    FaultClass,
    FaultDetector,
    FaultLevel,
    FaultReport,
    FaultStatistics,
    FDRule,
    QuarantineRecord,
    ResourceStateChecker,
    STRule,
    check_full_trace,
    check_general_concurrency_control,
    detector_process,
    report_key,
    engine_process,
    supervisor_process,
)
from repro.errors import (
    DeclarationError,
    KernelError,
    MonitorError,
    MonitorUsageError,
    PathExpressionError,
    ReproError,
    SimulationDeadlock,
)
from repro.history import (
    BoundedHistory,
    WriteAheadLog,
    EventKind,
    EventSink,
    HistoryDatabase,
    QueueEntry,
    SchedulingEvent,
    SchedulingState,
    Segment,
)
from repro.injection import (
    CAMPAIGNS,
    CampaignOutcome,
    ChaosCampaignResult,
    ChaosConfig,
    CrashPoint,
    CrashRecoveryConfig,
    CrashRecoveryResult,
    TriggeredHooks,
    run_all_campaigns,
    run_campaign,
    run_chaos_campaign,
    run_crash_recovery_campaign,
)
from repro.kernel import (
    Block,
    Delay,
    FifoPolicy,
    Kernel,
    KernelSemaphore,
    LifoPolicy,
    ProcessState,
    RandomPolicy,
    RunResult,
    SimKernel,
    Spawn,
    ThreadKernel,
    Yield,
)
from repro.monitor import (
    CoreHooks,
    Discipline,
    Monitor,
    MonitorBase,
    MonitorCore,
    MonitorDeclaration,
    MonitorMetrics,
    MonitorType,
    procedure,
)
from repro.pathexpr import OrderAutomaton, compile_order, parse_path_expression
from repro.recovery import (
    AlarmStrategy,
    AssertionChecker,
    ExpelStrategy,
    MonitorAssertion,
    RecoveryAction,
    RecoverySupervisor,
    ResetQueuesStrategy,
)
from repro.workloads import SCENARIOS, WorkloadSpec, build_scenario

__version__ = "1.0.0"

__all__ = [
    # kernels
    "Kernel",
    "SimKernel",
    "ThreadKernel",
    "KernelSemaphore",
    "ProcessState",
    "RunResult",
    "FifoPolicy",
    "LifoPolicy",
    "RandomPolicy",
    "Delay",
    "Block",
    "Yield",
    "Spawn",
    # monitor construct
    "Monitor",
    "MonitorBase",
    "MonitorCore",
    "MonitorDeclaration",
    "MonitorType",
    "Discipline",
    "CoreHooks",
    "procedure",
    "MonitorMetrics",
    # history
    "EventSink",
    "HistoryDatabase",
    "BoundedHistory",
    "WriteAheadLog",
    "Segment",
    "SchedulingEvent",
    "SchedulingState",
    "QueueEntry",
    "EventKind",
    # detection
    "FaultClass",
    "FaultLevel",
    "FDRule",
    "STRule",
    "FaultReport",
    "Confidence",
    "FaultDetector",
    "DetectorConfig",
    "detector_process",
    "DetectionEngine",
    "DetectionCluster",
    "DetectionSession",
    "ShardPolicy",
    "RoundRobinSharding",
    "RateBalancedSharding",
    "LabelSharding",
    "make_shard_policy",
    "shard_process",
    "DurableEngine",
    "RecoverySummary",
    "report_key",
    "engine_process",
    "BreakerState",
    "CircuitBreaker",
    "QuarantineRecord",
    "CheckpointSupervisor",
    "supervisor_process",
    "check_general_concurrency_control",
    "check_full_trace",
    "ResourceStateChecker",
    "CallingOrderChecker",
    "FaultStatistics",
    "DeadlockDetector",
    # path expressions
    "parse_path_expression",
    "compile_order",
    "OrderAutomaton",
    # injection
    "TriggeredHooks",
    "CampaignOutcome",
    "CAMPAIGNS",
    "run_campaign",
    "run_all_campaigns",
    "ChaosConfig",
    "ChaosCampaignResult",
    "run_chaos_campaign",
    "CrashPoint",
    "CrashRecoveryConfig",
    "CrashRecoveryResult",
    "run_crash_recovery_campaign",
    # recovery extensions
    "MonitorAssertion",
    "AssertionChecker",
    "RecoveryAction",
    "RecoverySupervisor",
    "AlarmStrategy",
    "ExpelStrategy",
    "ResetQueuesStrategy",
    # apps
    "BoundedBuffer",
    "BufferIntegrityFault",
    "SingleResourceAllocator",
    "CountingResourceAllocator",
    "SharedAccount",
    "ReadersWriters",
    "ForkTable",
    "philosopher",
    "BarberShop",
    "CyclicBarrier",
    "WaterFactory",
    # workloads
    "WorkloadSpec",
    "SCENARIOS",
    "build_scenario",
    # errors
    "ReproError",
    "KernelError",
    "SimulationDeadlock",
    "MonitorError",
    "MonitorUsageError",
    "DeclarationError",
    "PathExpressionError",
    "__version__",
]
