"""Minimal aligned-text table rendering (internal shared helper)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned text table (headers, separator, rows).

    Every row must have exactly one cell per header; a mismatch is a
    programming error and is rejected loudly rather than rendered askew.
    """
    cells = [[str(value) for value in row] for row in rows]
    for index, row in enumerate(cells):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells for {len(headers)} headers"
            )
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(values))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)
