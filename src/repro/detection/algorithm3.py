"""Algorithm-3: Calling Orders Checking (Section 3.3.2).

Applies to resource-access-right-allocator monitors — and, generalised via
the declared path expression, to any monitor with a ``call_order``.  Per
the paper this is the one check that runs in *real time*: level-III faults
("the execution sequence of the monitor procedures ... must be kept
correct") cannot wait for the next periodic checkpoint.

Two mechanisms run side by side:

* the paper's **Request-List**: pids with an outstanding Acquire/Request;
  duplicates (ST-8a), releases without requests (ST-8b) and entries older
  than ``Tlimit`` (ST-8c, the periodic Step 2) are reported;
* the **order automaton** compiled from the declaration's path expression:
  each process's Enter sequence must stay a prefix of the declared
  language (reported as ST-PX).  This subsumes Request/Release and also
  covers orders like ``((StartRead ; EndRead) | (StartWrite ; EndWrite))*``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.detection.reports import FaultReport
from repro.detection.rules import STRule
from repro.history.events import EventKind, SchedulingEvent
from repro.ids import Pid
from repro.monitor.declaration import MonitorDeclaration
from repro.pathexpr.automaton import OrderAutomaton, compile_order

__all__ = ["CallingOrderChecker", "sweep_request_list"]


def sweep_request_list(
    request_list: Sequence[tuple[Pid, float]],
    monitor: str,
    now: float,
    tlimit: float,
) -> list[FaultReport]:
    """Step 2 as a pure function over a frozen Request-List.

    The two-phase engine snapshots ``request_list`` inside the phase-1
    atomic section (so the sweep sees the list as it stood at the
    checkpoint, even though evaluation happens later, while the real-time
    tap keeps mutating the live checker) and evaluates this sweep off the
    critical path.  :meth:`CallingOrderChecker.periodic` delegates here.
    """
    reports: list[FaultReport] = []
    for pid, since in request_list:
        if now - since >= tlimit:
            reports.append(
                FaultReport(
                    rule=STRule.REQUEST_NOT_RELEASED,
                    message=(
                        f"P{pid} has held (or awaited) the resource for "
                        f"{now - since:g} >= Tlimit={tlimit:g} without "
                        "releasing it"
                    ),
                    monitor=monitor,
                    detected_at=now,
                    pids=(pid,),
                )
            )
    return reports


class CallingOrderChecker:
    """Stateful, real-time Algorithm-3 instance for one monitor."""

    def __init__(self, declaration: MonitorDeclaration) -> None:
        self._declaration = declaration
        self._acquire_names = set(declaration.acquire_procedures)
        self._release_names = set(declaration.release_procedures)
        #: The paper's Request-List: (pid, time of the Request's Enter).
        self.request_list: list[tuple[Pid, float]] = []
        self._automaton: Optional[OrderAutomaton] = None
        if declaration.call_order:
            self._automaton = compile_order(declaration.call_order)
        self._dfa_state: dict[Pid, int] = {}

    @property
    def automaton(self) -> Optional[OrderAutomaton]:
        return self._automaton

    def holders(self) -> tuple[Pid, ...]:
        """Pids currently holding (or awaiting) the resource."""
        return tuple(pid for pid, __ in self.request_list)

    # --------------------------------------------------------------- per-event

    def on_event(self, event: SchedulingEvent) -> list[FaultReport]:
        """Real-time Step 1: called for every recorded scheduling event."""
        reports: list[FaultReport] = []
        if event.kind is EventKind.ENTER:
            reports.extend(self._on_enter(event))
        elif event.kind is EventKind.SIGNAL_EXIT:
            if event.pname in self._release_names:
                self._drop_request(event.pid)
        return reports

    def _on_enter(self, event: SchedulingEvent) -> list[FaultReport]:
        reports: list[FaultReport] = []
        pname = event.pname
        if pname in self._acquire_names:
            if any(pid == event.pid for pid, __ in self.request_list):
                reports.append(
                    self._make_report(
                        STRule.NO_DUPLICATE_REQUEST,
                        f"P{event.pid} called {pname} while already holding "
                        "the resource (re-acquisition without release is a "
                        "self-deadlock)",
                        event,
                    )
                )
            self.request_list.append((event.pid, event.time))
        elif pname in self._release_names:
            if not any(pid == event.pid for pid, __ in self.request_list):
                reports.append(
                    self._make_report(
                        STRule.RELEASE_REQUIRES_REQUEST,
                        f"P{event.pid} called {pname} without an outstanding "
                        "Request (release before acquire)",
                        event,
                    )
                )
        if self._automaton is not None:
            state = self._dfa_state.get(event.pid, self._automaton.start)
            nxt = self._automaton.step(state, pname)
            if nxt is None:
                reports.append(
                    self._make_report(
                        STRule.CALL_ORDER_VIOLATED,
                        f"P{event.pid} invoked {pname} in violation of the "
                        f"declared order {self._automaton.source!r}",
                        event,
                    )
                )
            else:
                self._dfa_state[event.pid] = nxt
        return reports

    def _drop_request(self, pid: Pid) -> None:
        for index, (holder, __) in enumerate(self.request_list):
            if holder == pid:
                del self.request_list[index]
                return

    # ---------------------------------------------------------------- periodic

    def periodic(self, now: float, tlimit: float) -> list[FaultReport]:
        """Step 2: sweep the Request-List for entries older than Tlimit."""
        return sweep_request_list(
            self.request_list, self._declaration.name, now, tlimit
        )

    # ------------------------------------------------------------ state hand-off

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the replay state.

        The Request-List plus each process's order-automaton state —
        everything the replay-mode checker (``realtime_orders=False``)
        accumulates across windows.  Pid keys travel as strings (JSON
        object keys); :meth:`restore_state` converts them back.
        """
        return {
            "request_list": [[pid, since] for pid, since in self.request_list],
            "dfa": {str(pid): state for pid, state in self._dfa_state.items()},
        }

    def restore_state(self, record: dict) -> None:
        """Adopt a :meth:`state_dict` snapshot (e.g. across a process hop)."""
        self.request_list = [
            (pid, since) for pid, since in record.get("request_list", ())
        ]
        self._dfa_state = {
            int(pid): state for pid, state in record.get("dfa", {}).items()
        }

    # ----------------------------------------------------------------- helpers

    def _make_report(
        self, rule: STRule, message: str, event: SchedulingEvent
    ) -> FaultReport:
        return FaultReport(
            rule=rule,
            message=message,
            monitor=self._declaration.name,
            detected_at=event.time,
            pids=(event.pid,),
            event_seq=event.seq,
        )
