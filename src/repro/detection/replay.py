"""The checking-list replay machine (paper Section 3.3.1).

This is the shared engine behind Algorithm-1 and the offline FD-rule
checker.  It maintains the paper's pseudo-historical checking lists —
Enter-0-List, the Wait-Cond-Lists, the Running-List (plus the urgent list
for the Hoare extension) — replays a scheduling event sequence against
them, and reports every state-transition rule violated along the way.

The replay applies *correct* monitor semantics to the recorded events; the
actual (possibly fault-perturbed) queues are only consulted at the
checkpoint comparison.  A fault therefore surfaces in one of three ways:

1. the event sequence itself is impossible under correct semantics (e.g. a
   blocked process generates an event — ST-Rule 4),
2. the reconstructed lists disagree with the actual state snapshot at the
   checkpoint (ST-Rules 1, 2 and the Running comparison),
3. a timer bound is exceeded (ST-Rules 5, 6).

Deviation from the paper's literal text (documented in DESIGN.md): the
published update rules pop the Enter-0-List head on *every* Wait or
Signal-Exit, which for a flag=1 Signal-Exit would admit two processes and
contradict ST-Rule 3(a).  We implement the consistent reading: a flag=1
Signal-Exit admits the condition-queue head; Wait and flag=0 Signal-Exit
admit the entry-queue head.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.detection.reports import FaultReport
from repro.detection.rules import STRule
from repro.history.events import EventKind, SchedulingEvent
from repro.history.states import QueueEntry, SchedulingState
from repro.ids import Cond, Pid
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.semantics import Discipline

__all__ = ["ReplayMachine", "sweep_timers"]


def _entries_match(
    model: list[QueueEntry], actual: tuple[QueueEntry, ...]
) -> bool:
    """Positional equality of a model checking list and an actual queue."""
    if len(model) != len(actual):
        return False
    for mine, theirs in zip(model, actual):
        if (
            mine.pid != theirs.pid
            or mine.since != theirs.since
            or mine.pname != theirs.pname
        ):
            return False
    return True


def sweep_timers(
    state: SchedulingState,
    monitor: str,
    *,
    tmax: Optional[float] = None,
    tio: Optional[float] = None,
    window_start: Optional[float] = None,
) -> list[FaultReport]:
    """ST-Rule 5/6 timer sweep directly over a state snapshot.

    The replay machine sweeps its *reconstructed* lists, which is exact on
    a complete window but misses any process whose events were dropped by a
    saturated sink.  The snapshot's queue entries carry their own ``since``
    timestamps, so this sweep needs no events at all — it is what
    degraded-mode checking uses on lossy windows (the reports are
    downgraded by the caller).
    """
    now = state.time
    reports: list[FaultReport] = []

    def report(rule: STRule, message: str, pid: Pid) -> None:
        reports.append(
            FaultReport(
                rule=rule,
                message=message,
                monitor=monitor,
                detected_at=now,
                pids=(pid,),
                window_start=window_start,
            )
        )

    if tmax is not None:
        for entry in state.running:
            if entry.timer(now) >= tmax:
                report(
                    STRule.TMAX_EXCEEDED,
                    f"P{entry.pid} ({entry.pname}) has been inside the "
                    f"monitor for {entry.timer(now):g} >= Tmax={tmax:g}",
                    entry.pid,
                )
        for cond, queue in state.cond_queues.items():
            for entry in queue:
                if entry.timer(now) >= tmax:
                    report(
                        STRule.TMAX_EXCEEDED,
                        f"P{entry.pid} has waited on condition {cond!r} "
                        f"for {entry.timer(now):g} >= Tmax={tmax:g}",
                        entry.pid,
                    )
    if tio is not None:
        for entry in state.entry_queue:
            if entry.timer(now) >= tio:
                report(
                    STRule.TIO_EXCEEDED,
                    f"P{entry.pid} has sat on the entry queue for "
                    f"{entry.timer(now):g} >= Tio={tio:g} (starved or "
                    "lost)",
                    entry.pid,
                )
    return reports


class ReplayMachine:
    """Replays one checking window's events against model checking lists."""

    def __init__(
        self,
        declaration: MonitorDeclaration,
        base_state: SchedulingState,
    ) -> None:
        self._declaration = declaration
        self._monitor_name = declaration.name
        # Initial list contents come from the last checkpoint's actual state
        # ("Initially, Enter-0-List is set to EQ", Section 3.3.1).
        self.enter0: list[QueueEntry] = list(base_state.entry_queue)
        self.wait_cond: dict[Cond, list[QueueEntry]] = {
            cond: list(base_state.cond_queues.get(cond, ()))
            for cond in declaration.conditions
        }
        self.running: list[QueueEntry] = list(base_state.running)
        self.urgent: list[QueueEntry] = list(base_state.urgent)
        self.violations: list[FaultReport] = []
        self._window_start = base_state.time

    # ------------------------------------------------------- incremental use

    def begin_window(self, window_start: float) -> None:
        """Open the next checking window on the carried lists.

        Used by the incremental Algorithm-1 checker when the lists were
        verified against the last checkpoint's snapshot: nothing is
        re-seeded, only the window anchor for report provenance moves.
        """
        self._window_start = window_start

    def rebase(self, base_state: SchedulingState) -> None:
        """Re-seed every checking list from an actual state snapshot.

        Equivalent to constructing a fresh machine on ``base_state`` but
        reuses the allocated lists: declared conditions are re-seeded from
        the snapshot, conditions picked up mid-window via undeclared Waits
        are cleared (a fresh machine would not know them either).
        """
        self.enter0[:] = base_state.entry_queue
        cond_queues = base_state.cond_queues
        declared = self._declaration.conditions
        for cond, queue in self.wait_cond.items():
            if cond in declared:
                queue[:] = cond_queues.get(cond, ())
            else:
                queue.clear()
        self.running[:] = base_state.running
        self.urgent[:] = base_state.urgent
        self._window_start = base_state.time

    def matches(self, state: SchedulingState) -> bool:
        """True when the lists equal what a fresh machine would seed from
        ``state`` — i.e. carrying them into the next window is provably
        indistinguishable from re-basing on the snapshot."""
        if not _entries_match(self.running, state.running):
            return False
        if not _entries_match(self.enter0, state.entry_queue):
            return False
        if not _entries_match(self.urgent, state.urgent):
            return False
        cond_queues = state.cond_queues
        declared = self._declaration.conditions
        for cond in declared:
            model = self.wait_cond.get(cond)
            if not _entries_match(
                model if model is not None else [], cond_queues.get(cond, ())
            ):
                return False
        for cond, queue in self.wait_cond.items():
            if queue and cond not in declared:
                return False
        return True

    def take_violations(self) -> list[FaultReport]:
        """Hand over the violations found so far and reset the list."""
        found = self.violations
        self.violations = []
        return found

    def export_state(self) -> SchedulingState:
        """The checking lists as one state snapshot (durable snapshots)."""
        return SchedulingState(
            time=self._window_start,
            entry_queue=tuple(self.enter0),
            cond_queues={
                cond: tuple(queue) for cond, queue in self.wait_cond.items()
            },
            running=tuple(self.running),
            urgent=tuple(self.urgent),
        )

    # ------------------------------------------------------------- reporting

    def _report(
        self,
        rule: STRule,
        message: str,
        *,
        time: float,
        pids: tuple[Pid, ...] = (),
        event_seq: Optional[int] = None,
    ) -> None:
        self.violations.append(
            FaultReport(
                rule=rule,
                message=message,
                monitor=self._monitor_name,
                detected_at=time,
                pids=pids,
                event_seq=event_seq,
                window_start=self._window_start,
            )
        )

    # ------------------------------------------------------------ list helpers

    def _blocked_location(self, pid: Pid) -> Optional[str]:
        if any(e.pid == pid for e in self.enter0):
            return "Enter-0-List"
        for cond, queue in self.wait_cond.items():
            if any(e.pid == pid for e in queue):
                return f"Wait-Cond-List[{cond}]"
        if any(e.pid == pid for e in self.urgent):
            return "urgent list"
        return None

    def _remove_running(self, pid: Pid) -> Optional[QueueEntry]:
        for index, entry in enumerate(self.running):
            if entry.pid == pid:
                return self.running.pop(index)
        return None

    def _admit_next(self, time: float) -> None:
        """Model the correct admission after the monitor is released."""
        if self.running:
            return
        if self.urgent:
            entry = self.urgent.pop()
            self.running.append(replace(entry, since=time))
        elif self.enter0:
            entry = self.enter0.pop(0)
            self.running.append(replace(entry, since=time))

    # ----------------------------------------------------------- event replay

    def process(self, event: SchedulingEvent) -> None:
        """Replay one event, appending any rule violations found."""
        location = self._blocked_location(event.pid)
        if location is not None:
            self._report(
                STRule.EVENT_WHILE_BLOCKED,
                f"P{event.pid} generated {event.kind.value} while on the "
                f"{location}: a blocked process cannot act (it was resumed "
                "without being admitted)",
                time=event.time,
                pids=(event.pid,),
                event_seq=event.seq,
            )
        if event.kind is EventKind.ENTER:
            self._replay_enter(event)
        elif event.kind is EventKind.WAIT:
            self._replay_wait(event)
        elif event.kind is EventKind.SIGNAL_EXIT:
            self._replay_signal_exit(event)
        elif event.kind is EventKind.SIGNAL:
            self._replay_signal(event)
        if len(self.running) > 1:
            self._report(
                STRule.ONE_INSIDE,
                f"{len(self.running)} processes inside the monitor after "
                f"{event.kind.value} by P{event.pid}: "
                f"{[e.pid for e in self.running]}",
                time=event.time,
                pids=tuple(e.pid for e in self.running),
                event_seq=event.seq,
            )

    def replay(self, events: tuple[SchedulingEvent, ...]) -> None:
        for event in events:
            self.process(event)

    def _replay_enter(self, event: SchedulingEvent) -> None:
        entry = QueueEntry(event.pid, event.pname, event.time)
        if event.flag == 1:
            already_busy = bool(self.running)
            self.running.append(entry)
            if already_busy:
                self._report(
                    STRule.ENTER_TAKES_FREE_MONITOR,
                    f"P{event.pid} entered successfully while "
                    f"{[e.pid for e in self.running[:-1]]} already inside "
                    "(Running-List was not {Pid} after a successful Enter)",
                    time=event.time,
                    pids=(event.pid,),
                    event_seq=event.seq,
                )
        else:
            if not self.running:
                self._report(
                    STRule.BLOCKED_MEANS_BUSY,
                    f"P{event.pid} was delayed on Enter although no process "
                    "was inside the monitor (unfair response)",
                    time=event.time,
                    pids=(event.pid,),
                    event_seq=event.seq,
                )
            self.enter0.append(entry)

    def _check_caller_running(self, event: SchedulingEvent) -> bool:
        if any(e.pid == event.pid for e in self.running):
            return True
        self._report(
            STRule.CALLER_IS_RUNNING,
            f"P{event.pid} issued {event.kind.value} but the Running-List "
            f"is {[e.pid for e in self.running]} — the caller never "
            "(observably) entered the monitor",
            time=event.time,
            pids=(event.pid,),
            event_seq=event.seq,
        )
        return False

    def _replay_wait(self, event: SchedulingEvent) -> None:
        was_running = self._check_caller_running(event)
        if was_running:
            self._remove_running(event.pid)
        assert event.cond is not None  # enforced by the event constructor
        queue = self.wait_cond.setdefault(event.cond, [])
        queue.append(QueueEntry(event.pid, event.pname, event.time))
        self._admit_next(event.time)

    def _replay_signal_exit(self, event: SchedulingEvent) -> None:
        was_running = self._check_caller_running(event)
        if was_running:
            self._remove_running(event.pid)
        if event.flag == 1:
            queue = self.wait_cond.get(event.cond or "", [])
            if event.cond is None or not queue:
                self._report(
                    STRule.SIGNAL_CONSISTENT,
                    f"Signal-Exit by P{event.pid} claims it resumed a waiter "
                    f"on {event.cond!r} but the Wait-Cond-List is empty",
                    time=event.time,
                    pids=(event.pid,),
                    event_seq=event.seq,
                )
                self._admit_next(event.time)
            else:
                waiter = queue.pop(0)
                self.running.append(replace(waiter, since=event.time))
        else:
            if event.cond is not None and self.wait_cond.get(event.cond):
                self._report(
                    STRule.SIGNAL_CONSISTENT,
                    f"Signal-Exit by P{event.pid} on {event.cond!r} resumed "
                    f"nobody although "
                    f"{[e.pid for e in self.wait_cond[event.cond]]} were "
                    "waiting on the condition",
                    time=event.time,
                    pids=(event.pid,),
                    event_seq=event.seq,
                )
            self._admit_next(event.time)

    def _replay_signal(self, event: SchedulingEvent) -> None:
        """Extension: non-exiting Signal under the Hoare/Mesa disciplines."""
        self._check_caller_running(event)
        assert event.cond is not None or event.flag == 0
        discipline = self._declaration.discipline
        queue = self.wait_cond.get(event.cond or "", [])
        if event.flag == 0:
            if event.cond is not None and queue:
                self._report(
                    STRule.SIGNAL_CONSISTENT,
                    f"Signal by P{event.pid} on {event.cond!r} resumed nobody "
                    f"although {[e.pid for e in queue]} were waiting",
                    time=event.time,
                    pids=(event.pid,),
                    event_seq=event.seq,
                )
            return
        if not queue:
            self._report(
                STRule.SIGNAL_CONSISTENT,
                f"Signal by P{event.pid} claims it resumed a waiter on "
                f"{event.cond!r} but the Wait-Cond-List is empty",
                time=event.time,
                pids=(event.pid,),
                event_seq=event.seq,
            )
            return
        waiter = queue.pop(0)
        if discipline is Discipline.SIGNAL_AND_WAIT:
            signaller = self._remove_running(event.pid)
            if signaller is not None:
                self.urgent.append(replace(signaller, since=event.time))
            self.running.append(replace(waiter, since=event.time))
        else:
            # Mesa: the waiter re-queues at the entry queue tail; the
            # signaller keeps the monitor.
            self.enter0.append(replace(waiter, since=event.time))

    # ----------------------------------------------------- checkpoint compare

    def compare_with(
        self,
        current: SchedulingState,
        *,
        tmax: Optional[float] = None,
        tio: Optional[float] = None,
    ) -> None:
        """Step 2 of Algorithm-1: compare lists with the actual state."""
        now = current.time
        model_eq = [e.pid for e in self.enter0]
        actual_eq = list(current.entry_pids)
        if model_eq != actual_eq:
            self._report(
                STRule.ENTRY_QUEUE_MATCHES,
                f"Enter-0-List {model_eq} != actual EQ {actual_eq}",
                time=now,
                pids=tuple(set(model_eq) ^ set(actual_eq)),
            )
        for cond in self._declaration.conditions:
            model_cq = [e.pid for e in self.wait_cond.get(cond, [])]
            actual_cq = list(current.cond_pids(cond))
            if model_cq != actual_cq:
                self._report(
                    STRule.COND_QUEUE_MATCHES,
                    f"Wait-Cond-List[{cond}] {model_cq} != actual "
                    f"CQ[{cond}] {actual_cq}",
                    time=now,
                    pids=tuple(set(model_cq) ^ set(actual_cq)),
                )
        self._snapshot_witness(current)
        model_running = sorted(e.pid for e in self.running)
        actual_running = sorted(current.running_pids)
        if model_running != actual_running:
            self._report(
                STRule.RUNNING_MATCHES,
                f"Running-List {model_running} != actual Running "
                f"{actual_running}",
                time=now,
                pids=tuple(set(model_running) ^ set(actual_running)),
            )
        model_urgent = sorted(e.pid for e in self.urgent)
        actual_urgent = sorted(e.pid for e in current.urgent)
        if model_urgent != actual_urgent:
            self._report(
                STRule.RUNNING_MATCHES,
                f"urgent list {model_urgent} != actual urgent "
                f"{actual_urgent}",
                time=now,
                pids=tuple(set(model_urgent) ^ set(actual_urgent)),
            )
        self._sweep_model_timers(now, tmax, tio)

    def compare_unchanged(
        self,
        current: SchedulingState,
        *,
        tmax: Optional[float] = None,
        tio: Optional[float] = None,
    ) -> None:
        """:meth:`compare_with` for a window whose lists provably equal
        ``current``'s queues (zero events on verified carried lists).

        Every membership comparison is then a foregone conclusion, so only
        the snapshot's mutual-exclusion witness and the timer sweeps can
        fire — emitted in exactly the order ``compare_with`` would."""
        self._snapshot_witness(current)
        self._sweep_model_timers(current.time, tmax, tio)

    def _snapshot_witness(self, current: SchedulingState) -> None:
        if len(current.running) > 1:
            # The snapshot directly witnesses a mutual-exclusion violation,
            # independent of whether the event replay re-converged: this is
            # how transient double admissions are caught when the checking
            # interval is tight enough (the paper's T-accuracy trade-off).
            self._report(
                STRule.ONE_INSIDE,
                f"snapshot shows {len(current.running)} processes inside "
                f"the monitor simultaneously: {list(current.running_pids)}",
                time=current.time,
                pids=tuple(current.running_pids),
            )

    def _sweep_model_timers(
        self, now: float, tmax: Optional[float], tio: Optional[float]
    ) -> None:
        if tmax is not None:
            for entry in self.running:
                if entry.timer(now) >= tmax:
                    self._report(
                        STRule.TMAX_EXCEEDED,
                        f"P{entry.pid} ({entry.pname}) has been inside the "
                        f"monitor for {entry.timer(now):g} >= Tmax={tmax:g}",
                        time=now,
                        pids=(entry.pid,),
                    )
            for cond, queue in self.wait_cond.items():
                for entry in queue:
                    if entry.timer(now) >= tmax:
                        self._report(
                            STRule.TMAX_EXCEEDED,
                            f"P{entry.pid} has waited on condition {cond!r} "
                            f"for {entry.timer(now):g} >= Tmax={tmax:g}",
                            time=now,
                            pids=(entry.pid,),
                        )
        if tio is not None:
            for entry in self.enter0:
                if entry.timer(now) >= tio:
                    self._report(
                        STRule.TIO_EXCEEDED,
                        f"P{entry.pid} has sat on the entry queue for "
                        f"{entry.timer(now):g} >= Tio={tio:g} (starved or "
                        "lost)",
                        time=now,
                        pids=(entry.pid,),
                    )
