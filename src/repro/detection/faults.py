"""The taxonomy of monitor concurrency-control faults (paper Section 2.2).

Twenty-one fault classes at three levels:

* **Level I — implementation level** (14 faults): misbehaviour of the
  monitor primitives themselves (Enter, Wait, Signal-Exit) plus internal
  process termination.
* **Level II — monitor procedure level** (4 faults): monitor procedures
  driving the shared resource into inconsistent states, i.e. violations of
  the communication-coordinator integrity constraints.
* **Level III — user process level** (3 faults): user code violating the
  declared partial order of procedure calls on allocator monitors.

Per the paper, only level-III faults must be detected in real time; the
others are checked periodically "since they induce no immediate significant
errors or disaster".
"""

from __future__ import annotations

import enum

__all__ = ["FaultLevel", "FaultClass"]


class FaultLevel(enum.Enum):
    """The three levels of the taxonomy."""

    IMPLEMENTATION = "I"
    PROCEDURE = "II"
    USER_PROCESS = "III"

    @property
    def realtime(self) -> bool:
        """True when the paper requires real-time (per-event) detection."""
        return self is FaultLevel.USER_PROCESS


class FaultClass(enum.Enum):
    """One entry of the paper's fault taxonomy.

    The value is the paper's outline label (level.group.index).
    """

    # -- I.a: Enter procedure faults ---------------------------------------
    #: Two or more processes have entered the monitor at the same time.
    ENTER_MUTEX_VIOLATED = "I.a.1"
    #: The requesting process is neither queued nor admitted.
    ENTER_REQUEST_LOST = "I.a.2"
    #: The process is queued indefinitely, or blocked while the monitor is free.
    ENTER_NO_RESPONSE = "I.a.3"
    #: A process is running inside without having invoked Enter.
    ENTER_NOT_OBSERVED = "I.a.4"

    # -- I.b: Wait procedure faults -----------------------------------------
    #: The caller is not blocked and continues to run inside the monitor.
    WAIT_NO_BLOCK = "I.b.1"
    #: The caller is neither queued on the condition nor running.
    WAIT_CALLER_LOST = "I.b.2"
    #: No entry-queue process is resumed when the caller blocks.
    WAIT_NO_RESUME = "I.b.3"
    #: An entry-queue process is never resumed (starvation).
    WAIT_ENTRY_STARVED = "I.b.4"
    #: More than one entry-queue process is resumed at once.
    WAIT_MUTEX_VIOLATED = "I.b.5"
    #: The caller blocks but fails to release the monitor.
    WAIT_MONITOR_HELD = "I.b.6"

    # -- I.c: Signal-Exit procedure faults ----------------------------------
    #: No waiting process is resumed when the caller exits.
    SIGEXIT_NO_RESUME = "I.c.1"
    #: The caller exits but the monitor is not released.
    SIGEXIT_MONITOR_HELD = "I.c.2"
    #: More than one process is resumed when the caller exits.
    SIGEXIT_MUTEX_VIOLATED = "I.c.3"
    #: The process terminated inside the monitor without exiting (I.d in
    #: the paper's prose; listed under the Signal-Exit group as item 4).
    TERMINATED_INSIDE = "I.c.4"

    # -- II: monitor procedure level (integrity constraints) -----------------
    #: Send delayed when not full, or not delayed when full.
    SEND_DELAY_INTEGRITY = "II.a"
    #: Receive delayed when not empty, or not delayed when empty.
    RECEIVE_DELAY_INTEGRITY = "II.b"
    #: Successful Sends fewer than successful Receives (r > s).
    RECEIVE_EXCEEDS_SEND = "II.c"
    #: Successful Sends exceed capacity plus successful Receives.
    SEND_EXCEEDS_CAPACITY = "II.d"

    # -- III: user process level (partial ordering) ---------------------------
    #: A process releases a resource it never acquired.
    RELEASE_BEFORE_REQUEST = "III.a"
    #: A process never releases an acquired resource.
    RESOURCE_NOT_RELEASED = "III.b"
    #: A process re-acquires a held resource without releasing (self-deadlock).
    REQUEST_WHILE_HOLDING = "III.c"

    # ------------------------------------------------------------------ meta

    @property
    def level(self) -> FaultLevel:
        prefix = self.value.split(".", 1)[0]
        return {
            "I": FaultLevel.IMPLEMENTATION,
            "II": FaultLevel.PROCEDURE,
            "III": FaultLevel.USER_PROCESS,
        }[prefix]

    @property
    def label(self) -> str:
        """The paper's outline label, e.g. ``"I.b.5"``."""
        return self.value

    @classmethod
    def all_labels(cls) -> tuple[str, ...]:
        return tuple(fault.value for fault in cls)

    @classmethod
    def at_level(cls, level: FaultLevel) -> tuple["FaultClass", ...]:
        return tuple(fault for fault in cls if fault.level is level)


# Sanity anchor: the paper counts twenty-one faults in total.
assert len(FaultClass) == 21, "the taxonomy must have exactly 21 fault classes"
