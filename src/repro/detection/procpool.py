"""Evaluation pools: per-shard phase-2 offload, threads or processes.

A :class:`~repro.detection.cluster.DetectionCluster` amortised the
world-stop (phase 1) — but phase-2 rule evaluation still competed for one
interpreter: the per-shard worker *threads* of
:class:`ThreadEvaluationPool` overlap evaluation with capture, yet on
CPython every checker instruction still serialises behind the GIL, so N
shards buy overlap, not parallelism.

:class:`ProcessEvaluationPool` escapes the GIL: one **evaluator worker
process** per shard (stdlib ``multiprocessing``, spawn-safe — workers are
launched from module-level code and receive no unpicklable state).  Each
worker holds the shard's *shadow* evaluation state — Algorithm-1 carried
checking lists, Algorithm-2 cumulative counters, Algorithm-3 replay
machines — rebuilt from rendered declarations and the checkers'
``state_dict``/``restore_state`` surface, exactly like the detection
service's server-side shadow streams.  Captures cross the pipe as JSON
(the :mod:`repro.history.serialize` wire codecs — never pickle), reports
and updated checker state come back the same way, and the parent merges
them through the cluster's deterministic report order.

Fault model: a worker death (``kill -9``, OOM, crash) is detected on the
pipe, recorded as a ``"worker-death"`` :class:`SupervisorEvent` and a
breaker trip on the worker's own :class:`CircuitBreaker`, and the shard
*deterministically falls back to in-thread evaluation*: batches are
applied atomically (a reply is applied in full, or not at all), the
parent re-adopts the worker's checker state after every completed batch,
so the in-flight batch re-evaluates locally from exactly the state the
worker would have used — no window is lost, no report duplicated.
"""

from __future__ import annotations

import json
import multiprocessing
import queue
import threading
import time
from time import perf_counter
from typing import Callable, Optional

from repro.detection.config import DetectorConfig
from repro.detection.engine import CheckpointCapture, evaluate_capture
from repro.detection.reports import report_from_dict, report_to_dict
from repro.detection.supervision import CircuitBreaker, SupervisorEvent
from repro.history.serialize import (
    request_list_from_wire,
    request_list_to_wire,
    segment_from_dict,
    segment_to_json,
    state_from_dict,
    state_to_dict,
)

__all__ = [
    "EvaluationPool",
    "ThreadEvaluationPool",
    "ProcessEvaluationPool",
]


# ------------------------------------------------------------- pool base


class EvaluationPool:
    """One dispatch thread + job queue per shard.

    Each shard owns exactly one worker draining its own queue, so
    per-shard checker state (Algorithm-2 counters, replay state) is still
    mutated by a single thread — while different shards evaluate and
    capture concurrently.  Subclasses decide where the evaluation itself
    runs: on the dispatch thread (:class:`ThreadEvaluationPool`) or in a
    worker process it converses with (:class:`ProcessEvaluationPool`).
    """

    #: The DetectorConfig.evaluation spelling of this pool.
    plane = "?"

    def __init__(self, shard_count: int) -> None:
        self._queues: list[queue.Queue] = [
            queue.Queue() for __ in range(shard_count)
        ]
        self.jobs_run = 0
        #: Exceptions that escaped a job (engine-level bugs; checker
        #: failures are already absorbed by the breakers inside the job).
        self.errors: list[Exception] = []
        #: Seconds each dispatch thread spent on-CPU (GIL-bound work:
        #: thread-pool evaluation, process-pool serialisation).
        self.dispatch_cpu: list[float] = [0.0] * shard_count
        #: Threads (by name) that outlived their close timeout.
        self.leaked: list[tuple[int, str]] = []
        self._threads: list[threading.Thread] = []
        for index, jobs in enumerate(self._queues):
            thread = threading.Thread(
                target=self._run,
                args=(index, jobs),
                name=f"shard-evaluate-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _run(self, index: int, jobs: queue.Queue) -> None:
        while True:
            job = jobs.get()
            try:
                if job is None:
                    return
                started = time.thread_time()
                try:
                    job()
                    self.jobs_run += 1
                except Exception as exc:  # noqa: BLE001 — surfaced via errors
                    self.errors.append(exc)
                finally:
                    self.dispatch_cpu[index] += time.thread_time() - started
            finally:
                jobs.task_done()

    # ------------------------------------------------------------ dispatch

    def submit(self, shard_index: int, job: Callable[[], object]) -> None:
        self._queues[shard_index].put(job)

    def submit_shard(self, shard) -> None:
        """Queue one captured checkpoint of ``shard`` for evaluation."""
        raise NotImplementedError

    def drain(self) -> None:
        """Block until every submitted evaluation has finished."""
        for jobs in self._queues:
            jobs.join()

    # ------------------------------------------------- registration hooks

    def entry_registered(self, shard, entry) -> None:
        """A monitor joined ``shard`` (threads: nothing to mirror)."""

    def entry_unregistered(self, shard, label: str) -> None:
        """A monitor left ``shard``."""

    def resync_shard(self, shard) -> None:
        """Shard state was rebuilt outside the pool (e.g. recovery)."""

    def warm_up(self, shards) -> None:
        """Pre-start backing workers (threads: already warm)."""

    # ----------------------------------------------------------- lifecycle

    def close(self, timeout: float = 5.0) -> list[tuple[int, str]]:
        """Stop the dispatch threads; surface anything that won't die.

        Returns ``(shard index, thread/worker name)`` for every worker
        still alive after its join timeout — the caller (the cluster)
        turns each into a ``"leak"`` :class:`SupervisorEvent` instead of
        silently abandoning a live thread.
        """
        for jobs in self._queues:
            jobs.put(None)
        leaked: list[tuple[int, str]] = []
        for index, thread in enumerate(self._threads):
            thread.join(timeout=timeout)
            if thread.is_alive():
                leaked.append((index, thread.name))
        leaked.extend(self._close_workers(timeout, {i for i, __ in leaked}))
        self.leaked.extend(leaked)
        return leaked

    def _close_workers(
        self, timeout: float, leaked_threads: set[int]
    ) -> list[tuple[int, str]]:
        """Subclass hook: shut down out-of-process workers."""
        return []


# ---------------------------------------------------------- thread plane


class ThreadEvaluationPool(EvaluationPool):
    """Phase-2 offload on worker threads (overlap, GIL-serialised)."""

    plane = "threads"

    def submit_shard(self, shard) -> None:
        self.submit(shard.index, shard._evaluate_offloaded)


# --------------------------------------------------------- process plane


class _WorkerDied(Exception):
    """The evaluator worker process is gone (pipe closed mid-conversation)."""


class _WorkerHandle:
    """Parent-side face of one evaluator worker process."""

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.dead = False
        self.reason = ""
        #: Cumulative ``time.process_time()`` of the worker, as of its
        #: last evaluate reply — the true multi-core spend of this shard.
        self.cpu_seconds = 0.0
        #: One-strike breaker: a worker death trips it permanently, which
        #: is what makes the in-thread fallback deterministic (no
        #: half-open probe ever routes a later window back to a respawned
        #: worker mid-stream).
        self.breaker = CircuitBreaker(failure_threshold=1, cooldown=float("inf"))


class ProcessEvaluationPool(EvaluationPool):
    """Phase-2 evaluation in one worker process per shard (multi-core).

    The dispatch thread owns the whole pipe conversation — encode,
    send, receive, decode, apply — so shard state is still touched by
    one thread only, and ``drain()`` means what it always meant.
    """

    plane = "processes"

    def __init__(self, shard_count: int, *, start_method: str = "spawn") -> None:
        ctx = multiprocessing.get_context(start_method)
        self._handles: list[_WorkerHandle] = []
        for index in range(shard_count):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_evaluator_worker_main,
                args=(child_conn,),
                name=f"shard-worker-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._handles.append(_WorkerHandle(process, parent_conn))
        #: ``(shard index, reason)`` per worker death observed.
        self.worker_deaths: list[tuple[int, str]] = []
        #: Windows re-evaluated in-thread after their worker died.
        self.windows_recovered = 0
        super().__init__(shard_count)

    @property
    def per_worker_cpu(self) -> list[float]:
        """Per-shard worker-process CPU seconds (parallel spend)."""
        return [handle.cpu_seconds for handle in self._handles]

    # ------------------------------------------------------------ dispatch

    def submit_shard(self, shard) -> None:
        # The batch is fixed *now*: captures taken by this phase 1 ride
        # this job, whatever lands in the engine afterwards rides the next.
        captures = shard.engine.take_pending_captures()
        self.submit(shard.index, lambda: self._evaluate_batch(shard, captures))

    def entry_registered(self, shard, entry) -> None:
        spec = entry.export_stream_spec()
        self.submit(
            shard.index,
            lambda: self._control(shard, {"op": "register", "stream": spec}),
        )

    def entry_unregistered(self, shard, label: str) -> None:
        self.submit(
            shard.index,
            lambda: self._control(shard, {"op": "unregister", "label": label}),
        )

    def resync_shard(self, shard) -> None:
        specs = [entry.export_stream_spec() for entry in shard.engine.entries]
        self.submit(
            shard.index,
            lambda: self._control(shard, {"op": "sync", "streams": specs}),
        )

    def warm_up(self, shards) -> None:
        # One ping per worker, through the dispatch threads: the parent
        # never blocks, but every worker has finished interpreter spawn
        # and imports by the time its first window arrives (otherwise the
        # first checkpoint pays several hundred ms of start-up latency).
        for shard in shards:
            self.submit(
                shard.index,
                lambda shard=shard: self._control(shard, {"op": "ping"}),
            )

    # ---------------------------------------------------------------- wire

    def _request(self, handle: _WorkerHandle, payload: str) -> dict:
        try:
            handle.conn.send_bytes(payload.encode("utf-8"))
            return json.loads(handle.conn.recv_bytes())
        except (BrokenPipeError, ConnectionError, EOFError, OSError) as exc:
            raise _WorkerDied(f"{type(exc).__name__}: {exc}") from exc

    def _control(self, shard, message: dict) -> None:
        handle = self._handles[shard.index]
        if handle.dead:
            return
        try:
            self._request(handle, json.dumps(message, separators=(",", ":")))
        except _WorkerDied as exc:
            self._record_death(shard, str(exc))

    def _record_death(self, shard, reason: str) -> None:
        handle = self._handles[shard.index]
        if handle.dead:
            return
        handle.dead = True
        handle.reason = reason
        now = shard.kernel.now()
        handle.breaker.record_failure(now, f"evaluator worker died: {reason}")
        self.worker_deaths.append((shard.index, reason))
        shard.supervisor.events.append(
            SupervisorEvent(
                now,
                "worker-death",
                f"shard-worker-{shard.index} lost ({reason}); "
                "falling back to in-thread evaluation",
            )
        )

    # ------------------------------------------------------------ evaluate

    def _evaluate_batch(self, shard, captures: list[CheckpointCapture]) -> None:
        engine = shard.engine
        started = perf_counter()
        try:
            handle = self._handles[shard.index]
            if captures and not handle.dead:
                payload = _encode_evaluate(captures)
                try:
                    reply = self._request(handle, payload)
                except _WorkerDied as exc:
                    self._record_death(shard, str(exc))
                else:
                    if reply.get("ok"):
                        self._apply_batch(shard, captures, reply)
                        captures = []
                    else:
                        self._record_death(
                            shard, f"protocol error: {reply.get('error')!r}"
                        )
            if captures:
                # Either the worker is (now) dead or the batch never got a
                # reply: evaluate in-thread from the parent's checkers,
                # which hold exactly the state of the last applied batch.
                engine._pending_captures[:0] = captures
                engine.evaluate_phase()
                if handle.dead:
                    self.windows_recovered += len(captures)
        finally:
            elapsed = perf_counter() - started
            engine.evaluate_seconds += elapsed
            engine.evaluate_samples.append(elapsed)
        engine.checkpoints_run += 1
        shard.finish_durable_checkpoint()

    def _apply_batch(
        self, shard, captures: list[CheckpointCapture], reply: dict
    ) -> None:
        """Fold one completed worker reply into the parent engine.

        Mirrors :meth:`DetectionEngine.evaluate_phase` bookkeeping —
        report streams, breaker verdicts, failure counters, degraded-
        window accounting — then re-adopts the shadow checkers' state so
        the parent stays a warm standby for the in-thread fallback.
        """
        engine = shard.engine
        handle = self._handles[shard.index]
        handle.cpu_seconds = float(reply.get("cpu_seconds", handle.cpu_seconds))
        last_by_label: dict[str, CheckpointCapture] = {}
        for capture, window in zip(captures, reply.get("windows", ())):
            entry = capture.entry
            last_by_label[entry.label] = capture
            error = window.get("error")
            if error is not None:
                engine.check_failures += 1
                entry.breaker.record_failure(capture.taken_at, error)
                continue
            reports = [report_from_dict(raw) for raw in window.get("reports", ())]
            elapsed = float(window.get("elapsed", 0.0))
            budget = entry.config.monitor_check_budget
            if budget is not None and elapsed > budget:
                entry.breaker.record_failure(
                    capture.taken_at,
                    f"evaluation took {elapsed:.4f}s > budget {budget:g}s",
                )
            else:
                entry.breaker.record_success(capture.taken_at)
            engine.evaluations_run += 1
            entry.reports.extend(reports)
            entry.checkpoints_run += 1
            if not capture.segment.complete:
                entry.dropped_in_windows += capture.segment.dropped
                entry.degraded_windows += 1
        for label, record in reply.get("state", {}).items():
            entry = engine._by_label.get(label)
            if entry is None:
                continue  # unregistered while the batch was in flight
            last = last_by_label.get(label)
            # The worker's Algorithm-1 lists were left matching the last
            # window's ``current``; handing the parent's own object back
            # as the basis re-links the identity carry chain, because the
            # sink reuses that exact object as the next cut's ``previous``.
            basis = None if last is None else last.segment.current
            entry.import_checker_state(record, basis=basis)

    # ----------------------------------------------------------- lifecycle

    def _close_workers(
        self, timeout: float, leaked_threads: set[int]
    ) -> list[tuple[int, str]]:
        leaked: list[tuple[int, str]] = []
        for index, handle in enumerate(self._handles):
            if not handle.dead and index not in leaked_threads:
                # The dispatch thread is gone, so the pipe is ours now.
                try:
                    handle.conn.send_bytes(b'{"op":"stop"}')
                except (BrokenPipeError, ConnectionError, OSError):
                    pass
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                leaked.append((index, handle.process.name))
            handle.conn.close()
        return leaked


# ------------------------------------------------------------ wire encode


def _encode_evaluate(captures: list[CheckpointCapture]) -> str:
    """The evaluate request, hand-composed around the fused segment codec.

    This runs under the GIL in the dispatch thread — it *is* the process
    plane's serial fraction, so the event list (the bulk of every
    payload) goes through :func:`~repro.history.serialize.segment_to_json`
    rather than a dict build + ``json.dumps``.
    """
    windows = []
    for capture in captures:
        label = json.dumps(capture.entry.label)
        request_list = json.dumps(
            request_list_to_wire(capture.request_list), separators=(",", ":")
        )
        snapshot = (
            "null"
            if capture.snapshot is capture.segment.current
            else json.dumps(state_to_dict(capture.snapshot), separators=(",", ":"))
        )
        windows.append(
            f'{{"label":{label},"segment":{segment_to_json(capture.segment)},'
            f'"request_list":{request_list},"snapshot":{snapshot},'
            f'"taken_at":{capture.taken_at!r}}}'
        )
    return f'{{"op":"evaluate","windows":[{",".join(windows)}]}}'


# ------------------------------------------------------------- worker side


class _ShadowStream:
    """One monitor's evaluation state, rebuilt inside the worker.

    The same shadow trick as the detection service: the declaration
    travels as rendered text and is re-parsed here; the checkers are
    plain state machines over wire-decoded windows — no kernel, no
    monitor object, no pickled anything.  In realtime-order mode there is
    deliberately **no** Algorithm-3 instance: the parent's live tap owns
    that state, and phase 2 only sweeps the frozen Request-List carried
    by each capture.
    """

    def __init__(self, spec: dict) -> None:
        from repro.detection.algorithm1 import IncrementalConcurrencyChecker
        from repro.detection.algorithm2 import ResourceStateChecker
        from repro.detection.algorithm3 import CallingOrderChecker
        from repro.monitor.declaration import MonitorDeclaration

        self.label = spec["label"]
        self.monitor_name = spec["monitor_name"]
        self.declaration = MonitorDeclaration.parse(spec["declaration"])
        raw = spec["config"]
        self.config = DetectorConfig(
            tmax=raw["tmax"],
            tio=raw["tio"],
            tlimit=raw["tlimit"],
            realtime_orders=raw["realtime_orders"],
            incremental_checking=raw["incremental_checking"],
        )
        self.algorithm1 = None
        if self.config.incremental_checking:
            self.algorithm1 = IncrementalConcurrencyChecker(self.declaration)
        self.algorithm2 = None
        if self.declaration.mtype.needs_resource_checking:
            checker = ResourceStateChecker(self.declaration)
            if checker.applicable:
                self.algorithm2 = checker
        self.order_checking = bool(
            self.declaration.mtype.needs_order_checking
            or self.declaration.call_order
        )
        self.algorithm3 = None
        if self.order_checking and not self.config.realtime_orders:
            self.algorithm3 = CallingOrderChecker(self.declaration)
        state = spec.get("state") or {}
        raw = state.get("algorithm1")
        if raw is not None and self.algorithm1 is not None:
            self.algorithm1.restore_state(raw)
        raw = state.get("algorithm2")
        if raw is not None and self.algorithm2 is not None:
            self.algorithm2.restore_state(raw)
        raw = state.get("algorithm3")
        if raw is not None and self.algorithm3 is not None:
            self.algorithm3.restore_state(raw)
        #: The last evaluated window's ``current`` state — kept so the
        #: next window's structurally-equal ``previous`` can be swapped
        #: for this very object, restoring the identity-based Algorithm-1
        #: carry across the wire.
        self._last_current = None

    def evaluate(self, window: dict) -> list:
        segment = segment_from_dict(window["segment"])
        if (
            self._last_current is not None
            and segment.previous == self._last_current
        ):
            segment = type(segment)(
                previous=self._last_current,
                events=segment.events,
                current=segment.current,
                dropped=segment.dropped,
            )
        raw_snapshot = window.get("snapshot")
        snapshot = (
            segment.current
            if raw_snapshot is None
            else state_from_dict(raw_snapshot)
        )
        found = evaluate_capture(
            self.declaration,
            self.config,
            monitor_name=self.monitor_name,
            algorithm1=self.algorithm1,
            algorithm2=self.algorithm2,
            algorithm3=self.algorithm3,
            order_checking=self.order_checking,
            snapshot=snapshot,
            segment=segment,
            request_list=request_list_from_wire(window.get("request_list")),
        )
        self._last_current = segment.current
        return found

    def state_dict(self) -> dict:
        return {
            "algorithm1": (
                None if self.algorithm1 is None else self.algorithm1.state_dict()
            ),
            "algorithm2": (
                None if self.algorithm2 is None else self.algorithm2.state_dict()
            ),
            "algorithm3": (
                None if self.algorithm3 is None else self.algorithm3.state_dict()
            ),
        }


def _send(conn, record: dict) -> None:
    conn.send_bytes(json.dumps(record, separators=(",", ":")).encode("utf-8"))


def _evaluator_worker_main(conn) -> None:
    """Entry point of one evaluator worker process (spawn-safe)."""
    streams: dict[str, _ShadowStream] = {}
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            return
        try:
            message = json.loads(raw)
        except ValueError as exc:
            _send(conn, {"ok": False, "error": f"bad frame: {exc}"})
            continue
        op = message.get("op")
        if op == "stop":
            _send(conn, {"ok": True})
            return
        if op == "ping":
            # Warm-up handshake: forces the interpreter spawn + imports
            # before the first checkpoint, so evaluate latency never
            # includes worker start-up.
            _send(conn, {"ok": True})
            continue
        if op == "register":
            try:
                stream = _ShadowStream(message["stream"])
            except Exception as exc:  # noqa: BLE001 — reported, not fatal
                _send(
                    conn,
                    {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                )
                continue
            streams[stream.label] = stream
            _send(conn, {"ok": True})
        elif op == "unregister":
            streams.pop(message.get("label"), None)
            _send(conn, {"ok": True})
        elif op == "sync":
            try:
                rebuilt = {}
                for spec in message.get("streams", ()):
                    stream = _ShadowStream(spec)
                    rebuilt[stream.label] = stream
            except Exception as exc:  # noqa: BLE001 — reported, not fatal
                _send(
                    conn,
                    {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                )
                continue
            streams = rebuilt
            _send(conn, {"ok": True})
        elif op == "evaluate":
            windows = []
            touched: dict[str, _ShadowStream] = {}
            for window in message.get("windows", ()):
                label = window.get("label")
                stream = streams.get(label)
                if stream is None:
                    windows.append(
                        {"label": label, "error": f"unknown stream {label!r}"}
                    )
                    continue
                started = perf_counter()
                try:
                    reports = stream.evaluate(window)
                except Exception as exc:  # noqa: BLE001 — breaker food
                    windows.append(
                        {
                            "label": label,
                            "error": f"{type(exc).__name__}: {exc}",
                            "elapsed": perf_counter() - started,
                        }
                    )
                    touched[label] = stream
                    continue
                windows.append(
                    {
                        "label": label,
                        "reports": [report_to_dict(r) for r in reports],
                        "elapsed": perf_counter() - started,
                    }
                )
                touched[label] = stream
            _send(
                conn,
                {
                    "ok": True,
                    "windows": windows,
                    "state": {
                        label: stream.state_dict()
                        for label, stream in touched.items()
                    },
                    "cpu_seconds": time.process_time(),
                },
            )
        else:
            _send(conn, {"ok": False, "error": f"unknown op {op!r}"})
