"""Algorithm-1: General Concurrency-Control Checking (Section 3.3.2).

Inputs: the monitor state at the last checking time (``s_p``), the state at
the current checking time (``s_t``), and the scheduling event sequence ``L``
generated in between — i.e. exactly one
:class:`~repro.history.database.Segment`.

Step 1 replays ``L`` against the checking lists initialised from ``s_p``,
reporting per-event violations (ST-Rules 3 and 4).  Step 2 compares the
reconstructed lists against ``s_t`` (ST-Rules 1 and 2, the Running
comparison) and sweeps the timers (ST-Rules 5 and 6).

Two equivalent drivers share the replay machine:

* :func:`check_general_concurrency_control` — the literal, stateless
  algorithm: a fresh machine per window, seeded from ``s_p``.  Kept as
  the ``DetectorConfig(incremental_checking=False)`` fallback and as the
  differential-testing oracle.
* :class:`IncrementalConcurrencyChecker` — one persistent machine per
  monitor that *carries* the checking lists across checkpoints (the
  paper's §3.3.1 lists are designed for exactly this), re-seeding them
  from the snapshot only when the previous window ended on a mismatch.
  Its report stream is byte-identical to the oracle's by construction:
  a window is only evaluated on carried lists after they were verified
  (:meth:`~repro.detection.replay.ReplayMachine.matches`) against the
  very snapshot the oracle would seed from.
"""

from __future__ import annotations

from typing import Optional

from repro.detection.replay import ReplayMachine
from repro.detection.reports import FaultReport
from repro.history.database import Segment
from repro.history.serialize import state_from_dict, state_to_dict
from repro.history.states import SchedulingState
from repro.monitor.declaration import MonitorDeclaration

__all__ = [
    "check_general_concurrency_control",
    "IncrementalConcurrencyChecker",
]


def check_general_concurrency_control(
    declaration: MonitorDeclaration,
    segment: Segment,
    *,
    tmax: Optional[float] = None,
    tio: Optional[float] = None,
) -> list[FaultReport]:
    """Run Algorithm-1 over one checking window; return violations found.

    ``tmax`` bounds residence inside the monitor and on condition queues;
    ``tio`` bounds residence on the entry queue.  Passing None disables the
    corresponding timer sweep (useful for pure sequence checking in tests).
    """
    machine = ReplayMachine(declaration, segment.previous)
    machine.replay(segment.events)
    machine.compare_with(segment.current, tmax=tmax, tio=tio)
    return machine.violations


class IncrementalConcurrencyChecker:
    """Algorithm-1 with per-monitor checking lists carried across windows.

    The stateless oracle above pays O(state) per checkpoint just to
    re-seed the lists from ``s_p`` — even when nothing happened.  This
    checker keeps one :class:`~repro.detection.replay.ReplayMachine`
    alive per monitor and decides per window:

    * **carry** (``hits``): the lists were verified equal to the last
      checkpoint's snapshot *and* this window starts on that very
      snapshot object (sinks reuse it as the next window's ``previous``),
      so the machine replays only the new events — no re-seeding.
    * **fast path** (``fastpaths``): a carried window with zero events
      whose lists still equal the current snapshot can skip the whole
      membership comparison; only the snapshot witness and the timer
      sweeps can fire.
    * **rebase** (``rebases``): first window, a mismatch in the previous
      window, or a window fed out of sequence (e.g. right after crash
      recovery) — re-seed from ``s_p``, exactly like the oracle.

    Because a carry is only ever taken off a verified match, the emitted
    report stream is byte-identical to running the oracle on every
    window; the property suite enforces this differentially.
    """

    def __init__(self, declaration: MonitorDeclaration) -> None:
        self._declaration = declaration
        self._machine: Optional[ReplayMachine] = None
        #: The snapshot object the carried lists were last verified
        #: against (identity-compared with the next window's ``previous``).
        self._basis: Optional[SchedulingState] = None
        #: Windows evaluated on carried lists (no re-seeding paid).
        self.hits = 0
        #: Windows that re-seeded the lists from the base snapshot.
        self.rebases = 0
        #: Zero-event carried windows that skipped the full comparison.
        self.fastpaths = 0

    def check_window(
        self,
        segment: Segment,
        *,
        tmax: Optional[float] = None,
        tio: Optional[float] = None,
    ) -> list[FaultReport]:
        """Run Algorithm-1 over one checking window, incrementally."""
        machine = self._machine
        carried = machine is not None and segment.previous is self._basis
        if machine is None:
            machine = ReplayMachine(self._declaration, segment.previous)
            self._machine = machine
            self.rebases += 1
        elif carried:
            machine.begin_window(segment.previous.time)
            self.hits += 1
        else:
            machine.rebase(segment.previous)
            self.rebases += 1
        current = segment.current
        if carried and not segment.events and machine.matches(current):
            self.fastpaths += 1
            machine.compare_unchanged(current, tmax=tmax, tio=tio)
            self._basis = current
            return machine.take_violations()
        machine.replay(segment.events)
        machine.compare_with(current, tmax=tmax, tio=tio)
        self._basis = current if machine.matches(current) else None
        return machine.take_violations()

    @property
    def carried(self) -> bool:
        """True when the next contiguous window may reuse the lists."""
        return self._basis is not None

    # ------------------------------------------------------------ durability

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the carried rule state."""
        machine = self._machine
        return {
            "hits": self.hits,
            "rebases": self.rebases,
            "fastpaths": self.fastpaths,
            "carried": self._basis is not None,
            "lists": (
                None if machine is None else state_to_dict(machine.export_state())
            ),
        }

    def restore_state(
        self, record: dict, *, basis: Optional[SchedulingState] = None
    ) -> None:
        """Restore a :meth:`state_dict` snapshot.

        ``basis`` is the sink's restored ``last_state``: when the snapshot
        says the lists were carried, re-binding them to that object lets
        the first post-recovery window resume mid-stream instead of
        re-seeding (recovery hands the sink the same snapshot as the next
        window's ``previous``).
        """
        self.hits = record.get("hits", 0)
        self.rebases = record.get("rebases", 0)
        self.fastpaths = record.get("fastpaths", 0)
        raw = record.get("lists")
        if raw is None:
            self._machine = None
            self._basis = None
            return
        self._machine = ReplayMachine(self._declaration, state_from_dict(raw))
        self._basis = basis if record.get("carried") and basis is not None else None
