"""Algorithm-1: General Concurrency-Control Checking (Section 3.3.2).

Inputs: the monitor state at the last checking time (``s_p``), the state at
the current checking time (``s_t``), and the scheduling event sequence ``L``
generated in between — i.e. exactly one
:class:`~repro.history.database.Segment`.

Step 1 replays ``L`` against the checking lists initialised from ``s_p``,
reporting per-event violations (ST-Rules 3 and 4).  Step 2 compares the
reconstructed lists against ``s_t`` (ST-Rules 1 and 2, the Running
comparison) and sweeps the timers (ST-Rules 5 and 6).
"""

from __future__ import annotations

from typing import Optional

from repro.detection.replay import ReplayMachine
from repro.detection.reports import FaultReport
from repro.history.database import Segment
from repro.monitor.declaration import MonitorDeclaration

__all__ = ["check_general_concurrency_control"]


def check_general_concurrency_control(
    declaration: MonitorDeclaration,
    segment: Segment,
    *,
    tmax: Optional[float] = None,
    tio: Optional[float] = None,
) -> list[FaultReport]:
    """Run Algorithm-1 over one checking window; return violations found.

    ``tmax`` bounds residence inside the monitor and on condition queues;
    ``tio`` bounds residence on the entry queue.  Passing None disables the
    corresponding timer sweep (useful for pure sequence checking in tests).
    """
    machine = ReplayMachine(declaration, segment.previous)
    machine.replay(segment.events)
    machine.compare_with(segment.current, tmax=tmax, tio=tio)
    return machine.violations
