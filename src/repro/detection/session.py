"""One constructor for the whole detection stack: :class:`DetectionSession`.

The public API had accreted four entry points with inconsistent assembly
steps — ``FaultDetector`` (one monitor, private engine),
``DetectionEngine`` (fleet, hand-spawned ``engine_process``),
``DurableEngine`` (wrap the engine, remember to ``baseline()``), and
``supervisor_process`` (build a ``CheckpointSupervisor`` first).  A
session is the one front door::

    session = DetectionSession(kernel, monitors=[alloc, coord])
    session.start()
    kernel.run(until=30.0)
    session.stop()
    for report in session.reports:
        print(report.render())

Scaling out and hardening are keyword arguments, not different APIs::

    session = DetectionSession(
        kernel,
        monitors=fleet,
        config=DetectorConfig.preset("bounded", interval=0.5),
        shards=4,                  # staggered DetectionCluster
        durable_dir="state/",      # per-shard WAL + snapshots
    )

Internally every session is a :class:`~repro.detection.cluster.DetectionCluster`
(a 1-shard cluster *is* a single engine plus supervision), so the
reporting surface, durability controls and per-shard accounting are
uniform regardless of scale.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.detection.cluster import DetectionCluster, ShardPolicy
from repro.detection.config import DetectorConfig
from repro.detection.durability import RecoverySummary
from repro.detection.engine import MonitorLike, RegisteredMonitor
from repro.detection.reports import FaultReport
from repro.detection.statistics import FaultStatistics
from repro.kernel.syscalls import Delay
from repro.observability.export import write_metrics_json
from repro.observability.registry import MetricsRegistry

__all__ = ["DetectionSession"]


class DetectionSession:
    """The detection stack — engine/cluster, supervision, durability — as
    one object with one constructor.

    Parameters
    ----------
    kernel:
        The substrate the monitors live on.
    monitors:
        Monitors to register up front (more can join via :meth:`register`).
    config:
        :class:`DetectorConfig` (default: ``DetectorConfig.preset("paper")``).
    shards:
        Number of engine shards (default ``config.shards``); capture
        schedules are staggered across them per ``config.stagger``.
    durable_dir:
        When set, every shard gets a WAL + snapshot + report journal under
        ``durable_dir/shard-<k>`` and :meth:`recover` restores a restarted
        session from them.
    policy:
        Optional :class:`~repro.detection.cluster.ShardPolicy` override
        (default: built from ``config.shard_policy``).
    supervised:
        Pace checkpoints through each shard's
        :class:`~repro.detection.supervision.CheckpointSupervisor`
        (retry/backoff/stall watchdog) instead of raw checkpoints.
    evaluation:
        Phase-2 evaluation plane — ``"threads"``, ``"processes"`` or
        ``"inline"`` (default ``config.evaluation``, else the kernel's
        auto choice; see :class:`DetectionCluster`).
    """

    def __init__(
        self,
        kernel,
        monitors: Sequence[MonitorLike] = (),
        *,
        config: Optional[DetectorConfig] = None,
        shards: Optional[int] = None,
        durable_dir: Optional[Union[str, Path]] = None,
        policy: Optional[ShardPolicy] = None,
        supervised: bool = True,
        fsync: str = "interval",
        evaluation: Optional[str] = None,
        metrics_path: Optional[Union[str, Path]] = None,
        metrics_every: Optional[float] = None,
    ) -> None:
        if metrics_every is not None and metrics_every <= 0:
            raise ValueError(
                f"metrics_every must be positive, got {metrics_every}"
            )
        if metrics_every is not None and metrics_path is None:
            raise ValueError("metrics_every requires metrics_path")
        #: Opt-in metrics dump target: written on :meth:`stop`, and every
        #: ``metrics_every`` kernel seconds while the session runs.
        self.metrics_path = Path(metrics_path) if metrics_path else None
        self.metrics_every = metrics_every
        self.config = config or DetectorConfig()
        self.cluster = DetectionCluster(
            kernel,
            self.config,
            shards=shards,
            policy=policy,
            durable_root=durable_dir,
            fsync=fsync,
            evaluation=evaluation,
        )
        self.supervised = supervised
        self._pids: list = []
        for monitor in monitors:
            self.register(monitor)

    # ------------------------------------------------------------------ fleet

    @property
    def kernel(self):
        return self.cluster.kernel

    @property
    def durable(self) -> bool:
        return self.cluster.durable_root is not None

    def register(
        self,
        target: MonitorLike,
        config: Optional[DetectorConfig] = None,
        *,
        label: Optional[str] = None,
        group: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> RegisteredMonitor:
        """Add a monitor (see :meth:`DetectionCluster.register`)."""
        return self.cluster.register(
            target, config, label=label, group=group, shard=shard
        )

    def unregister(self, target) -> None:
        self.cluster.unregister(target)

    # -------------------------------------------------------------- lifecycle

    def start(self, *, rounds: Optional[int] = None) -> list:
        """Spawn the per-shard pacing processes; returns their pids.

        For a durable session this first persists the post-assembly
        baseline snapshots, so a crash before the first checkpoint still
        recovers to a consistent (empty-window) state.
        """
        if self.started:
            raise RuntimeError("session already started")
        if self.durable:
            self.cluster.baseline()
        self._pids = self.cluster.spawn_processes(
            rounds=rounds, supervised=self.supervised
        )
        if self.metrics_path is not None and self.metrics_every is not None:
            self._pids.append(
                self.kernel.spawn(
                    self._metrics_dumper(), name="metrics-dumper"
                )
            )
        return list(self._pids)

    def _metrics_dumper(self):
        while not self.stopped:
            yield Delay(self.metrics_every)
            if self.stopped:
                return
            self.dump_metrics()

    @property
    def started(self) -> bool:
        return bool(self._pids)

    def checkpoint(self) -> list[FaultReport]:
        """One manual checkpoint across every shard (evaluations awaited)."""
        return self.cluster.checkpoint()

    def drain(self) -> None:
        """Wait for offloaded phase-2 evaluations (thread kernel)."""
        self.cluster.drain()

    def stop(self) -> None:
        """Stop all shards, drain the worker pool, flush durable state.

        When the session was built with ``metrics_path``, the final
        metrics snapshot is exported there as JSON.
        """
        self.cluster.stop()
        if self.metrics_path is not None:
            self.dump_metrics()

    @property
    def stopped(self) -> bool:
        return self.cluster.stopped

    # ------------------------------------------------------------- durability

    def recover(self) -> list[RecoverySummary]:
        """Restore a restarted durable session (see
        :meth:`DetectionCluster.recover`): rebuild the same fleet first,
        then call this once before :meth:`start`."""
        return self.cluster.recover()

    # -------------------------------------------------------------- reporting
    # The session's own surface mirrors the engine's; everything else
    # (counters, shard_stats, quarantine_report, …) passes through.

    @property
    def reports(self) -> list[FaultReport]:
        return self.cluster.reports

    def reports_by_monitor(self) -> dict[str, list[FaultReport]]:
        return self.cluster.reports_by_monitor()

    def reports_for_rule(self, rule) -> list[FaultReport]:
        return self.cluster.reports_for_rule(rule)

    def implicated_faults(self) -> frozenset:
        return self.cluster.implicated_faults()

    @property
    def clean(self) -> bool:
        return self.cluster.clean

    @property
    def confirmed_clean(self) -> bool:
        return self.cluster.confirmed_clean

    def statistics(self) -> FaultStatistics:
        """Frequency statistics over the merged report stream."""
        return FaultStatistics.from_engine(self.cluster)

    def metrics(self) -> MetricsRegistry:
        """A fresh registry snapshot of the whole session (see
        :meth:`DetectionCluster.metrics`) — the surface ``repro metrics``,
        the exporters, and the gate runner consume."""
        return self.cluster.metrics()

    def dump_metrics(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Export the current metrics snapshot as JSON to ``path``
        (default: the session's ``metrics_path``)."""
        target = Path(path) if path is not None else self.metrics_path
        if target is None:
            raise ValueError(
                "no dump target: pass path= or build the session "
                "with metrics_path="
            )
        write_metrics_json(str(target), self.metrics())
        return target

    def __getattr__(self, name: str):
        # Everything not overridden falls through to the cluster, so the
        # session is a drop-in for code written against engine surfaces.
        return getattr(self.cluster, name)

    def __repr__(self) -> str:
        return (
            f"DetectionSession(shards={self.cluster.shard_count}, "
            f"monitors={len(self.cluster.entries)}, "
            f"supervised={self.supervised}, durable={self.durable}, "
            f"started={self.started}, reports={len(self.reports)})"
        )
