"""Algorithm-2: Consistency-Of-Resource-States Checking (Section 3.3.2).

Applies to communication-coordinator monitors.  The checker maintains the
counts of successful ``Send`` and ``Receive`` procedure calls (``s`` and
``r`` — a call is *successful* when its Signal-Exit is recorded) and the
``Resource-No`` shadow of ``R#`` (free buffer slots), and enforces the four
integrity constraints of Section 2.1:

* per event: ``0 <= r <= s <= r + Rmax`` on the cumulative counters
  (ST-Rule 7a),
* ``Wait(Send, full)`` only when Resource-No = 0 (ST-Rule 7c),
* ``Wait(Receive, empty)`` only when Resource-No = Rmax (ST-Rule 7d),
* at the checkpoint: ``R#(s_t) = R#(s_p) + r - s`` over the window's
  counters (ST-Rule 7b).

The checker is stateful across windows because the invariant in 7a is
cumulative over the whole execution, exactly as FD-Rule 6(a) states it.
"""

from __future__ import annotations

from typing import Optional

from repro.detection.reports import FaultReport
from repro.detection.rules import STRule
from repro.history.database import Segment
from repro.history.events import EventKind, SchedulingEvent
from repro.history.states import SchedulingState
from repro.monitor.declaration import MonitorDeclaration
from repro.monitor.semantics import Discipline

__all__ = ["ResourceStateChecker", "completion_event_kind"]

#: Procedure/condition names the paper's constraints are phrased over.
SEND = "Send"
RECEIVE = "Receive"
COND_FULL = "full"
COND_EMPTY = "empty"


def completion_event_kind(discipline: Discipline) -> EventKind:
    """Which event marks a procedure call as *successful* (completed).

    Under the paper's signal-exit discipline an operation completes at its
    Signal-Exit.  Under the extended non-exiting disciplines the operation
    has already taken effect when the body *signals* (the subsequent plain
    exit is bookkeeping), so the Signal event is the completion marker —
    otherwise a Hoare hand-off would let the receiver's exit be recorded
    before the sender's and transiently break ``r <= s``.
    """
    if discipline is Discipline.SIGNAL_EXIT:
        return EventKind.SIGNAL_EXIT
    return EventKind.SIGNAL


class ResourceStateChecker:
    """Stateful Algorithm-2 instance for one monitor."""

    def __init__(self, declaration: MonitorDeclaration) -> None:
        if declaration.rmax is None:
            raise ValueError(
                f"Algorithm-2 requires rmax on monitor {declaration.name!r}"
            )
        self._declaration = declaration
        self._rmax = declaration.rmax
        #: Cumulative successful call counts over the whole execution.
        self.sends = 0
        self.receives = 0
        #: Times the cumulative counters were re-based after a lossy window.
        self.resyncs = 0

    @property
    def applicable(self) -> bool:
        """Algorithm-2 is phrased over Send/Receive; other coordinator
        monitors (different procedure names) fall back to Algorithm-1 only."""
        return SEND in self._declaration.procedures and (
            RECEIVE in self._declaration.procedures
        )

    def check_window(self, segment: Segment) -> list[FaultReport]:
        """Run both steps of Algorithm-2 over one checking window."""
        reports: list[FaultReport] = []
        name = self._declaration.name
        window_start = segment.previous.time
        resource_no = segment.previous.resource_count
        if resource_no is None:
            raise ValueError(
                f"monitor {name!r} snapshots carry no R# — attach a "
                "resource probe (override resource_count())"
            )
        window_sends = 0
        window_receives = 0

        def report(rule: STRule, message: str, time: float, pid=None, seq=None):
            reports.append(
                FaultReport(
                    rule=rule,
                    message=message,
                    monitor=name,
                    detected_at=time,
                    pids=(pid,) if pid is not None else (),
                    event_seq=seq,
                    window_start=window_start,
                )
            )

        completion = completion_event_kind(self._declaration.discipline)
        for event in segment.events:
            if event.kind is completion:
                if event.pname == SEND:
                    self.sends += 1
                    window_sends += 1
                    resource_no -= 1
                elif event.pname == RECEIVE:
                    self.receives += 1
                    window_receives += 1
                    resource_no += 1
                else:
                    continue
                if not 0 <= self.receives <= self.sends <= self.receives + self._rmax:
                    report(
                        STRule.RESOURCE_INVARIANT,
                        f"integrity violated after {event.pname} by "
                        f"P{event.pid}: r={self.receives}, s={self.sends}, "
                        f"Rmax={self._rmax} (need 0 <= r <= s <= r + Rmax)",
                        event.time,
                        pid=event.pid,
                        seq=event.seq,
                    )
            elif event.kind is EventKind.WAIT:
                if event.pname == SEND and event.cond == COND_FULL:
                    if resource_no != 0:
                        report(
                            STRule.SEND_WAIT_CONSISTENT,
                            f"P{event.pid} was delayed on Send although the "
                            f"buffer is not full (Resource-No={resource_no})",
                            event.time,
                            pid=event.pid,
                            seq=event.seq,
                        )
                elif event.pname == RECEIVE and event.cond == COND_EMPTY:
                    if resource_no != self._rmax:
                        report(
                            STRule.RECEIVE_WAIT_CONSISTENT,
                            f"P{event.pid} was delayed on Receive although "
                            f"the buffer is not empty "
                            f"(Resource-No={resource_no}, Rmax={self._rmax})",
                            event.time,
                            pid=event.pid,
                            seq=event.seq,
                        )

        expected = (
            segment.previous.resource_count + window_receives - window_sends
        )
        actual = segment.current.resource_count
        if actual is None:
            raise ValueError(
                f"monitor {name!r} current snapshot carries no R#"
            )
        if actual != expected:
            report(
                STRule.RESOURCE_DELTA_MATCHES,
                f"R# at checkpoint is {actual} but the event sequence "
                f"implies {segment.previous.resource_count} + "
                f"r({window_receives}) - s({window_sends}) = {expected}",
                segment.current.time,
            )
        return reports

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the cumulative counters.

        Algorithm-2 *is* an incremental state object — the counters carry
        across windows by design (FD-Rule 6(a) is cumulative) — so its
        durable state is just the counters plus the resync count.
        """
        return {
            "sends": self.sends,
            "receives": self.receives,
            "resyncs": self.resyncs,
        }

    def restore_state(self, record: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.sends = record.get("sends", 0)
        self.receives = record.get("receives", 0)
        self.resyncs = record.get("resyncs", 0)

    def resync(self, state: SchedulingState) -> None:
        """Re-base the cumulative counters on a state snapshot.

        The 7a invariant is cumulative, so a window whose sink dropped
        Send/Receive completions leaves ``sends``/``receives`` permanently
        out of step with the monitor's actual occupancy — every *later*,
        perfectly complete window would then report ST-7a on a healthy
        monitor.  The snapshot's Resource-No pins the counters' difference
        (occupancy = ``Rmax - R#``), which is all the invariant consumes,
        so after a lossy window the caller re-bases here and the checker
        is trustworthy again from the next complete window on.
        """
        resource_no = state.resource_count
        if resource_no is None:
            return
        occupancy = min(self._rmax, max(0, self._rmax - resource_no))
        self.sends = self.receives + occupancy
        self.resyncs += 1
