"""Run-time concurrency-control fault detection (paper Sections 2.2–3.3).

Contents:

* :mod:`repro.detection.faults` — the taxonomy: all 21 concurrency-control
  fault classes at the implementation / monitor-procedure / user-process
  levels.
* :mod:`repro.detection.rules` — identifiers for FD-Rules 1–7 (full-trace
  predicates, Section 3.2) and ST-Rules 1–8 (state-transition rules,
  Section 3.3.2), with the mapping from each rule to the fault classes its
  violation implies.
* :mod:`repro.detection.replay` — the checking-list replay machine
  (Enter-0-List, Wait-Cond-Lists, Running-List, Resource-No of
  Section 3.3.1) shared by the window checkers and the offline checker.
* :mod:`repro.detection.algorithm1/2/3` — the paper's three detection
  algorithms, operating on one checkpoint window each.
* :mod:`repro.detection.fd_rules` — the offline FD-rule checker over a
  complete retained trace (ground truth for the ablations and property
  tests).
* :mod:`repro.detection.engine` — the shared
  :class:`~repro.detection.engine.DetectionEngine`: many monitors, one
  batched checkpoint per interval inside a single atomic section, with
  per-monitor report streams and engine-level aggregation.
* :mod:`repro.detection.detector` — the single-monitor
  :class:`~repro.detection.detector.FaultDetector` façade over the engine:
  periodic checkpointing, real-time order checking for allocator monitors,
  report stream.
* :mod:`repro.detection.supervision` — the detector's own fault tolerance:
  per-monitor :class:`~repro.detection.supervision.CircuitBreaker`
  quarantine, the :class:`~repro.detection.supervision.CheckpointSupervisor`
  (checkpoint budget, retry with backoff, stall watchdog, snapshot/restore),
  and :func:`~repro.detection.supervision.supervisor_process`.
* :mod:`repro.detection.durability` — crash durability: the
  :class:`~repro.detection.durability.DurableEngine` wrapper persisting
  WAL-backed histories, atomic state snapshots and an exactly-once report
  journal, with :meth:`~repro.detection.durability.DurableEngine.recover`
  rebuilding a restarted detector to the crashed one's fault set.
* :mod:`repro.detection.cluster` — horizontal scale-out: the
  :class:`~repro.detection.cluster.DetectionCluster` partitioning the
  fleet across N engine shards (pluggable
  :class:`~repro.detection.cluster.ShardPolicy`) with staggered capture
  schedules and, on the thread kernel, pooled phase-2 evaluation.
* :mod:`repro.detection.session` — the one public front door:
  :class:`~repro.detection.session.DetectionSession` wiring
  engine/cluster, supervision and durability behind a single constructor.
"""

from repro.detection.cluster import (
    DetectionCluster,
    LabelSharding,
    RateBalancedSharding,
    RoundRobinSharding,
    ShardPolicy,
    make_shard_policy,
    shard_process,
)

from repro.detection.algorithm1 import check_general_concurrency_control
from repro.detection.algorithm2 import ResourceStateChecker
from repro.detection.algorithm3 import CallingOrderChecker
from repro.detection.procpool import (
    EvaluationPool,
    ProcessEvaluationPool,
    ThreadEvaluationPool,
)
from repro.detection.detector import DetectorConfig, FaultDetector, detector_process
from repro.detection.durability import (
    DurableEngine,
    RecoverySummary,
    ReportJournal,
    SnapshotStore,
    report_from_dict,
    report_key,
    report_to_dict,
)
from repro.detection.engine import (
    DetectionEngine,
    RegisteredMonitor,
    engine_process,
    evaluate_capture,
)
from repro.detection.faults import FaultClass, FaultLevel
from repro.detection.fd_rules import check_full_trace
from repro.detection.replay import ReplayMachine
from repro.detection.reports import Confidence, FaultReport
from repro.detection.rules import DROP_TOLERANT, FDRule, STRule, is_drop_tolerant
from repro.detection.session import DetectionSession
from repro.detection.statistics import FaultStatistics
from repro.detection.supervision import (
    BreakerState,
    CheckpointSupervisor,
    CircuitBreaker,
    QuarantineRecord,
    SupervisorEvent,
    supervisor_process,
)
from repro.detection.waitfor import (
    DeadlockDetector,
    ResourceWaitEdge,
    deadlock_process,
)

__all__ = [
    "FaultClass",
    "FaultLevel",
    "FDRule",
    "STRule",
    "DROP_TOLERANT",
    "is_drop_tolerant",
    "Confidence",
    "FaultReport",
    "ReplayMachine",
    "check_general_concurrency_control",
    "ResourceStateChecker",
    "CallingOrderChecker",
    "check_full_trace",
    "FaultDetector",
    "DetectorConfig",
    "detector_process",
    "DetectionEngine",
    "RegisteredMonitor",
    "engine_process",
    "evaluate_capture",
    "EvaluationPool",
    "ThreadEvaluationPool",
    "ProcessEvaluationPool",
    "DetectionCluster",
    "DetectionSession",
    "ShardPolicy",
    "RoundRobinSharding",
    "RateBalancedSharding",
    "LabelSharding",
    "make_shard_policy",
    "shard_process",
    "FaultStatistics",
    "DeadlockDetector",
    "ResourceWaitEdge",
    "deadlock_process",
    "BreakerState",
    "CircuitBreaker",
    "QuarantineRecord",
    "SupervisorEvent",
    "CheckpointSupervisor",
    "supervisor_process",
    "DurableEngine",
    "RecoverySummary",
    "ReportJournal",
    "SnapshotStore",
    "report_key",
    "report_to_dict",
    "report_from_dict",
]
