"""Cross-monitor deadlock detection via a wait-for graph (extension).

Section 2.1 notes that "when more than one resource are to be shared
and/or if a user needs to access more than one resource, deadlock
prevention or avoidance in resource allocation needs to be implemented."
Algorithm-3's Request-List sees only one allocator at a time, so a
*circular* wait spanning several allocator monitors (the greedy dining
philosophers) surfaces there only as eventual ``Tlimit`` timeouts.

``DeadlockDetector`` closes that gap: it assembles the per-allocator
Request-Lists and state snapshots into one wait-for graph —

* a pid *holds* a monitor's resource when it appears in the Request-List
  and is not currently parked in any of that monitor's queues,
* a pid *waits for* a monitor's resource when it is in the Request-List
  and parked in one of its queues (entry queue or condition queue),
* edges run from each waiter to every holder of the awaited resource —

and reports every cycle (found with networkx) as a ``ST-WF`` violation
naming the pids and monitors involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import networkx as nx

from repro.detection.detector import FaultDetector
from repro.detection.reports import FaultReport
from repro.detection.rules import STRule
from repro.ids import Pid

__all__ = ["ResourceWaitEdge", "DeadlockDetector"]


@dataclass(frozen=True)
class ResourceWaitEdge:
    """One waiter-to-holder dependency used to build the graph."""

    waiter: Pid
    holder: Pid
    monitor: str


class DeadlockDetector:
    """Detects circular waits across a set of allocator monitors.

    Construct it over the :class:`~repro.detection.detector.FaultDetector`
    instances of the participating allocators (each must have Algorithm-3
    enabled, which is automatic for resource-allocator monitors) and call
    :meth:`check` periodically — or wire :meth:`process` into a kernel
    like ``detector_process``.
    """

    def __init__(self, detectors: Iterable[FaultDetector]) -> None:
        self._detectors = list(detectors)
        for detector in self._detectors:
            if detector.algorithm3 is None:
                raise ValueError(
                    f"monitor {detector.monitor.name!r} has no calling-order "
                    "checker; wait-for analysis needs its Request-List"
                )
        self.reports: list[FaultReport] = []
        #: Cycles found so far, as tuples of pids (for tests/diagnostics).
        self.cycles: list[tuple[Pid, ...]] = []

    # ------------------------------------------------------------ graph build

    def edges(self) -> list[ResourceWaitEdge]:
        """Current waiter -> holder dependencies across all monitors."""
        edges: list[ResourceWaitEdge] = []
        for detector in self._detectors:
            checker = detector.algorithm3
            assert checker is not None
            snapshot = detector.monitor.snapshot()
            parked = snapshot.all_waiting_pids() | set(snapshot.running_pids)
            requesters = checker.holders()
            holders = [pid for pid in requesters if pid not in parked]
            waiters = [pid for pid in requesters if pid in parked]
            for waiter in waiters:
                for holder in holders:
                    if holder != waiter:
                        edges.append(
                            ResourceWaitEdge(
                                waiter=waiter,
                                holder=holder,
                                monitor=detector.monitor.name,
                            )
                        )
        return edges

    def graph(self) -> "nx.DiGraph":
        """The wait-for graph as a networkx digraph (nodes are pids)."""
        graph = nx.DiGraph()
        for edge in self.edges():
            graph.add_edge(edge.waiter, edge.holder, monitor=edge.monitor)
        return graph

    # ---------------------------------------------------------------- checks

    def check(self, now: Optional[float] = None) -> list[FaultReport]:
        """Find circular waits; returns (and retains) one report per cycle."""
        graph = self.graph()
        if now is None:
            now = max(
                (d.monitor.kernel.now() for d in self._detectors), default=0.0
            )
        new_reports: list[FaultReport] = []
        for cycle in nx.simple_cycles(graph):
            ordered = tuple(sorted(cycle))
            if ordered in self.cycles:
                continue  # already reported
            self.cycles.append(ordered)
            monitors = sorted(
                {
                    data["monitor"]
                    for u, v, data in graph.edges(data=True)
                    if u in cycle and v in cycle
                }
            )
            chain = " -> ".join(f"P{pid}" for pid in cycle + [cycle[0]])
            new_reports.append(
                FaultReport(
                    rule=STRule.WAIT_FOR_CYCLE,
                    message=(
                        f"circular wait {chain} across monitors "
                        f"{', '.join(monitors)}: each process holds a "
                        "resource the next one is blocked on"
                    ),
                    monitor=",".join(monitors),
                    detected_at=now,
                    pids=ordered,
                )
            )
        self.reports.extend(new_reports)
        return new_reports

    @property
    def clean(self) -> bool:
        return not self.reports


def deadlock_process(detector: DeadlockDetector, interval: float = 1.0):
    """Kernel process body running the wait-for check every ``interval``.

    Spawn alongside the workload, like
    :func:`~repro.detection.detector.detector_process`::

        deadlocks = DeadlockDetector([det_a, det_b])
        kernel.spawn(deadlock_process(deadlocks, interval=1.0))
    """
    from repro.kernel.syscalls import Delay

    while True:
        yield Delay(interval)
        detector.check()
