"""Fault frequency statistics (paper Section 2, third purpose).

The paper motivates the taxonomy partly as instrumentation: "it provides
information about the frequency of each fault.  For example, if a
particular kind of fault appears frequently we could use a variety of
methods to reduce the incidence of it."  ``FaultStatistics`` aggregates a
report stream into exactly that information: counts per rule, per
implicated fault class, per monitor, per taxonomy level, and per
confidence (CONFIRMED findings vs DEGRADED ones from lossy checkpoint
windows), with a text rendering for operator consumption.
"""

from __future__ import annotations

import warnings
from collections import Counter
from typing import Iterable, Optional

from repro._tables import render_table
from repro.detection.detector import FaultDetector
from repro.detection.faults import FaultClass, FaultLevel
from repro.detection.reports import Confidence, FaultReport
from repro.observability.registry import MetricsRegistry

__all__ = ["FaultStatistics"]

# Warn-once bookkeeping for the deprecated attribute surface (mirrors the
# FaultDetector shim): each name warns on first touch, then goes quiet.
_warned: set[str] = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


#: Legacy counters key -> registry counter family (summed across labels).
_REGISTRY_COUNTERS = {
    "checkpoints_run": "repro_engine_checkpoints_total",
    "atomic_sections": "repro_engine_atomic_sections_total",
    "captures_taken": "repro_engine_captures_total",
    "evaluations_run": "repro_engine_evaluations_total",
    "intervals_skipped": "repro_engine_intervals_skipped_total",
    "incremental_hits": "repro_engine_incremental_hits_total",
    "incremental_rebases": "repro_engine_incremental_rebases_total",
    "incremental_fastpaths": "repro_engine_incremental_fastpaths_total",
    "staged_events": "repro_engine_staged_events_total",
    "staged_flushes": "repro_engine_staged_flushes_total",
}

#: Durability keys, present only when the source exported WAL families.
_REGISTRY_DURABILITY = {
    "wal_bytes_written": "repro_wal_bytes_written_total",
    "wal_fsyncs": "repro_wal_fsyncs_total",
    "snapshots_written": "repro_snapshots_written_total",
    "recoveries": "repro_recoveries_total",
    "reports_deduplicated": "repro_reports_deduplicated_total",
}


def _counters_from_registry(registry: MetricsRegistry) -> dict[str, float]:
    """Flatten a ``metrics()`` snapshot into the legacy counters mapping."""
    counters = {
        key: registry.value(metric) if registry.get(metric) else 0.0
        for key, metric in _REGISTRY_COUNTERS.items()
    }
    if registry.get("repro_phase_latency_seconds"):
        counters["worldstop_seconds"] = registry.histogram_sum(
            "repro_phase_latency_seconds", {"phase": "capture"}
        )
        counters["evaluate_seconds"] = registry.histogram_sum(
            "repro_phase_latency_seconds", {"phase": "evaluate"}
        )
    else:
        counters["worldstop_seconds"] = 0.0
        counters["evaluate_seconds"] = 0.0
    if registry.get("repro_wal_bytes_written_total"):
        for key, metric in _REGISTRY_DURABILITY.items():
            counters[key] = (
                registry.value(metric) if registry.get(metric) else 0.0
            )
    return counters


class FaultStatistics:
    """Aggregates fault reports into frequency tables."""

    def __init__(self) -> None:
        self.total_reports = 0
        self.by_rule: Counter[str] = Counter()
        self.by_fault: Counter[FaultClass] = Counter()
        self.by_monitor: Counter[str] = Counter()
        self.by_level: Counter[FaultLevel] = Counter()
        self.by_confidence: Counter[Confidence] = Counter()
        #: Per fault class: how many implications were confirmed vs degraded.
        self.fault_confidence: dict[FaultClass, Counter[Confidence]] = {}
        #: Two-phase pipeline counters of the source engine (when built via
        #: :meth:`from_engine`, flattened from its ``metrics()`` registry):
        #: checkpoints_run, atomic_sections, captures_taken,
        #: evaluations_run, intervals_skipped, plus the worldstop/evaluate
        #: wall-clock split.  Read via :attr:`counters`.
        self._counters: dict[str, float] = {}
        self._first_at: Optional[float] = None
        self._last_at: Optional[float] = None

    @property
    def counters(self) -> dict[str, float]:
        """Pipeline/durability counters of the source engine (flattened
        from its ``metrics()`` registry snapshot by :meth:`from_engine`;
        empty for statistics built from raw report streams)."""
        return self._counters

    @property
    def engine_counters(self) -> dict[str, float]:
        """Deprecated alias of :attr:`counters` (warns once)."""
        _warn_deprecated(
            "FaultStatistics.engine_counters",
            "FaultStatistics.counters (or the source's metrics() registry)",
        )
        return self._counters

    @engine_counters.setter
    def engine_counters(self, value: dict[str, float]) -> None:
        _warn_deprecated(
            "FaultStatistics.engine_counters",
            "FaultStatistics.counters (or the source's metrics() registry)",
        )
        self._counters = dict(value)

    # ---------------------------------------------------------------- intake

    def record(self, report: FaultReport) -> None:
        """Fold one report into the counters.

        A report increments every fault class it implicates — frequencies
        answer "how often was this class suspected", mirroring how an
        operator would triage the stream.
        """
        self.total_reports += 1
        self.by_rule[report.rule_id] += 1
        self.by_monitor[report.monitor] += 1
        self.by_confidence[report.confidence] += 1
        for fault in report.suspected_faults:
            self.by_fault[fault] += 1
            self.by_level[fault.level] += 1
            self.fault_confidence.setdefault(fault, Counter())[
                report.confidence
            ] += 1
        if self._first_at is None or report.detected_at < self._first_at:
            self._first_at = report.detected_at
        if self._last_at is None or report.detected_at > self._last_at:
            self._last_at = report.detected_at

    def record_all(self, reports: Iterable[FaultReport]) -> None:
        for report in reports:
            self.record(report)

    @classmethod
    def from_detector(cls, detector: FaultDetector) -> "FaultStatistics":
        stats = cls()
        stats.record_all(detector.reports)
        return stats

    @classmethod
    def from_detectors(
        cls, detectors: Iterable[FaultDetector]
    ) -> "FaultStatistics":
        stats = cls()
        for detector in detectors:
            stats.record_all(detector.reports)
        return stats

    @classmethod
    def from_engine(cls, engine) -> "FaultStatistics":
        """Aggregate a :class:`DetectionEngine`'s reports and counters.

        Besides the report stream this picks up the engine's two-phase
        pipeline counters — flattened from the same ``metrics()``
        registry snapshot the exporters and gate runner read — so one
        object carries both "what was found" and "what the finding cost".
        Engines, clusters, durable wrappers and sessions all expose
        ``metrics()``; engine-shaped objects without it fall back to
        attribute reads.
        """
        stats = cls()
        stats.record_all(engine.reports)
        metrics = getattr(engine, "metrics", None)
        if callable(metrics):
            stats._counters = _counters_from_registry(metrics())
            return stats
        stats._counters = {
            "checkpoints_run": engine.checkpoints_run,
            "atomic_sections": engine.atomic_sections,
            "captures_taken": engine.captures_taken,
            "evaluations_run": engine.evaluations_run,
            "intervals_skipped": engine.intervals_skipped,
            "worldstop_seconds": engine.worldstop_seconds,
            "evaluate_seconds": engine.evaluate_seconds,
            # Hot-path accounting: carried checking lists and staged record
            # batches.  getattr defaults keep older engine-shaped objects
            # (plain detectors in tests) working.
            "incremental_hits": getattr(engine, "incremental_hits", 0),
            "incremental_rebases": getattr(engine, "incremental_rebases", 0),
            "incremental_fastpaths": getattr(
                engine, "incremental_fastpaths", 0
            ),
            "staged_events": getattr(engine, "staged_events", 0),
            "staged_flushes": getattr(engine, "staged_flushes", 0),
        }
        # Anything else wearing durability counters additionally reports
        # its WAL/snapshot/recovery accounting.
        durability = getattr(engine, "durability_counters", None)
        if durability:
            stats._counters.update(durability)
        return stats

    # --------------------------------------------------------------- queries

    def most_frequent_fault(self) -> Optional[FaultClass]:
        """The fault class implicated most often (None when no reports)."""
        if not self.by_fault:
            return None
        return self.by_fault.most_common(1)[0][0]

    def frequency(self, fault: FaultClass) -> int:
        return self.by_fault.get(fault, 0)

    def confirmed(self, fault: FaultClass) -> int:
        """Implications of ``fault`` from complete checkpoint windows."""
        return self.fault_confidence.get(fault, Counter())[
            Confidence.CONFIRMED
        ]

    def degraded(self, fault: FaultClass) -> int:
        """Implications of ``fault`` from lossy (degraded-mode) windows."""
        return self.fault_confidence.get(fault, Counter())[
            Confidence.DEGRADED
        ]

    @property
    def window(self) -> tuple[Optional[float], Optional[float]]:
        """(first, last) report timestamps."""
        return (self._first_at, self._last_at)

    # -------------------------------------------------------------- rendering

    def render(self, top: int = 10) -> str:
        """Multi-table text rendering (rules, fault classes, monitors)."""
        if not self.total_reports:
            return "no fault reports recorded"
        confirmed = self.by_confidence[Confidence.CONFIRMED]
        degraded = self.by_confidence[Confidence.DEGRADED]
        parts = [
            f"{self.total_reports} reports ({confirmed} confirmed, "
            f"{degraded} degraded) between "
            f"t={self._first_at:g} and t={self._last_at:g}"
        ]
        parts.append(
            render_table(
                ["rule", "reports"],
                self.by_rule.most_common(top),
                title="\nby rule",
            )
        )
        parts.append(
            render_table(
                ["fault class", "level", "implicated", "confirmed", "degraded"],
                [
                    (
                        fault.label,
                        fault.level.value,
                        count,
                        self.confirmed(fault),
                        self.degraded(fault),
                    )
                    for fault, count in self.by_fault.most_common(top)
                ],
                title="\nby implicated fault class",
            )
        )
        parts.append(
            render_table(
                ["monitor", "reports"],
                self.by_monitor.most_common(top),
                title="\nby monitor",
            )
        )
        if self._counters:
            counters = self._counters
            parts.append(
                "\nengine: "
                f"{counters['checkpoints_run']:g} checkpoints, "
                f"{counters['atomic_sections']:g} atomic sections, "
                f"{counters['captures_taken']:g} captures, "
                f"{counters['evaluations_run']:g} evaluations, "
                f"{counters['intervals_skipped']:g} skipped; "
                f"world-stop {counters['worldstop_seconds']:.4f}s, "
                f"evaluate {counters['evaluate_seconds']:.4f}s"
            )
            if counters.get("incremental_hits") or counters.get(
                "staged_flushes"
            ):
                parts.append(
                    "hot path: "
                    f"{counters.get('incremental_hits', 0):g} carried windows "
                    f"({counters.get('incremental_fastpaths', 0):g} fast-path), "
                    f"{counters.get('incremental_rebases', 0):g} rebases; "
                    f"{counters.get('staged_events', 0):g} events staged over "
                    f"{counters.get('staged_flushes', 0):g} flushes"
                )
            if "wal_bytes_written" in counters:
                parts.append(
                    "durability: "
                    f"{counters['wal_bytes_written']:g} WAL bytes, "
                    f"{counters['wal_fsyncs']:g} fsyncs, "
                    f"{counters['snapshots_written']:g} snapshots, "
                    f"{counters['recoveries']:g} recoveries, "
                    f"{counters['reports_deduplicated']:g} deduplicated"
                )
        return "\n".join(parts)

    def __repr__(self) -> str:
        return (
            f"FaultStatistics(reports={self.total_reports}, "
            f"rules={len(self.by_rule)}, faults={len(self.by_fault)})"
        )
