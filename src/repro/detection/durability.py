"""Crash-durable detection: snapshots, a report journal, and recovery.

The paper assumes the fault detection routine outlives the computation it
watches; everything in our pipeline — open checking windows, Algorithm-2
counters, the Algorithm-3 Request-List, breaker state, pending reports —
lives in process memory and dies with the detector.  This module closes
that gap with three durable artefacts under one root directory:

* ``wal/<label>/`` — one :class:`~repro.history.wal.WriteAheadLog` per
  registered monitor (attached by :meth:`DurableEngine.register`), so the
  Section 3.1 history database itself survives,
* ``snapshots/`` — numbered, checksummed engine-state snapshots written
  atomically (temp file, fsync, rename) after every checkpoint's phase-2
  evaluation; a corrupt latest snapshot falls back to the previous one,
* ``reports.jsonl`` — the **report journal**: every fault report is
  journaled *before* it is surfaced, keyed by :func:`report_key`, giving
  exactly-once delivery across restarts — a recovered detector re-derives
  the reports of the interrupted window and the journal deduplicates the
  re-derivations.

Snapshots are written *after* evaluation and journaling deliberately: a
crash anywhere inside a checkpoint then recovers from the previous
snapshot, replays the WAL past its offsets, re-runs the interrupted
checkpoint, and the journal absorbs every re-derived report.  A snapshot
taken between capture and evaluation would instead advance the sink's
base state past a window whose reports were never produced — losing them.

:meth:`DurableEngine.recover` is the restart path: load the journal, load
the latest valid snapshot (building on
:meth:`~repro.detection.supervision.CheckpointSupervisor.restore_state`,
which rejects a mismatched monitor fleet), replay WAL events past the
snapshot's per-sink offsets — re-driving the real-time Algorithm-3 tap —
and surface only reports the journal has not seen.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import IO, Callable, Optional, Union

from repro.detection.config import DetectorConfig
from repro.detection.engine import DetectionEngine, RegisteredMonitor

# The report codec lives with the report type; re-exported here because the
# journal format is this module's contract (import sites predate the move).
from repro.detection.reports import (
    FaultReport,
    report_from_dict,
    report_to_dict,
)
from repro.detection.supervision import CheckpointSupervisor
from repro.errors import RecoveryError
from repro.history.wal import WriteAheadLog
from repro.observability.registry import Histogram, MetricsRegistry

__all__ = [
    "report_key",
    "report_to_dict",
    "report_from_dict",
    "ReportJournal",
    "SnapshotStore",
    "RecoverySummary",
    "DurableEngine",
]


# ----------------------------------------------------------------- reports


def report_key(report: FaultReport) -> str:
    """Stable identity of one fault report across process restarts.

    Everything that makes the finding *the same finding* — rule, monitor,
    implicated pids, triggering event, window and timestamps — and nothing
    presentation-only (the message).  Floats are keyed by ``repr`` so the
    key survives JSON round-trips bit-for-bit.
    """
    return "|".join(
        (
            report.rule_id,
            report.monitor,
            repr(report.detected_at),
            ",".join(str(pid) for pid in report.pids),
            repr(report.event_seq),
            repr(report.window_start),
            report.confidence.value,
        )
    )


class ReportJournal:
    """Append-only JSONL journal giving exactly-once report delivery.

    ``admit`` is the single gate every surfaced report passes through:
    a report whose :func:`report_key` the journal already holds is
    rejected (it was delivered by a previous incarnation of the process),
    otherwise it is appended — and flushed — *before* the caller may show
    it to anyone.  Reopening tolerates a torn final line exactly like the
    WAL: the interrupted append never surfaced its report, so dropping it
    loses nothing.
    """

    def __init__(self, path: Union[str, Path], *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self.reports: list[FaultReport] = []
        self.seen: set[str] = set()
        self.journaled = 0
        self.deduplicated = 0
        self.torn_tails_truncated = 0
        if self.path.exists():
            self._load_existing()
        self._handle: Optional[IO[str]] = open(  # noqa: SIM115 — long-lived
            self.path, "a", buffering=1, encoding="utf-8"
        )

    def _load_existing(self) -> None:
        raw = self.path.read_bytes()
        good = len(raw)
        if raw and not raw.endswith(b"\n"):
            good = raw.rfind(b"\n") + 1
        lines = raw[:good].decode("utf-8").splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if number == len(lines):
                    good = raw.find(line.encode("utf-8"))
                    break
                raise RecoveryError(
                    f"{self.path.name} line {number}: corrupt journal: {exc}"
                ) from exc
            report = report_from_dict(record)
            self.reports.append(report)
            self.seen.add(report_key(report))
        if good < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(good)
            self.torn_tails_truncated += 1

    def admit(self, report: FaultReport) -> bool:
        """Journal one report; False when it was already delivered."""
        key = report_key(report)
        if key in self.seen:
            self.deduplicated += 1
            return False
        assert self._handle is not None, "admit to a closed journal"
        self._handle.write(json.dumps(report_to_dict(report)) + "\n")
        if self._fsync:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self.seen.add(key)
        self.reports.append(report)
        self.journaled += 1
        return True

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:
        return (
            f"ReportJournal({str(self.path)!r}, reports={len(self.reports)}, "
            f"journaled={self.journaled}, deduplicated={self.deduplicated})"
        )


# --------------------------------------------------------------- snapshots


class SnapshotStore:
    """Numbered, checksummed, atomically-written state snapshots.

    ``write`` serialises the payload, wraps it with a sha256 checksum,
    writes a temp file in the same directory, fsyncs it, and renames it
    into place — a reader (or a restarted process) sees either the old
    snapshot or the complete new one, never a torn middle.  ``load_latest``
    walks snapshots newest-first and falls back past any that fail the
    checksum or do not parse (counted in ``corrupt_skipped``).
    """

    def __init__(self, directory: Union[str, Path], *, keep: int = 4) -> None:
        if keep < 1:
            raise RecoveryError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.written = 0
        self.corrupt_skipped = 0
        #: Crash-injection hook: called between the temp write and the
        #: rename, i.e. at the exact instant where dying leaves the old
        #: snapshot in place.  None outside chaos campaigns.
        self.before_rename: Optional[Callable[[], None]] = None
        existing = self.paths()
        self._next_index = (
            int(existing[-1].stem.split("-")[-1]) + 1 if existing else 1
        )

    def paths(self) -> list[Path]:
        """All snapshot files, oldest first."""
        return sorted(self.directory.glob("snapshot-*.json"))

    @staticmethod
    def _checksum(payload: dict) -> str:
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def write(self, payload: dict) -> Path:
        path = self.directory / f"snapshot-{self._next_index:06d}.json"
        body = {
            "kind": "engine-snapshot",
            "checksum": self._checksum(payload),
            "payload": payload,
        }
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(body, handle)
            handle.flush()
            os.fsync(handle.fileno())
        if self.before_rename is not None:
            self.before_rename()
        os.replace(temp, path)
        self._next_index += 1
        self.written += 1
        for stale in self.paths()[: -self.keep]:
            stale.unlink(missing_ok=True)
        return path

    def load_latest(self) -> Optional[tuple[dict, Path]]:
        """Newest snapshot that passes its checksum, or None.

        Corrupt or truncated candidates are skipped (and counted), so a
        snapshot torn by a crash — or rotted on disk — silently falls back
        to the previous consistent one instead of failing recovery.
        """
        for path in reversed(self.paths()):
            try:
                body = json.loads(path.read_text(encoding="utf-8"))
                payload = body["payload"]
                intact = (
                    body.get("kind") == "engine-snapshot"
                    and body.get("checksum") == self._checksum(payload)
                )
            except (ValueError, KeyError, TypeError, OSError):
                intact = False
                payload = None
            if intact:
                return payload, path
            self.corrupt_skipped += 1
        return None

    def __repr__(self) -> str:
        return (
            f"SnapshotStore({str(self.directory)!r}, "
            f"snapshots={len(self.paths())}, written={self.written}, "
            f"corrupt_skipped={self.corrupt_skipped})"
        )


# ----------------------------------------------------------- durable engine


@dataclass(frozen=True)
class RecoverySummary:
    """What one :meth:`DurableEngine.recover` call did."""

    #: Snapshot the state was restored from (None = cold start).
    snapshot_path: Optional[str]
    #: Corrupt snapshots skipped while finding a valid one.
    snapshot_fallbacks: int
    #: Durable WAL events replayed past the snapshot offsets.
    events_replayed: int
    #: Previously delivered reports reloaded from the journal.
    reports_restored: int
    #: Reports newly produced by the replayed real-time tap.
    reports_recovered: int
    #: Replay re-derivations the journal rejected as already delivered.
    reports_deduplicated: int

    def render(self) -> str:
        source = self.snapshot_path or "cold start (no snapshot)"
        return (
            f"recovered from {source} "
            f"(+{self.snapshot_fallbacks} corrupt skipped): "
            f"{self.events_replayed} events replayed, "
            f"{self.reports_restored} reports restored, "
            f"{self.reports_recovered} recovered, "
            f"{self.reports_deduplicated} deduplicated"
        )


class DurableEngine:
    """Crash-durability wrapper around one :class:`DetectionEngine`.

    Registration goes through :meth:`register`, which attaches a fresh
    :class:`~repro.history.wal.WriteAheadLog` under ``root/wal/<label>``
    to each monitor (replacing any previously attached sink — events
    recorded before registration are only as durable as that sink was).
    :meth:`checkpoint` replaces ``engine.checkpoint`` as the thing a
    pacing process calls: it runs the two-phase checkpoint, journals the
    new reports, then writes a state snapshot.  After assembling the
    fleet, call :meth:`baseline` once so a crash before the first
    checkpoint still finds a snapshot of the true initial state.

    ``durable.reports`` — not ``engine.reports`` — is the canonical
    delivered-report stream: it is rebuilt from the journal on recovery,
    while the in-memory engine only carries what the current incarnation
    derived.  Attribute access falls through to the wrapped engine, so
    counters, ``stopped``, statistics helpers and
    :class:`~repro.detection.supervision.CheckpointSupervisor` pacing all
    work against the durable wrapper unchanged.
    """

    def __init__(
        self,
        engine: DetectionEngine,
        root: Union[str, Path],
        *,
        fsync: str = "interval",
        fsync_every: int = 32,
        segment_bytes: int = 1 << 20,
        keep_snapshots: int = 4,
    ) -> None:
        self.engine = engine
        self.root = Path(root)
        self.fsync = fsync
        self.fsync_every = fsync_every
        self.segment_bytes = segment_bytes
        self.snapshots = SnapshotStore(
            self.root / "snapshots", keep=keep_snapshots
        )
        self.journal = ReportJournal(
            self.root / "reports.jsonl", fsync=(fsync == "always")
        )
        #: The durable delivered-report stream (journal-backed).
        self.reports: list[FaultReport] = list(self.journal.reports)
        #: Times :meth:`recover` ran in this process.
        self.recoveries = 0
        #: Re-derived reports the journal rejected (exactly-once at work).
        self.reports_deduplicated = 0
        #: Wall-clock duration of each :meth:`recover` (snapshot restore
        #: plus WAL replay), for the recovery latency histogram.
        self.recover_latency = Histogram()
        #: Supervisor used for its snapshot/restore of per-monitor state;
        #: also usable to pace this wrapper (it sees ``self.checkpoint``).
        self.supervisor = CheckpointSupervisor(self)
        self._consumed: dict[str, int] = {}

    def __getattr__(self, name: str):
        try:
            engine = object.__getattribute__(self, "engine")
        except AttributeError:
            raise AttributeError(name) from None
        return getattr(engine, name)

    # ---------------------------------------------------------- registration

    def register(
        self,
        target,
        config: Optional[DetectorConfig] = None,
        *,
        label: Optional[str] = None,
    ) -> RegisteredMonitor:
        """Register a monitor with a fresh WAL sink under the root dir.

        The WAL directory is keyed by the same unique label the engine
        will assign, so re-registering the fleet after a restart (same
        order, same labels) reopens each monitor's own log.
        """
        monitor = getattr(target, "monitor", target)
        base = label or monitor.name
        unique, suffix = base, 2
        while unique in self.engine.labels:
            unique = f"{base}#{suffix}"
            suffix += 1
        old = monitor.history
        if isinstance(old, WriteAheadLog):
            old.close()
        wal = WriteAheadLog(
            self.root / "wal" / unique.replace("/", "_"),
            fsync=self.fsync,
            fsync_every=self.fsync_every,
            segment_bytes=self.segment_bytes,
        )
        monitor.core.attach_history(wal)
        entry = self.engine.register(monitor, config, label=unique)
        self._consumed[entry.label] = len(entry.reports)
        return entry

    def _wal_entries(self) -> list[tuple[RegisteredMonitor, WriteAheadLog]]:
        return [
            (entry, entry.history)
            for entry in self.engine.entries
            if isinstance(entry.history, WriteAheadLog)
        ]

    # -------------------------------------------------------------- checking

    def baseline(self) -> Path:
        """Persist the initial snapshot (call once after registration)."""
        return self._write_snapshot()

    def checkpoint(self) -> list[FaultReport]:
        """One durable checkpoint: evaluate, journal, snapshot.

        Returns only reports the journal had not delivered before — after
        a recovery, the re-run of an interrupted checkpoint re-derives the
        same findings and returns an empty list instead of duplicates.
        """
        self.engine.checkpoint()
        fresh = self._admit_new_reports()
        self._write_snapshot()
        return fresh

    def _admit_new_reports(self) -> list[FaultReport]:
        """Offer every not-yet-journaled engine report to the journal.

        Scans each entry's stream past a per-label consumed watermark, so
        reports from the real-time Algorithm-3 tap (which land between
        checkpoints) are journaled too, at the next checkpoint boundary.
        """
        fresh: list[FaultReport] = []
        for entry in self.engine.entries:
            consumed = self._consumed.get(entry.label, 0)
            pending = entry.reports[consumed:]
            self._consumed[entry.label] = len(entry.reports)
            for report in pending:
                if self.journal.admit(report):
                    self.reports.append(report)
                    fresh.append(report)
                else:
                    self.reports_deduplicated += 1
        return fresh

    # ------------------------------------------------------------- snapshots

    def _snapshot_payload(self) -> dict:
        checkers: dict[str, dict] = {}
        for entry in self.engine.entries:
            record: dict = {
                "algorithm1": None,
                "algorithm2": None,
                "algorithm3": None,
            }
            if entry.algorithm1 is not None:
                # The carried checking lists: restoring them lets the
                # first post-recovery window resume mid-stream instead of
                # re-seeding from the snapshot state.
                record["algorithm1"] = entry.algorithm1.state_dict()
            if entry.algorithm2 is not None:
                record["algorithm2"] = entry.algorithm2.state_dict()
            if entry.algorithm3 is not None:
                record["algorithm3"] = {
                    "request_list": [
                        [pid, since]
                        for pid, since in entry.algorithm3.request_list
                    ],
                    "dfa_state": {
                        str(pid): state
                        for pid, state in entry.algorithm3._dfa_state.items()
                    },
                }
            record["counters"] = {
                "dropped_in_windows": entry.dropped_in_windows,
                "degraded_windows": entry.degraded_windows,
                "forced_captures": entry.forced_captures,
            }
            checkers[entry.label] = record
        engine = self.engine
        return {
            "kind": "durable-engine",
            "supervisor": self.supervisor.snapshot_state(),
            "checkers": checkers,
            "engine": {
                "checkpoints_run": engine.checkpoints_run,
                "atomic_sections": engine.atomic_sections,
                "captures_taken": engine.captures_taken,
                "evaluations_run": engine.evaluations_run,
                "check_failures": engine.check_failures,
            },
        }

    def _write_snapshot(self) -> Path:
        # The WAL must be at least as new as the offsets the snapshot
        # records, or replay would start past events it never saw.
        for __, wal in self._wal_entries():
            wal.flush(sync=self.fsync != "never")
        return self.snapshots.write(self._snapshot_payload())

    def _restore_payload(self, payload: dict) -> None:
        if payload.get("kind") != "durable-engine":
            raise RecoveryError(
                f"not a durable-engine snapshot: {payload.get('kind')!r}"
            )
        self.supervisor.restore_state(payload["supervisor"])
        checkers = payload.get("checkers", {})
        for entry in self.engine.entries:
            record = checkers.get(entry.label)
            if record is None:
                continue
            algo1 = record.get("algorithm1")
            if algo1 and entry.algorithm1 is not None:
                # The supervisor restore above already reinstated the
                # sink's last checkpoint state; binding the carried lists
                # to that object makes the next cut a carry, not a rebase.
                entry.algorithm1.restore_state(
                    algo1, basis=entry.history.last_state
                )
            algo2 = record.get("algorithm2")
            if algo2 and entry.algorithm2 is not None:
                entry.algorithm2.restore_state(algo2)
            algo3 = record.get("algorithm3")
            if algo3 and entry.algorithm3 is not None:
                entry.algorithm3.request_list = [
                    (pid, since) for pid, since in algo3["request_list"]
                ]
                # JSON stringifies the pid keys; Pid is an int.
                entry.algorithm3._dfa_state = {
                    int(pid): state
                    for pid, state in algo3["dfa_state"].items()
                }
            counters = record.get("counters", {})
            entry.dropped_in_windows = counters.get("dropped_in_windows", 0)
            entry.degraded_windows = counters.get("degraded_windows", 0)
            entry.forced_captures = counters.get("forced_captures", 0)
        engine_counters = payload.get("engine", {})
        for name in (
            "checkpoints_run",
            "atomic_sections",
            "captures_taken",
            "evaluations_run",
            "check_failures",
        ):
            setattr(self.engine, name, engine_counters.get(name, 0))

    # -------------------------------------------------------------- recovery

    def recover(self) -> RecoverySummary:
        """Resume detection after a restart (call before running).

        Protocol: rebuild the fleet exactly as before the crash (same
        monitors, same registration order and labels, via
        :meth:`register`), then call this once.  It restores the latest
        valid snapshot into the engine, replays each WAL's events past the
        snapshot's per-sink offsets into the open windows — re-driving the
        real-time Algorithm-3 check over them — and surfaces only reports
        the journal never delivered.  Without any snapshot (a crash before
        :meth:`baseline`) the whole WAL replays against the attach-time
        base state.
        """
        recover_started = perf_counter()
        self.reports = list(self.journal.reports)
        restored = len(self.reports)
        loaded = self.snapshots.load_latest()
        snapshot_path: Optional[str] = None
        watermarks: dict[str, int] = {}
        if loaded is not None:
            payload, path = loaded
            snapshot_path = str(path)
            monitors = payload.get("supervisor", {}).get("monitors", {})
            watermarks = {
                label: record.get("sink", {}).get("seq", 0)
                for label, record in monitors.items()
            }
            with contextlib.ExitStack() as stack:
                for __, wal in self._wal_entries():
                    stack.enter_context(wal.replaying())
                self._restore_payload(payload)
        events_replayed = 0
        recovered = 0
        deduplicated = 0
        for entry, wal in self._wal_entries():
            watermark = watermarks.get(entry.label, 0)
            for event in wal.iter_durable_events():
                if event.seq < watermark:
                    continue
                wal.restore_event(event)
                events_replayed += 1
                if entry.tapped and entry.algorithm3 is not None:
                    for report in entry.algorithm3.on_event(event):
                        entry.reports.append(report)
                        if self.journal.admit(report):
                            self.reports.append(report)
                            recovered += 1
                        else:
                            deduplicated += 1
            self._consumed[entry.label] = len(entry.reports)
        self.reports_deduplicated += deduplicated
        self.recoveries += 1
        self.recover_latency.observe(perf_counter() - recover_started)
        return RecoverySummary(
            snapshot_path=snapshot_path,
            snapshot_fallbacks=self.snapshots.corrupt_skipped,
            events_replayed=events_replayed,
            reports_restored=restored,
            reports_recovered=recovered,
            reports_deduplicated=deduplicated,
        )

    # -------------------------------------------------------------- lifecycle

    def stop(self) -> None:
        """Stop the wrapped engine and flush every durable artefact."""
        self.engine.stop()
        self.flush()

    def flush(self) -> None:
        for __, wal in self._wal_entries():
            wal.flush(sync=self.fsync == "always")

    def close(self) -> None:
        """Close WAL and journal handles (a crashed process never does)."""
        for __, wal in self._wal_entries():
            wal.close()
        self.journal.close()

    # ------------------------------------------------------------- inspection

    def metrics(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        labels: Optional[dict] = None,
    ) -> MetricsRegistry:
        """Engine metrics plus the durability families.

        The wrapped engine's sampling already folds in each monitor's WAL
        (append/fsync counters and latency); this adds snapshots, journal
        dedup, and the recovery-replay latency histogram.
        """
        registry = self.engine.metrics(registry, labels=labels)
        base = {str(k): str(v) for k, v in (labels or {}).items()}
        names = tuple(base)

        def counter(name: str, help: str, value: float) -> None:
            registry.counter(name, help, names).labels(**base).inc(value)

        counter(
            "repro_snapshots_written_total",
            "Checksummed state snapshots written.",
            self.snapshots.written,
        )
        counter(
            "repro_recoveries_total",
            "recover() runs completed in this process.",
            self.recoveries,
        )
        counter(
            "repro_reports_deduplicated_total",
            "Re-derived reports rejected by the exactly-once journal.",
            self.reports_deduplicated,
        )
        registry.gauge(
            "repro_journal_reports",
            "Reports delivered through the durable journal.",
            names,
        ).labels(**base).set(len(self.reports))
        registry.histogram(
            "repro_phase_latency_seconds",
            "Wall-clock latency per detection phase.",
            names + ("phase",),
        ).labels(**base, phase="recover").merge(self.recover_latency)
        return registry

    @property
    def durability_counters(self) -> dict[str, int]:
        """The durability cost/benefit counters, bench- and stats-facing."""
        wal_bytes = 0
        wal_fsyncs = 0
        for __, wal in self._wal_entries():
            wal_bytes += wal.bytes_written
            wal_fsyncs += wal.fsyncs
        return {
            "wal_bytes_written": wal_bytes,
            "wal_fsyncs": wal_fsyncs,
            "snapshots_written": self.snapshots.written,
            "recoveries": self.recoveries,
            "reports_deduplicated": self.reports_deduplicated,
        }

    def __repr__(self) -> str:
        counters = self.durability_counters
        return (
            f"DurableEngine(root={str(self.root)!r}, fsync={self.fsync!r}, "
            f"monitors={len(self.engine.entries)}, "
            f"reports={len(self.reports)}, "
            f"wal_bytes_written={counters['wal_bytes_written']}, "
            f"wal_fsyncs={counters['wal_fsyncs']}, "
            f"snapshots_written={counters['snapshots_written']}, "
            f"recoveries={counters['recoveries']}, "
            f"reports_deduplicated={counters['reports_deduplicated']})"
        )
