"""Sharded detection: many engines, staggered world-stops, one surface.

One :class:`~repro.detection.engine.DetectionEngine` already amortises the
paper's per-detector suspend-the-world cost into a single two-phase
checkpoint per interval — but the whole fleet still funnels through one
engine object with one schedule, so at large fleet sizes every phase-1
sweep stops the world for O(fleet) snapshot+cut work at once.
:class:`DetectionCluster` is the next scaling lever named in ROADMAP:
partition the registered monitors across N engine *shards* so that

* each phase-1 atomic section only sweeps its own shard's monitors
  (world-stop per section shrinks from O(fleet) to O(fleet / N)),
* shard capture schedules are **staggered** — shard ``k`` fires at offset
  ``interval * k / N`` within the checking period, recomputed over the
  non-empty shards whenever a monitor registers or unregisters, so
  phase-1 sections never pile onto the same instant,
* phase-2 evaluation can leave the checkpointing process entirely: a
  per-shard **worker pool** (:mod:`repro.detection.procpool`) runs
  evaluation on worker threads (overlap — the thread-kernel default) or
  in one evaluator worker *process* per shard
  (``evaluation="processes"`` — true multi-core parallelism past the
  GIL), while each shard's single worker still serialises its own
  checker-state mutation.

Which monitor lands on which shard is a pluggable :class:`ShardPolicy`:
round-robin (:class:`RoundRobinSharding`), lowest event-rate EWMA load
(:class:`RateBalancedSharding`), or explicit label groups
(:class:`LabelSharding`, fed by ``build_fleet`` shard labels).

The cluster exposes the same reporting surface as a single engine
(``reports``, ``reports_by_monitor``, ``implicated_faults``, ``clean``,
``confirmed_clean`` …) by merging the shard streams into one
deterministic order — virtual detection time, then shard id, then
cluster registration order — and composes with the existing layers:
per-shard :class:`~repro.detection.supervision.CheckpointSupervisor` and
breaker state, per-shard WAL + snapshot durability
(:class:`~repro.detection.durability.DurableEngine` under
``root/shard-<k>``, with :meth:`DetectionCluster.recover` restoring every
shard and re-merging their report journals), and chaos campaigns that
crash one shard while the others keep detecting.
"""

from __future__ import annotations

import abc
import math
import random
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.detection.config import DetectorConfig
from repro.detection.durability import DurableEngine, RecoverySummary
from repro.observability.registry import MetricsRegistry
from repro.detection.engine import (
    DetectionEngine,
    MonitorLike,
    RegisteredMonitor,
    _unwrap,
)
from repro.detection.procpool import (
    EvaluationPool,
    ProcessEvaluationPool,
    ThreadEvaluationPool,
)
from repro.detection.reports import Confidence, FaultReport
from repro.detection.supervision import (
    CheckpointSupervisor,
    QuarantineRecord,
    SupervisorEvent,
)
from repro.history.sink import merge_event_streams
from repro.kernel.syscalls import Delay, Syscall
from repro.kernel.threads import ThreadKernel
from repro.monitor.construct import Monitor

__all__ = [
    "ShardPolicy",
    "RoundRobinSharding",
    "RateBalancedSharding",
    "LabelSharding",
    "make_shard_policy",
    "ClusterShard",
    "DetectionCluster",
    "shard_process",
]


# ------------------------------------------------------------ shard policies


class ShardPolicy(abc.ABC):
    """Chooses the shard a newly registered monitor lands on."""

    #: The :attr:`DetectorConfig.shard_policy` spelling of this policy.
    name: str = "?"

    @abc.abstractmethod
    def assign(
        self,
        cluster: "DetectionCluster",
        monitor: Monitor,
        label: str,
        group: Optional[str],
    ) -> int:
        """Return the shard index (``0 <= index < cluster.shard_count``)."""


class RoundRobinSharding(ShardPolicy):
    """Registration order modulo shard count — the fixed, oblivious default."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def assign(self, cluster, monitor, label, group) -> int:
        index = self._next % cluster.shard_count
        self._next += 1
        return index


class RateBalancedSharding(ShardPolicy):
    """Greedy lowest-load placement by summed event-rate EWMA.

    Each registered monitor carries an EWMA of its event rate (the same
    one the adaptive capture schedule uses); a new monitor goes to the
    shard whose entries currently sum to the lowest rate, tie-broken by
    fewest entries, then lowest shard id — so a hot monitor does not pile
    onto a shard already sweeping hot ones.
    """

    name = "rate"

    def assign(self, cluster, monitor, label, group) -> int:
        def load(shard: "ClusterShard") -> tuple[float, int, int]:
            entries = shard.engine.entries
            return (
                sum(entry.event_rate for entry in entries),
                len(entries),
                shard.index,
            )

        return min(cluster.shards, key=load).index


class LabelSharding(ShardPolicy):
    """Explicit label groups: every monitor of one group shares a shard.

    ``groups`` maps a group name to a shard index; unseen groups are
    assigned in first-seen order modulo the shard count, so related
    monitors (``build_fleet`` tags each scenario instance with its
    scenario name as ``shard_label``) stay co-located without
    pre-declaring the universe of groups.  A monitor registered without a
    group falls back to its label as its own group.
    """

    name = "label"

    def __init__(self, groups: Optional[dict[str, int]] = None) -> None:
        self.groups: dict[str, int] = dict(groups or {})

    def assign(self, cluster, monitor, label, group) -> int:
        key = group if group is not None else label
        if key not in self.groups:
            taken = len(self.groups)
            self.groups[key] = taken % cluster.shard_count
        index = self.groups[key]
        if not 0 <= index < cluster.shard_count:
            raise ValueError(
                f"label group {key!r} maps to shard {index}, but the "
                f"cluster has {cluster.shard_count} shard(s)"
            )
        return index


_POLICY_FACTORIES: dict[str, Callable[[], ShardPolicy]] = {
    RoundRobinSharding.name: RoundRobinSharding,
    RateBalancedSharding.name: RateBalancedSharding,
    LabelSharding.name: LabelSharding,
}


def make_shard_policy(name: str) -> ShardPolicy:
    """Instantiate a policy from its :attr:`DetectorConfig.shard_policy` name."""
    try:
        return _POLICY_FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown shard policy {name!r}; choose from "
            f"{sorted(_POLICY_FACTORIES)}"
        ) from None


# ------------------------------------------------------------------ shards


class ClusterShard:
    """One shard: an engine, its durability wrapper, supervisor, schedule.

    Exposes enough of the engine surface (``config``, ``kernel``,
    ``entries``, ``stopped``, :meth:`checkpoint`) that a
    :class:`~repro.detection.supervision.CheckpointSupervisor` can pace it
    directly — supervised shard checkpoints go through the shard, which
    routes evaluation to the cluster's worker pool when one is active.
    """

    def __init__(
        self,
        index: int,
        engine: DetectionEngine,
        target: Union[DetectionEngine, DurableEngine],
    ) -> None:
        self.index = index
        #: The raw engine (phase split, counters, entries).
        self.engine = engine
        #: What a full checkpoint is invoked on — the engine itself, or
        #: its :class:`DurableEngine` wrapper when the cluster is durable.
        self.target = target
        #: Stagger offset of this shard's capture schedule within the
        #: checking interval (maintained by the cluster's rebalance).
        self.offset = 0.0
        #: Installed by the cluster when phase-2 evaluation runs in a
        #: worker pool (threads or processes); None = evaluate inline.
        self.pool: Optional[EvaluationPool] = None
        # Per-shard jitter seed: shards retrying a shared failing
        # dependency (one WAL disk, one slow evaluator pool) must not
        # back off in lockstep, so each shard's supervisor draws from its
        # own index-seeded RNG — still fully deterministic per seed.
        self.supervisor = CheckpointSupervisor(
            self, rng=random.Random(index)
        )

    # Surface the supervisor and pacing processes expect of an "engine".

    @property
    def config(self) -> DetectorConfig:
        return self.engine.config

    @property
    def kernel(self):
        return self.engine.kernel

    @property
    def entries(self) -> tuple[RegisteredMonitor, ...]:
        return self.engine.entries

    @property
    def stopped(self) -> bool:
        return self.engine.stopped

    @property
    def durable(self) -> bool:
        return isinstance(self.target, DurableEngine)

    def checkpoint(self) -> list[FaultReport]:
        """One shard checkpoint, pool-aware.

        Inline (sim kernel, or pool disabled): delegate to the target —
        the plain two-phase checkpoint, or the durable
        evaluate+journal+snapshot.  Pooled (thread kernel): run only
        phase 1 here and hand phase 2 to this shard's worker, so the
        pacing process is free to start the next shard's capture while
        this one evaluates.  Pooled checkpoints return ``[]``; their
        reports surface on the entries once the worker finishes (await
        with :meth:`DetectionCluster.drain`).
        """
        if self.pool is None:
            return self.target.checkpoint()
        self.engine.capture_phase()
        self.pool.submit_shard(self)
        return []

    def _evaluate_offloaded(self) -> list[FaultReport]:
        reports = self.engine.evaluate_phase()
        self.engine.checkpoints_run += 1
        self.finish_durable_checkpoint()
        return reports

    def finish_durable_checkpoint(self) -> None:
        """Journal new reports and snapshot state after pooled evaluation."""
        if isinstance(self.target, DurableEngine):
            self.target._admit_new_reports()
            self.target._write_snapshot()

    def __repr__(self) -> str:
        return (
            f"ClusterShard({self.index}, monitors={len(self.engine.entries)}, "
            f"offset={self.offset:g}, checkpoints={self.engine.checkpoints_run}, "
            f"durable={self.durable})"
        )


# ----------------------------------------------------------------- cluster


class DetectionCluster:
    """N staggered :class:`DetectionEngine` shards behind one engine surface.

    Parameters
    ----------
    kernel:
        The substrate every registered monitor (and every shard's atomic
        capture section) lives on.
    config:
        Default :class:`DetectorConfig`; ``config.shards`` /
        ``config.shard_policy`` / ``config.stagger`` seed the cluster
        shape unless overridden by the keyword arguments.
    shards:
        Number of engine shards (default ``config.shards``).
    policy:
        A :class:`ShardPolicy` instance (default: built from
        ``config.shard_policy``).
    durable_root:
        When set, each shard is wrapped in a
        :class:`~repro.detection.durability.DurableEngine` rooted at
        ``durable_root/shard-<k>`` — per-shard WAL, snapshots and report
        journal, restored together by :meth:`recover`.
    evaluation:
        Which phase-2 evaluation plane to run: ``"threads"`` (one worker
        thread per shard — overlap, GIL-serialised), ``"processes"``
        (one evaluator worker *process* per shard — true multi-core
        parallelism) or ``"inline"`` (evaluate on the checkpointing
        process).  Default (None): ``config.evaluation``, else threads on
        :class:`~repro.kernel.threads.ThreadKernel` and inline on the
        deterministic sim kernel.
    evaluate_in_workers:
        Legacy boolean spelling of ``evaluation`` (True = ``"threads"``,
        False = ``"inline"``); ignored when ``evaluation`` decides.
    """

    def __init__(
        self,
        kernel,
        config: Optional[DetectorConfig] = None,
        *,
        shards: Optional[int] = None,
        policy: Optional[ShardPolicy] = None,
        durable_root: Optional[Union[str, Path]] = None,
        fsync: str = "interval",
        evaluation: Optional[str] = None,
        evaluate_in_workers: Optional[bool] = None,
    ) -> None:
        self.kernel = kernel
        self.config = config or DetectorConfig()
        count = self.config.shards if shards is None else shards
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        self.policy = policy or make_shard_policy(self.config.shard_policy)
        self.durable_root = Path(durable_root) if durable_root else None
        if evaluation is None and evaluate_in_workers is not None:
            evaluation = "threads" if evaluate_in_workers else "inline"
        if evaluation is None:
            evaluation = self.config.evaluation
        if evaluation is None:
            evaluation = (
                "threads" if isinstance(kernel, ThreadKernel) else "inline"
            )
        if evaluation not in ("inline", "threads", "processes"):
            raise ValueError(
                f"evaluation must be 'inline', 'threads' or 'processes'; "
                f"got {evaluation!r}"
            )
        #: The resolved phase-2 evaluation plane.
        self.evaluation = evaluation
        self._pool: Optional[EvaluationPool] = None
        if evaluation == "threads":
            self._pool = ThreadEvaluationPool(count)
        elif evaluation == "processes":
            self._pool = ProcessEvaluationPool(count)
        #: ``(shard index, worker name)`` of pool workers that outlived
        #: the close timeout (each also logged as a "leak" event on the
        #: shard's supervisor).
        self.pool_leaks: list[tuple[int, str]] = []
        self._shards: list[ClusterShard] = []
        for index in range(count):
            engine = DetectionEngine(kernel, self.config)
            target: Union[DetectionEngine, DurableEngine] = engine
            if self.durable_root is not None:
                target = DurableEngine(
                    engine, self.durable_root / f"shard-{index}", fsync=fsync
                )
            shard = ClusterShard(index, engine, target)
            shard.pool = self._pool
            self._shards.append(shard)
        if self._pool is not None:
            self._pool.warm_up(self._shards)
        #: Cluster-wide registration order: ``(entry, shard index)``.
        self._order: list[tuple[RegisteredMonitor, int]] = []
        self._labels: set[str] = set()
        self._stopped = False

    # ------------------------------------------------------------------ shape

    @property
    def shards(self) -> tuple[ClusterShard, ...]:
        return tuple(self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def engines(self) -> tuple[DetectionEngine, ...]:
        return tuple(shard.engine for shard in self._shards)

    def shard_of(self, target: Union[MonitorLike, RegisteredMonitor, str]) -> int:
        """The shard index a registered monitor was placed on."""
        entry = self._find(target)
        for candidate, index in self._order:
            if candidate is entry:
                return index
        raise KeyError(f"{target!r} is not registered with this cluster")

    # ---------------------------------------------------------- registration

    def _unique_label(self, base: str) -> str:
        unique, suffix = base, 2
        while unique in self._labels:
            unique = f"{base}#{suffix}"
            suffix += 1
        return unique

    def register(
        self,
        target: MonitorLike,
        config: Optional[DetectorConfig] = None,
        *,
        label: Optional[str] = None,
        group: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> RegisteredMonitor:
        """Place a monitor on a shard and register it there.

        ``label`` keys the monitor in :meth:`reports_by_monitor`
        (cluster-wide unique, ``#2``-suffixed like the engine's).
        ``group`` feeds :class:`LabelSharding` (ignored by the oblivious
        policies); ``shard`` pins the placement explicitly, bypassing the
        policy.  Registration rebalances the stagger offsets over the
        non-empty shards.
        """
        monitor = _unwrap(target)
        unique = self._unique_label(label or monitor.name)
        if shard is None:
            index = self.policy.assign(self, monitor, unique, group)
        else:
            index = shard
        if not 0 <= index < self.shard_count:
            raise ValueError(
                f"shard index {index} out of range for "
                f"{self.shard_count} shard(s)"
            )
        entry = self._shards[index].target.register(
            monitor, config, label=unique
        )
        self._labels.add(entry.label)
        self._order.append((entry, index))
        if self._pool is not None:
            self._pool.entry_registered(self._shards[index], entry)
        self._rebalance()
        return entry

    def _find(
        self, target: Union[MonitorLike, RegisteredMonitor, str]
    ) -> RegisteredMonitor:
        if isinstance(target, RegisteredMonitor):
            return target
        if isinstance(target, str):
            for entry, __ in self._order:
                if entry.label == target:
                    return entry
            raise KeyError(f"label {target!r} is not registered")
        monitor = _unwrap(target)
        for entry, __ in self._order:
            if entry.monitor is monitor:
                return entry
        raise KeyError(f"monitor {monitor.name!r} is not registered")

    def unregister(
        self, target: Union[MonitorLike, RegisteredMonitor, str]
    ) -> None:
        """Drop a monitor from its shard and rebalance the stagger.

        Goes through :meth:`DetectionEngine.unregister`, which closes out
        the monitor's quarantine record when its breaker has history.
        """
        entry = self._find(target)
        index = self.shard_of(entry)
        self._shards[index].engine.unregister(entry)
        if self._pool is not None:
            self._pool.entry_unregistered(self._shards[index], entry.label)
        self._labels.discard(entry.label)
        self._order = [
            (candidate, shard_index)
            for candidate, shard_index in self._order
            if candidate is not entry
        ]
        self._rebalance()

    @property
    def entries(self) -> tuple[RegisteredMonitor, ...]:
        """Registered monitors in cluster registration order."""
        return tuple(entry for entry, __ in self._order)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(entry.label for entry, __ in self._order)

    # --------------------------------------------------------------- stagger

    def _rebalance(self) -> None:
        """Spread offsets ``interval * k / N`` over the non-empty shards.

        Empty shards pace nothing, so the stagger divides the interval
        among the shards that actually capture — registering the first
        monitor on a previously empty shard re-spaces everyone.
        """
        if not self.config.stagger:
            for shard in self._shards:
                shard.offset = 0.0
            return
        active = [shard for shard in self._shards if shard.engine.entries]
        for shard in self._shards:
            shard.offset = 0.0
        for position, shard in enumerate(active):
            shard.offset = self.config.interval * position / len(active)

    @property
    def offsets(self) -> tuple[float, ...]:
        """Current stagger offsets, indexed by shard."""
        return tuple(shard.offset for shard in self._shards)

    # -------------------------------------------------------------- checking

    def checkpoint(self) -> list[FaultReport]:
        """Run one checkpoint on every shard, in shard order.

        The manual (non-paced) surface, mirroring
        :meth:`DetectionEngine.checkpoint`.  With a worker pool active the
        evaluations are awaited before returning, so the reports below are
        complete.
        """
        found: list[FaultReport] = []
        for shard in self._shards:
            found.extend(shard.checkpoint())
        self.drain()
        return found

    def drain(self) -> None:
        """Wait for every offloaded phase-2 evaluation to finish."""
        if self._pool is not None:
            self._pool.drain()

    def spawn_processes(
        self,
        *,
        rounds: Optional[int] = None,
        supervised: bool = False,
        name_prefix: str = "detection-shard",
    ) -> list:
        """Spawn one staggered pacing process per shard on the kernel."""
        return [
            self.kernel.spawn(
                shard_process(
                    self, shard.index, rounds=rounds, supervised=supervised
                ),
                f"{name_prefix}-{shard.index}",
            )
            for shard in self._shards
        ]

    # ------------------------------------------------------------- lifecycle

    def stop(self) -> None:
        """Stop every shard, drain pending evaluations, close the pool."""
        self._stopped = True
        for shard in self._shards:
            shard.target.stop()
        if self._pool is not None:
            self._pool.drain()
            self._close_pool()
            for shard in self._shards:
                shard.pool = None

    def _close_pool(self) -> None:
        """Close the pool; surface — never swallow — leaked workers."""
        assert self._pool is not None
        leaked = self._pool.close()
        self._pool = None
        for index, name in leaked:
            shard = self._shards[index if 0 <= index < len(self._shards) else 0]
            shard.supervisor.events.append(
                SupervisorEvent(
                    self.kernel.now(),
                    "leak",
                    f"evaluation worker {name!r} still alive after its "
                    "close timeout",
                )
            )
        self.pool_leaks.extend(leaked)

    @property
    def stopped(self) -> bool:
        return self._stopped

    # ------------------------------------------------------------ durability

    def baseline(self) -> None:
        """Persist each durable shard's initial snapshot (post-assembly)."""
        for shard in self._shards:
            if isinstance(shard.target, DurableEngine):
                shard.target.baseline()

    def recover(self) -> list[RecoverySummary]:
        """Restore every durable shard after a restart, in shard order.

        Rebuild the fleet first, exactly as before the crash (same
        monitors, same labels, same shard placement — pin with
        ``register(..., shard=...)`` when the policy is stateful), then
        call this once.  The per-shard journals re-merge through
        :attr:`delivered_reports`.
        """
        summaries: list[RecoverySummary] = []
        for shard in self._shards:
            if isinstance(shard.target, DurableEngine):
                summaries.append(shard.target.recover())
        if self._pool is not None:
            # The recovery rebuilt checker state behind the pool's back;
            # push full stream state to the shadow evaluators.
            for shard in self._shards:
                self._pool.resync_shard(shard)
        return summaries

    def close(self) -> None:
        """Close durable handles and the worker pool (crash simulators)."""
        for shard in self._shards:
            if isinstance(shard.target, DurableEngine):
                shard.target.close()
        if self._pool is not None:
            self._close_pool()

    @property
    def durability_counters(self) -> dict[str, int]:
        """Summed durability accounting across durable shards."""
        totals: dict[str, int] = {}
        for shard in self._shards:
            if isinstance(shard.target, DurableEngine):
                for key, value in shard.target.durability_counters.items():
                    totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------- reporting

    def _merge(
        self, streams: Sequence[tuple[int, int, Sequence[FaultReport]]]
    ) -> list[FaultReport]:
        """Deterministic fan-in: (virtual time, shard id, registration order)."""
        keyed = [
            ((report.detected_at, shard_index, order, position), report)
            for shard_index, order, stream in streams
            for position, report in enumerate(stream)
        ]
        keyed.sort(key=lambda pair: pair[0])
        return [report for __, report in keyed]

    @property
    def reports(self) -> list[FaultReport]:
        """All shards' reports, merged into one deterministic order."""
        return self._merge(
            [
                (shard_index, order, entry.reports)
                for order, (entry, shard_index) in enumerate(self._order)
            ]
        )

    @property
    def delivered_reports(self) -> list[FaultReport]:
        """The durable delivered stream, re-merged across shard journals.

        Falls back to :attr:`reports` for a non-durable cluster.  After
        :meth:`recover`, this is the exactly-once stream the journals
        back; in-memory ``reports`` only carries what the current
        incarnation derived.
        """
        if self.durable_root is None:
            return self.reports
        keyed = []
        for shard in self._shards:
            if not isinstance(shard.target, DurableEngine):
                continue
            for position, report in enumerate(shard.target.reports):
                keyed.append(
                    ((report.detected_at, shard.index, position), report)
                )
        keyed.sort(key=lambda pair: pair[0])
        return [report for __, report in keyed]

    def reports_by_monitor(self) -> dict[str, list[FaultReport]]:
        """Per-monitor streams keyed by label, cluster registration order."""
        return {entry.label: list(entry.reports) for entry, __ in self._order}

    def reports_for_rule(self, rule) -> list[FaultReport]:
        return [report for report in self.reports if report.rule is rule]

    def implicated_faults(self) -> frozenset:
        suspects: set = set()
        for entry, __ in self._order:
            for report in entry.reports:
                suspects.update(report.suspected_faults)
        return frozenset(suspects)

    def reports_by_confidence(self) -> dict[Confidence, list[FaultReport]]:
        split: dict[Confidence, list[FaultReport]] = {
            confidence: [] for confidence in Confidence
        }
        for report in self.reports:
            split[report.confidence].append(report)
        return split

    @property
    def clean(self) -> bool:
        return all(not entry.reports for entry, __ in self._order)

    @property
    def confirmed_clean(self) -> bool:
        return all(
            report.confidence is not Confidence.CONFIRMED
            for report in self.reports
        )

    @property
    def merged_events(self):
        """Fan-in of every registered sink's open window, one timeline."""
        return merge_event_streams(
            [entry.history.pending_events for entry, __ in self._order]
        )

    # ------------------------------------------------------------ resilience

    @property
    def quarantined(self) -> tuple[RegisteredMonitor, ...]:
        return tuple(
            entry for entry, __ in self._order if entry.quarantined
        )

    def quarantine_report(self) -> list[QuarantineRecord]:
        """Quarantine records across shards (live and retired), shard order."""
        records: list[QuarantineRecord] = []
        for shard in self._shards:
            records.extend(shard.engine.quarantine_report())
        return records

    def supervisor_events(self) -> list[tuple[int, SupervisorEvent]]:
        """Every shard supervisor's audit log, tagged with its shard id."""
        return [
            (shard.index, event)
            for shard in self._shards
            for event in shard.supervisor.events
        ]

    # -------------------------------------------------------------- counters

    def _sum(self, name: str) -> float:
        return sum(getattr(shard.engine, name) for shard in self._shards)

    @property
    def checkpoints_run(self) -> int:
        return int(self._sum("checkpoints_run"))

    @property
    def atomic_sections(self) -> int:
        return int(self._sum("atomic_sections"))

    @property
    def captures_taken(self) -> int:
        return int(self._sum("captures_taken"))

    @property
    def evaluations_run(self) -> int:
        return int(self._sum("evaluations_run"))

    @property
    def check_failures(self) -> int:
        return int(self._sum("check_failures"))

    @property
    def worldstop_seconds(self) -> float:
        return self._sum("worldstop_seconds")

    @property
    def worldstop_max(self) -> float:
        """Longest single phase-1 section across all shards — the cluster's
        worst per-checkpoint stall, the figure the sharding gate bounds."""
        return max(
            (shard.engine.worldstop_max for shard in self._shards),
            default=0.0,
        )

    @property
    def evaluate_seconds(self) -> float:
        return self._sum("evaluate_seconds")

    @property
    def checking_seconds(self) -> float:
        return self.worldstop_seconds + self.evaluate_seconds

    @property
    def dropped_events(self) -> int:
        return sum(entry.history.dropped_events for entry, __ in self._order)

    @property
    def degraded_windows(self) -> int:
        return int(self._sum("degraded_windows"))

    @property
    def intervals_skipped(self) -> int:
        return int(self._sum("intervals_skipped"))

    @property
    def forced_captures(self) -> int:
        return int(self._sum("forced_captures"))

    @property
    def incremental_hits(self) -> int:
        return int(self._sum("incremental_hits"))

    @property
    def incremental_rebases(self) -> int:
        return int(self._sum("incremental_rebases"))

    @property
    def incremental_fastpaths(self) -> int:
        return int(self._sum("incremental_fastpaths"))

    @property
    def staged_events(self) -> int:
        return int(self._sum("staged_events"))

    @property
    def staged_flushes(self) -> int:
        return int(self._sum("staged_flushes"))

    @property
    def worldstop_samples(self) -> list[float]:
        """Per-checkpoint phase-1 durations, concatenated in shard order."""
        samples: list[float] = []
        for shard in self._shards:
            samples.extend(shard.engine.worldstop_samples)
        return samples

    def worldstop_percentile(self, q: float) -> float:
        """Nearest-rank percentile of phase-1 stalls across all shards."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be within (0, 1], got {q!r}")
        samples = sorted(self.worldstop_samples)
        if not samples:
            return 0.0
        return samples[max(0, math.ceil(q * len(samples)) - 1)]

    def metrics(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Snapshot the whole cluster into one registry, shard-labelled.

        Every engine family carries a ``shard`` label (sum across shards
        to recover the cluster totals); durable shards add their WAL /
        snapshot / recovery families; each shard's supervisor contributes
        retries, stalls, abandons, breaker transitions, and its audit-log
        event kinds (including ``worker-death``); pool leaks are counted
        cluster-wide per shard.
        """
        registry = MetricsRegistry() if registry is None else registry
        for shard in self._shards:
            target = (
                shard.target
                if isinstance(shard.target, DurableEngine)
                else shard.engine
            )
            target.metrics(registry, labels={"shard": shard.index})

        def per_shard(name: str, help: str, values) -> None:
            family = registry.counter(name, help, ("shard",))
            for index, value in values:
                family.labels(shard=index).inc(value)

        per_shard(
            "repro_supervisor_retries_total",
            "Checkpoint retries performed by shard supervisors.",
            (
                (s.index, s.supervisor.retries_performed)
                for s in self._shards
            ),
        )
        per_shard(
            "repro_supervisor_stalls_total",
            "Watchdog stalls detected by shard supervisors.",
            (
                (s.index, s.supervisor.stalls_detected)
                for s in self._shards
            ),
        )
        per_shard(
            "repro_supervisor_abandoned_total",
            "Checkpoints abandoned after exhausted retry budgets.",
            (
                (s.index, s.supervisor.checkpoints_abandoned)
                for s in self._shards
            ),
        )
        per_shard(
            "repro_supervisor_completed_total",
            "Checkpoints completed under shard supervisors.",
            (
                (s.index, s.supervisor.checkpoints_completed)
                for s in self._shards
            ),
        )
        opened = [(s.index, 0) for s in self._shards]
        reclosed = [(s.index, 0) for s in self._shards]
        for shard in self._shards:
            for record in shard.engine.quarantine_report():
                opened[shard.index] = (
                    shard.index,
                    opened[shard.index][1] + record.times_opened,
                )
                reclosed[shard.index] = (
                    shard.index,
                    reclosed[shard.index][1] + record.times_reclosed,
                )
        per_shard(
            "repro_breaker_opened_total",
            "Circuit-breaker CLOSED->OPEN transitions (quarantines).",
            opened,
        )
        per_shard(
            "repro_breaker_reclosed_total",
            "Circuit-breaker recoveries back to CLOSED.",
            reclosed,
        )
        events_family = registry.counter(
            "repro_supervisor_events_total",
            "Supervisor audit-log events by kind.",
            ("shard", "kind"),
        )
        deaths = {shard.index: 0 for shard in self._shards}
        for index, event in self.supervisor_events():
            events_family.labels(shard=index, kind=event.kind).inc()
            if event.kind == "worker-death":
                deaths[index] += 1
        per_shard(
            "repro_worker_deaths_total",
            "Evaluation-pool worker processes that died mid-batch.",
            deaths.items(),
        )
        leaks = {shard.index: 0 for shard in self._shards}
        for index, __ in self.pool_leaks:
            leaks[index] = leaks.get(index, 0) + 1
        per_shard(
            "repro_pool_leaks_total",
            "Pool workers that outlived the close timeout.",
            leaks.items(),
        )
        return registry

    def shard_stats(self) -> list[dict]:
        """Per-shard accounting: the bench/CLI ``--shards`` detail rows."""
        return [
            {
                "shard": shard.index,
                "monitors": len(shard.engine.entries),
                "offset": shard.offset,
                "checkpoints": shard.engine.checkpoints_run,
                "atomic_sections": shard.engine.atomic_sections,
                "captures_taken": shard.engine.captures_taken,
                "evaluations_run": shard.engine.evaluations_run,
                "worldstop_seconds": shard.engine.worldstop_seconds,
                "worldstop_max": shard.engine.worldstop_max,
                "evaluate_seconds": shard.engine.evaluate_seconds,
                "incremental_hits": shard.engine.incremental_hits,
                "staged_flushes": shard.engine.staged_flushes,
                "reports": sum(
                    len(entry.reports) for entry in shard.engine.entries
                ),
                "stalls": shard.supervisor.stalls_detected,
            }
            for shard in self._shards
        ]

    def __repr__(self) -> str:
        return (
            f"DetectionCluster(shards={self.shard_count}, "
            f"monitors={len(self._order)}, policy={self.policy.name!r}, "
            f"checkpoints={self.checkpoints_run}, "
            f"worldstop_max={self.worldstop_max:.6f}, "
            f"durable={self.durable_root is not None}, "
            f"pooled={self._pool is not None})"
        )


# ------------------------------------------------------------------ pacing


def shard_process(
    cluster: DetectionCluster,
    index: int,
    *,
    rounds: Optional[int] = None,
    supervised: bool = False,
) -> Iterator[Syscall]:
    """Kernel process pacing one shard on its staggered schedule.

    Every round it sleeps to the shard's next slot — ``offset + k *
    interval`` for the smallest ``k`` strictly in the future, re-reading
    the offset each round so a rebalance (register/unregister) takes
    effect at the next wake — then runs one shard checkpoint.
    ``supervised`` routes the checkpoint through the shard's
    :class:`~repro.detection.supervision.CheckpointSupervisor` with
    retry/backoff and the stall watchdog, like ``supervisor_process``.
    """
    shard = cluster.shards[index]
    supervisor = shard.supervisor
    remaining = rounds
    while remaining is None or remaining > 0:
        now = cluster.kernel.now()
        interval = shard.config.interval
        step = math.floor((now - shard.offset) / interval + 1e-9) + 1
        target = shard.offset + step * interval
        yield Delay(max(0.0, target - now))
        if cluster.stopped or shard.engine.stopped:
            return
        if supervised:
            attempt = 0
            while True:
                completed, __ = supervisor.attempt()
                if completed:
                    break
                if attempt >= supervisor.retries:
                    supervisor.checkpoints_abandoned += 1
                    supervisor.events.append(
                        SupervisorEvent(
                            cluster.kernel.now(),
                            "gave-up",
                            f"shard {index} abandoned after "
                            f"{attempt + 1} attempt(s)",
                        )
                    )
                    break
                backoff = supervisor.retry_delay(attempt)
                attempt += 1
                supervisor.retries_performed += 1
                supervisor.events.append(
                    SupervisorEvent(
                        cluster.kernel.now(),
                        "retry",
                        f"shard {index} attempt {attempt} failed; "
                        f"backing off {backoff:g}",
                    )
                )
                yield Delay(backoff)
            supervisor.check_stall()
        else:
            shard.checkpoint()
        if remaining is not None:
            remaining -= 1
