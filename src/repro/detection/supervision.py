"""Supervision of the detection pipeline itself (degraded-mode operation).

The paper's detector runs continuously beside the workload (Section 3.3's
periodic checkpoints), which makes the detector's *own* failure modes part
of the system's fault model: a rule evaluator that raises, a checkpoint
that stalls, a history sink that saturates.  A run-time monitor is only
trustworthy when those failure modes are bounded — the monitor must never
take the monitored application down with it.

Three mechanisms, all deterministic on the sim kernel:

* :class:`CircuitBreaker` — per-monitor quarantine.  A registered monitor
  whose evaluator raises (in either phase of the two-phase checkpoint —
  a phase-2 throw off the critical path still opens the breaker) or
  repeatedly blows its per-monitor time budget transitions
  CLOSED → OPEN: it is skipped by subsequent batched checkpoints so one
  broken evaluator cannot poison the fleet's shared pipeline.  The
  per-monitor budget (``monitor_check_budget``) times the phase-2
  evaluation — only snapshot/cut time counts as world-stop.  After
  ``breaker_cooldown`` virtual seconds the breaker goes HALF_OPEN and the
  next checkpoint runs a single probe check; a clean probe re-closes the
  breaker, a failing probe re-opens it.
* :class:`CheckpointSupervisor` — wraps :meth:`DetectionEngine.checkpoint`
  (both phases: capture and evaluation) with a wall-clock budget,
  retry-with-exponential-backoff on transient failures
  (``checkpoint_retries`` / ``retry_backoff``), and a stall watchdog
  (``stall_timeout``).  :func:`supervisor_process` is the kernel process
  that paces it — a drop-in replacement for ``engine_process`` whose
  checkpoints can fail without crashing the run.
* **snapshot/restore** — :meth:`CheckpointSupervisor.snapshot_state` /
  :meth:`restore_state` persist per-monitor breaker state, counters, the
  adaptive capture schedule (event-rate EWMA and ``next_due``) and each
  sink's checkpoint base state (via :mod:`repro.history.serialize`), so a
  supervisor restarted after a crash resumes its windows instead of
  re-checking from a cold, divergent base.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterator, Optional

from repro.detection.reports import FaultReport
from repro.errors import RecoveryError
from repro.history.serialize import apply_sink_state, sink_state_to_dict
from repro.kernel.syscalls import Delay, Syscall

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "QuarantineRecord",
    "SupervisorEvent",
    "CheckpointSupervisor",
    "supervisor_process",
]


class BreakerState(enum.Enum):
    """Circuit-breaker lifecycle of one registered monitor's checker."""

    #: Healthy: the monitor is checked at every batched checkpoint.
    CLOSED = "closed"
    #: Quarantined: the monitor is skipped until the cooldown elapses.
    OPEN = "open"
    #: Probing: the next checkpoint runs one trial check to decide.
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN → CLOSED quarantine for one checker.

    Time is the kernel's virtual clock, passed in by the caller, so the
    whole lifecycle is deterministic under the sim kernel.  ``transitions``
    records every state change as ``(time, new_state)`` for audits.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        #: How many times the breaker has opened (quarantine episodes).
        self.times_opened = 0
        #: How many times a half-open probe succeeded and re-closed it.
        self.times_reclosed = 0
        self.last_failure: Optional[str] = None
        self.transitions: list[tuple[float, BreakerState]] = []

    def _move(self, state: BreakerState, now: float) -> None:
        self.state = state
        self.transitions.append((now, state))

    def allow(self, now: float) -> bool:
        """May the monitor be checked at a checkpoint starting ``now``?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.HALF_OPEN:
            return True
        assert self.opened_at is not None
        if now - self.opened_at >= self.cooldown:
            self._move(BreakerState.HALF_OPEN, now)
            return True
        return False

    def record_success(self, now: float) -> None:
        """A check completed cleanly; a half-open probe re-closes."""
        if self.state is BreakerState.HALF_OPEN:
            self.times_reclosed += 1
            self._move(BreakerState.CLOSED, now)
            self.opened_at = None
        self.consecutive_failures = 0
        self.last_failure = None

    def record_failure(self, now: float, reason: str) -> None:
        """A check raised or blew its budget; open when the threshold hits."""
        self.last_failure = reason
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # A failed probe goes straight back to quarantine.
            self.times_opened += 1
            self.opened_at = now
            self._move(BreakerState.OPEN, now)
            return
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.times_opened += 1
            self.opened_at = now
            self._move(BreakerState.OPEN, now)

    @property
    def quarantined(self) -> bool:
        return self.state is BreakerState.OPEN

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state.value}, "
            f"failures={self.consecutive_failures}/{self.failure_threshold}, "
            f"opened={self.times_opened}, reclosed={self.times_reclosed})"
        )


@dataclass(frozen=True)
class QuarantineRecord:
    """One line of the engine's quarantine report."""

    label: str
    state: BreakerState
    consecutive_failures: int
    times_opened: int
    times_reclosed: int
    checkpoints_skipped: int
    last_failure: Optional[str]
    opened_at: Optional[float]

    def render(self) -> str:
        tail = f" last_failure={self.last_failure}" if self.last_failure else ""
        return (
            f"{self.label}: {self.state.value} "
            f"(opened x{self.times_opened}, reclosed x{self.times_reclosed}, "
            f"skipped {self.checkpoints_skipped} checkpoint(s)){tail}"
        )


@dataclass(frozen=True)
class SupervisorEvent:
    """One entry of the supervisor's audit log."""

    time: float
    #: "failure" | "retry" | "gave-up" | "budget" | "stall" from the
    #: checkpoint supervisor itself, plus two raised by the cluster's
    #: evaluation pools: "worker-death" (an evaluator worker process died;
    #: its shard fell back to in-thread evaluation) and "leak" (a pool
    #: worker outlived its close timeout).
    kind: str
    detail: str = ""


class CheckpointSupervisor:
    """Wraps an engine's checkpoint with budget, retries and a watchdog.

    Parameters default to the engine's :class:`DetectorConfig` supervision
    fields; pass overrides for ad-hoc supervision.  The supervisor never
    lets an exception out of :meth:`attempt` — detector failures are data
    (counters and :class:`SupervisorEvent` entries), exactly like detected
    faults are data and not exceptions.
    """

    def __init__(
        self,
        engine,
        *,
        budget: Optional[float] = None,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
        jitter: Optional[float] = None,
        stall_timeout: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        config = engine.config
        self.engine = engine
        self.budget = config.checkpoint_budget if budget is None else budget
        self.retries = config.checkpoint_retries if retries is None else retries
        self.backoff = config.retry_backoff if backoff is None else backoff
        self.jitter = (
            getattr(config, "retry_jitter", 0.0) if jitter is None else jitter
        )
        #: Seeded source of retry jitter.  A fixed default seed keeps any
        #: single supervisor deterministic; callers running many
        #: supervisors (the cluster) seed each differently so their retry
        #: schedules decorrelate instead of stampeding in lockstep.
        self._rng = random.Random(0) if rng is None else rng
        self.stall_timeout = (
            config.stall_timeout if stall_timeout is None else stall_timeout
        )
        self.checkpoints_completed = 0
        #: Rounds in which every attempt (1 + retries) failed.
        self.checkpoints_abandoned = 0
        self.retries_performed = 0
        self.budget_blows = 0
        self.stalls_detected = 0
        self.last_success_at: Optional[float] = None
        #: When supervision began watching (reference before any success).
        self._watch_since: Optional[float] = None
        self._stall_flagged = False
        self.events: list[SupervisorEvent] = []

    # ----------------------------------------------------------- single try

    def attempt(self) -> tuple[bool, list[FaultReport]]:
        """One supervised checkpoint attempt.  Never raises.

        Returns ``(completed, new_reports)``; on failure the exception is
        recorded as a ``"failure"`` event and ``(False, [])`` comes back so
        the caller (usually :func:`supervisor_process`) can back off and
        retry.
        """
        now = self.engine.kernel.now()
        started = perf_counter()
        try:
            reports = self.engine.checkpoint()
        except Exception as exc:  # noqa: BLE001 — the whole point
            self.events.append(
                SupervisorEvent(now, "failure", f"{type(exc).__name__}: {exc}")
            )
            return False, []
        elapsed = perf_counter() - started
        if self.budget is not None and elapsed > self.budget:
            self.budget_blows += 1
            self.events.append(
                SupervisorEvent(
                    now,
                    "budget",
                    f"checkpoint took {elapsed:.4f}s > budget {self.budget:g}s",
                )
            )
        self.checkpoints_completed += 1
        self.last_success_at = self.engine.kernel.now()
        self._stall_flagged = False
        return True, reports

    # -------------------------------------------------------------- backoff

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based): exponential with
        seeded jitter.

        ``backoff * 2**attempt`` stretched by ``1 + U[0, jitter]``.  With
        ``jitter == 0`` this is exactly the historical schedule; with it
        on, supervisors sharing a failing dependency spread their retries
        instead of hammering it in lockstep.  The jitter draw comes from
        this supervisor's own seeded RNG, so sim runs stay deterministic
        and never perturb the kernel's scheduling policy RNG.
        """
        delay = self.backoff * (2**attempt)
        if self.jitter > 0.0:
            delay *= 1.0 + self._rng.random() * self.jitter
        return delay

    # ------------------------------------------------------------- watchdog

    def note_idle(self) -> None:
        """Feed the watchdog on a tick with nothing to attempt.

        An idle pipeline cannot be stalled; marking the idle instant as
        healthy makes the next busy episode measure from now instead of
        from the last completed round long ago.
        """
        self.last_success_at = self.engine.kernel.now()

    def check_stall(self) -> bool:
        """Stall watchdog: has the pipeline gone too long without success?

        Flags (and counts) at most once per stall episode; a completed
        checkpoint re-arms the watchdog.
        """
        if self.stall_timeout is None:
            return False
        now = self.engine.kernel.now()
        if self._watch_since is None:
            self._watch_since = now
        reference = (
            self.last_success_at
            if self.last_success_at is not None
            else self._watch_since
        )
        if now - reference <= self.stall_timeout:
            return self._stall_flagged
        if not self._stall_flagged:
            # Flag (and count) once per stall episode; success re-arms.
            self._stall_flagged = True
            self.stalls_detected += 1
            self.events.append(
                SupervisorEvent(
                    now,
                    "stall",
                    f"no completed checkpoint for {now - reference:g} > "
                    f"stall_timeout {self.stall_timeout:g}",
                )
            )
        return True

    @property
    def stalled(self) -> bool:
        """True while the current stall episode is unresolved."""
        return self._stall_flagged

    # ------------------------------------------------------ snapshot/restore

    def snapshot_state(self) -> dict:
        """JSON-compatible snapshot for restart recovery.

        Captures, per registered monitor: the breaker lifecycle, the
        checkpoint counters, and the event sink's base state + open window
        (:func:`repro.history.serialize.sink_state_to_dict`), so a restarted
        supervisor resumes checking windows where the crashed one stopped.
        """
        return {
            "kind": "supervisor",
            "checkpoints_completed": self.checkpoints_completed,
            "checkpoints_abandoned": self.checkpoints_abandoned,
            "monitors": {
                entry.label: {
                    "breaker_state": entry.breaker.state.value,
                    "consecutive_failures": entry.breaker.consecutive_failures,
                    "times_opened": entry.breaker.times_opened,
                    "times_reclosed": entry.breaker.times_reclosed,
                    "opened_at": entry.breaker.opened_at,
                    "checkpoints_run": entry.checkpoints_run,
                    "checkpoints_skipped": entry.checkpoints_skipped,
                    "event_rate": entry.event_rate,
                    "next_due": entry.next_due,
                    "intervals_skipped": entry.intervals_skipped,
                    "sink": sink_state_to_dict(entry.history),
                }
                for entry in self.engine.entries
            },
        }

    def restore_state(self, snapshot: dict) -> list[str]:
        """Re-apply a :meth:`snapshot_state` dict after a restart.

        Monitors are matched by registration label.  The snapshot's label
        set must equal the registered fleet's: restoring a snapshot from a
        different fleet would silently leave some monitors on cold state
        and others on restored state — an inconsistent cut — so a mismatch
        raises :class:`~repro.errors.RecoveryError` instead.  Returns the
        labels restored.
        """
        if snapshot.get("kind") != "supervisor":
            raise ValueError(f"not a supervisor snapshot: {snapshot.get('kind')!r}")
        saved = snapshot.get("monitors", {})
        live_labels = {entry.label for entry in self.engine.entries}
        if set(saved) != live_labels:
            missing = sorted(live_labels - set(saved))
            extra = sorted(set(saved) - live_labels)
            raise RecoveryError(
                "snapshot does not match the registered monitor fleet: "
                f"snapshot lacks {missing or 'nothing'}, snapshot has "
                f"unregistered {extra or 'nothing'}"
            )
        self.checkpoints_completed = snapshot.get("checkpoints_completed", 0)
        self.checkpoints_abandoned = snapshot.get("checkpoints_abandoned", 0)
        restored: list[str] = []
        for entry in self.engine.entries:
            record = saved.get(entry.label)
            if record is None:
                continue
            breaker = entry.breaker
            breaker.state = BreakerState(record["breaker_state"])
            breaker.consecutive_failures = record["consecutive_failures"]
            breaker.times_opened = record["times_opened"]
            breaker.times_reclosed = record["times_reclosed"]
            breaker.opened_at = record["opened_at"]
            entry.checkpoints_run = record["checkpoints_run"]
            entry.checkpoints_skipped = record["checkpoints_skipped"]
            # Adaptive-schedule fields are absent from pre-split snapshots.
            entry.event_rate = record.get("event_rate", 0.0)
            entry._rate_primed = entry.event_rate > 0.0
            entry.next_due = record.get("next_due")
            entry.intervals_skipped = record.get("intervals_skipped", 0)
            apply_sink_state(entry.history, record["sink"])
            restored.append(entry.label)
        return restored

    def __repr__(self) -> str:
        return (
            f"CheckpointSupervisor(completed={self.checkpoints_completed}, "
            f"abandoned={self.checkpoints_abandoned}, "
            f"retries={self.retries_performed}, stalls={self.stalls_detected})"
        )


def supervisor_process(
    supervisor: CheckpointSupervisor,
    *,
    rounds: Optional[int] = None,
    prelude: Optional[Callable[[], Iterator[Syscall]]] = None,
) -> Iterator[Syscall]:
    """Kernel process pacing a supervised engine.

    A hardened drop-in for :func:`~repro.detection.engine.engine_process`:
    every interval it runs one supervised checkpoint, retrying failed
    attempts up to ``supervisor.retries`` times with exponential backoff
    (``backoff``, ``2*backoff``, ``4*backoff``…, in virtual time) before
    abandoning the round, then polls the stall watchdog.  ``prelude`` (used
    by the chaos harness) is a generator factory spliced in before each
    round's first attempt.
    """
    remaining = rounds
    while remaining is None or remaining > 0:
        yield Delay(supervisor.engine.config.interval)
        if supervisor.engine.stopped:
            return
        if prelude is not None:
            yield from prelude()
        attempt = 0
        while True:
            completed, __ = supervisor.attempt()
            if completed:
                break
            if attempt >= supervisor.retries:
                supervisor.checkpoints_abandoned += 1
                supervisor.events.append(
                    SupervisorEvent(
                        supervisor.engine.kernel.now(),
                        "gave-up",
                        f"abandoned after {attempt + 1} attempt(s)",
                    )
                )
                break
            delay = supervisor.retry_delay(attempt)
            attempt += 1
            supervisor.retries_performed += 1
            supervisor.events.append(
                SupervisorEvent(
                    supervisor.engine.kernel.now(),
                    "retry",
                    f"attempt {attempt} failed; backing off {delay:g}",
                )
            )
            yield Delay(delay)
        supervisor.check_stall()
        if remaining is not None:
            remaining -= 1
