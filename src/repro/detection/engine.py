"""The detection engine: one checking service shared by many monitors.

The paper runs one "fault detection routine" per monitor, and each of its
periodic checks suspends every other process ("upon detection, all other
running processes are suspended and are resumed only after the checking
has finished", Section 4).  With N monitored monitors that is N world
stops per checking interval — the suspend/resume cost grows linearly in
the number of detectors even when each individual check is cheap.

:class:`DetectionEngine` amortises that cost.  Many monitors register with
one engine (each keeping its own Algorithm-1/2/3 state, timeouts and
report stream), and every checking interval the engine runs **one batched
checkpoint**: a single ``kernel.atomic`` section that snapshots and checks
every registered monitor back to back.  The per-interval suspend-the-world
cost becomes one section regardless of monitor count, while the checking
work inside the section is exactly the sum of the per-monitor checks — so
the engine's reports are event-for-event identical to N independent
detectors run on the same trace.

:class:`~repro.detection.detector.FaultDetector` remains the one-monitor
façade over this engine, so existing call sites keep working unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import Iterator, Optional, Union

from repro.detection.algorithm1 import check_general_concurrency_control
from repro.detection.algorithm2 import ResourceStateChecker
from repro.detection.algorithm3 import CallingOrderChecker
from repro.detection.config import DetectorConfig
from repro.detection.replay import sweep_timers
from repro.detection.reports import Confidence, FaultReport
from repro.detection.rules import STRule, is_drop_tolerant
from repro.detection.supervision import CircuitBreaker, QuarantineRecord
from repro.history.database import HistoryDatabase
from repro.history.events import SchedulingEvent
from repro.history.sink import EventSink, Segment
from repro.kernel.syscalls import Delay, Syscall
from repro.monitor.construct import Monitor, MonitorBase

__all__ = ["RegisteredMonitor", "DetectionEngine", "engine_process"]

MonitorLike = Union[Monitor, MonitorBase]


def _unwrap(target: MonitorLike) -> Monitor:
    return target.monitor if isinstance(target, MonitorBase) else target


class RegisteredMonitor:
    """Per-monitor detection state held by the engine.

    Owns what the seed's ``FaultDetector`` owned for one monitor: the
    attached event sink, the Algorithm-2/3 checker instances selected from
    the declaration, the real-time Algorithm-3 tap, and the monitor's
    report stream.  :meth:`check` runs one checkpoint's worth of checking
    for this monitor — the engine calls it for every registration inside a
    single atomic section.
    """

    def __init__(self, monitor: Monitor, config: DetectorConfig, label: str) -> None:
        self.monitor = monitor
        self.config = config
        self.label = label
        if monitor.history is None:
            monitor.core.attach_history(HistoryDatabase())
        history = monitor.history
        assert history is not None
        if not history.opened:
            history.open(monitor.core.snapshot())
        self.history: EventSink = history
        declaration = monitor.declaration
        self.algorithm2: Optional[ResourceStateChecker] = None
        if declaration.mtype.needs_resource_checking:
            checker = ResourceStateChecker(declaration)
            if checker.applicable:
                self.algorithm2 = checker
        self.algorithm3: Optional[CallingOrderChecker] = None
        self._tapped = False
        if declaration.mtype.needs_order_checking or declaration.call_order:
            self.algorithm3 = CallingOrderChecker(declaration)
            if config.realtime_orders:
                history.subscribe(self._on_event)
                self._tapped = True
        self.reports: list[FaultReport] = []
        self.checkpoints_run = 0
        #: Circuit breaker quarantining this monitor's checker when it
        #: raises or repeatedly blows ``config.monitor_check_budget``.
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failure_threshold,
            cooldown=config.breaker_cooldown,
        )
        #: Checkpoints this monitor sat out while quarantined.
        self.checkpoints_skipped = 0
        #: Events the sink reported dropped inside windows this entry cut.
        self.dropped_in_windows = 0
        #: Windows evaluated in degraded mode (incomplete event sequence).
        self.degraded_windows = 0

    # ------------------------------------------------------------- real time

    def _on_event(self, event: SchedulingEvent) -> None:
        assert self.algorithm3 is not None
        self.reports.extend(self.algorithm3.on_event(event))

    def detach(self) -> None:
        """Remove the real-time Algorithm-3 tap from the event sink."""
        if self._tapped:
            self.history.unsubscribe(self._on_event)
            self._tapped = False

    @property
    def tapped(self) -> bool:
        """True while the real-time order tap is attached to the sink."""
        return self._tapped

    # -------------------------------------------------------------- checking

    def check(self) -> list[FaultReport]:
        """One monitor's share of a batched checkpoint.

        Must run inside the engine's atomic section: snapshot the actual
        state, cut the history window, and evaluate Algorithm-1 (always),
        Algorithm-2 (communication coordinators) and Algorithm-3's replay
        and timer sweep (allocators).

        When the sink dropped events inside the window
        (``segment.dropped > 0``) the window cannot support the replay/
        comparison rules: only drop-tolerant rules survive (see
        :data:`repro.detection.rules.DROP_TOLERANT`) and their reports are
        downgraded to :attr:`Confidence.DEGRADED` — a truncated trace must
        degrade, not false-positive.
        """
        snapshot = self.monitor.core.snapshot()
        segment = self.history.cut(snapshot)
        found = check_general_concurrency_control(
            self.monitor.declaration,
            segment,
            tmax=self.config.tmax,
            tio=self.config.tio,
        )
        if self.algorithm2 is not None:
            found.extend(self.algorithm2.check_window(segment))
        if self.algorithm3 is not None:
            if not self.config.realtime_orders and segment.complete:
                # Window replay of calling orders needs every event; on a
                # lossy window the real-time tap (when on) already saw the
                # true sequence, and the replay would start mid-pattern.
                for event in segment.events:
                    found.extend(self.algorithm3.on_event(event))
            if self.config.tlimit is not None:
                found.extend(
                    self.algorithm3.periodic(snapshot.time, self.config.tlimit)
                )
        self.checkpoints_run += 1
        if not segment.complete:
            self.dropped_in_windows += segment.dropped
            self.degraded_windows += 1
            found = self._degrade(found, segment)
            if self.algorithm2 is not None:
                # The lossy window desynchronised Algorithm-2's cumulative
                # counters; re-base them on the snapshot so later complete
                # windows don't report ST-7a on a healthy monitor.
                self.algorithm2.resync(segment.current)
        return found

    def _degrade(
        self, found: list[FaultReport], segment: Segment
    ) -> list[FaultReport]:
        """Keep only drop-tolerant findings, downgraded to DEGRADED.

        The snapshot-witnessed mutual-exclusion violation (ST-3a with no
        triggering event) is kept too: it reads the actual state directly
        and needs no events at all — but the surrounding window is still
        lossy, so it is downgraded like the timer sweeps.

        ST-5/6 are re-derived from the current snapshot
        (:func:`~repro.detection.replay.sweep_timers`): the replay sweep
        covers only entries it reconstructed from surviving events, so on a
        lossy window it can miss exactly the wedged process the timer rules
        exist to catch.  The snapshot's queue entries carry their own
        ``since`` timestamps, making the snapshot sweep exact without any
        events.
        """
        kept: list[FaultReport] = []
        for report in found:
            if report.rule in (STRule.TMAX_EXCEEDED, STRule.TIO_EXCEEDED):
                continue  # replaced by the snapshot sweep below
            snapshot_witnessed = (
                report.rule is STRule.ONE_INSIDE and report.event_seq is None
            )
            if is_drop_tolerant(report.rule) or snapshot_witnessed:
                kept.append(replace(report, confidence=Confidence.DEGRADED))
        kept.extend(
            replace(report, confidence=Confidence.DEGRADED)
            for report in sweep_timers(
                segment.current,
                self.monitor.name,
                tmax=self.config.tmax,
                tio=self.config.tio,
                window_start=segment.previous.time,
            )
        )
        return kept

    @property
    def quarantined(self) -> bool:
        """True while this monitor's breaker is OPEN (checker sat out)."""
        return self.breaker.quarantined

    def quarantine_record(self) -> QuarantineRecord:
        """One line of the engine's quarantine report for this monitor."""
        return QuarantineRecord(
            label=self.label,
            state=self.breaker.state,
            consecutive_failures=self.breaker.consecutive_failures,
            times_opened=self.breaker.times_opened,
            times_reclosed=self.breaker.times_reclosed,
            checkpoints_skipped=self.checkpoints_skipped,
            last_failure=self.breaker.last_failure,
            opened_at=self.breaker.opened_at,
        )

    def __repr__(self) -> str:
        return (
            f"RegisteredMonitor({self.label!r}, "
            f"reports={len(self.reports)}, checkpoints={self.checkpoints_run}, "
            f"breaker={self.breaker.state.value})"
        )


class DetectionEngine:
    """Shared checking service over any number of registered monitors.

    Parameters
    ----------
    kernel:
        The execution substrate all registered monitors must live on (the
        batched checkpoint is one ``kernel.atomic`` section).
    config:
        Default :class:`DetectorConfig` applied to registrations that do
        not bring their own; its ``interval`` paces :func:`engine_process`.
    """

    def __init__(self, kernel, config: Optional[DetectorConfig] = None) -> None:
        self.kernel = kernel
        self.config = config or DetectorConfig()
        self._entries: list[RegisteredMonitor] = []
        self._by_label: dict[str, RegisteredMonitor] = {}
        self.checkpoints_run = 0
        #: Number of ``kernel.atomic`` sections entered for checking — one
        #: per checkpoint regardless of how many monitors are registered.
        #: (The per-monitor baseline pays one section per monitor instead.)
        self.atomic_sections = 0
        #: Accumulated wall-clock seconds spent inside checkpoints
        #: (overhead accounting for the Table-1 experiment).
        self.checking_seconds = 0.0
        #: Per-monitor check invocations that raised (absorbed by the
        #: breaker instead of escaping the atomic section).
        self.check_failures = 0
        self._stopped = False

    # ---------------------------------------------------------- registration

    def register(
        self,
        target: MonitorLike,
        config: Optional[DetectorConfig] = None,
        *,
        label: Optional[str] = None,
    ) -> RegisteredMonitor:
        """Add a monitor to the batched checkpoint.

        ``label`` keys the monitor in :meth:`reports_by_monitor`; it
        defaults to the monitor's declared name, suffixed ``#2``, ``#3``…
        when several registered monitors share one name.
        """
        monitor = _unwrap(target)
        if monitor.kernel is not self.kernel:
            raise ValueError(
                f"monitor {monitor.name!r} lives on a different kernel than "
                "the engine; register it with an engine on its own kernel"
            )
        base = label or monitor.name
        unique, suffix = base, 2
        while unique in self._by_label:
            unique = f"{base}#{suffix}"
            suffix += 1
        entry = RegisteredMonitor(monitor, config or self.config, unique)
        self._entries.append(entry)
        self._by_label[unique] = entry
        return entry

    def unregister(self, target: Union[MonitorLike, RegisteredMonitor]) -> None:
        """Detach a monitor's real-time tap and drop it from checkpoints."""
        if isinstance(target, RegisteredMonitor):
            entry = target
        else:
            monitor = _unwrap(target)
            matches = [e for e in self._entries if e.monitor is monitor]
            if not matches:
                raise ValueError(f"monitor {monitor.name!r} is not registered")
            entry = matches[0]
        entry.detach()
        self._entries.remove(entry)
        del self._by_label[entry.label]

    @property
    def entries(self) -> tuple[RegisteredMonitor, ...]:
        return tuple(self._entries)

    @property
    def monitors(self) -> tuple[Monitor, ...]:
        return tuple(entry.monitor for entry in self._entries)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(entry.label for entry in self._entries)

    def entry_for(self, target: Union[MonitorLike, str]) -> RegisteredMonitor:
        """Look a registration up by label or by monitor object."""
        if isinstance(target, str):
            return self._by_label[target]
        monitor = _unwrap(target)
        for entry in self._entries:
            if entry.monitor is monitor:
                return entry
        raise KeyError(f"monitor {monitor.name!r} is not registered")

    # -------------------------------------------------------------- lifecycle

    def stop(self) -> None:
        """Ask a spawned ``engine_process`` to finish after its next wake.

        Also detaches every registered monitor's real-time tap, so a
        retired engine stops charging the recording hot path.
        """
        self._stopped = True
        for entry in self._entries:
            entry.detach()

    @property
    def stopped(self) -> bool:
        return self._stopped

    # --------------------------------------------------------------- checking

    def checkpoint(self) -> list[FaultReport]:
        """Run one batched periodic check over every registered monitor.

        All snapshots, history cuts and rule evaluations execute inside a
        *single* atomic section — the engine's whole point: the
        suspend-the-world cost is paid once per interval, not once per
        monitor.  Returns the new reports (also retained per monitor).
        """
        started = perf_counter()
        try:
            new_reports = self.kernel.atomic(self._checkpoint_locked)
        finally:
            self.checking_seconds += perf_counter() - started
        self.checkpoints_run += 1
        return new_reports

    def _checkpoint_locked(self) -> list[FaultReport]:
        self.atomic_sections += 1
        now = self.kernel.now()
        found: list[FaultReport] = []
        for entry in list(self._entries):
            if not entry.breaker.allow(now):
                entry.checkpoints_skipped += 1
                continue
            started = perf_counter()
            try:
                reports = entry.check()
            except Exception as exc:  # noqa: BLE001 — quarantine, not crash
                # One broken evaluator must not poison the fleet's shared
                # checkpoint: absorb, count, and let the breaker decide.
                self.check_failures += 1
                entry.breaker.record_failure(
                    now, f"{type(exc).__name__}: {exc}"
                )
                continue
            elapsed = perf_counter() - started
            budget = entry.config.monitor_check_budget
            if budget is not None and elapsed > budget:
                entry.breaker.record_failure(
                    now, f"check took {elapsed:.4f}s > budget {budget:g}s"
                )
            else:
                entry.breaker.record_success(now)
            entry.reports.extend(reports)
            found.extend(reports)
        return found

    # ------------------------------------------------------------- reporting

    @property
    def reports(self) -> list[FaultReport]:
        """All reports across registered monitors, in registration order."""
        merged: list[FaultReport] = []
        for entry in self._entries:
            merged.extend(entry.reports)
        return merged

    def reports_by_monitor(self) -> dict[str, list[FaultReport]]:
        """Per-monitor report streams, keyed by registration label."""
        return {entry.label: list(entry.reports) for entry in self._entries}

    def reports_for_rule(self, rule) -> list[FaultReport]:
        return [report for report in self.reports if report.rule is rule]

    def implicated_faults(self) -> frozenset:
        """Union of suspected fault classes over all monitors' reports."""
        suspects: set = set()
        for entry in self._entries:
            for report in entry.reports:
                suspects.update(report.suspected_faults)
        return frozenset(suspects)

    def reports_by_confidence(self) -> dict[Confidence, list[FaultReport]]:
        """All reports split into confirmed vs degraded streams."""
        split: dict[Confidence, list[FaultReport]] = {
            confidence: [] for confidence in Confidence
        }
        for report in self.reports:
            split[report.confidence].append(report)
        return split

    @property
    def clean(self) -> bool:
        """True when no registered monitor has reported a violation."""
        return all(not entry.reports for entry in self._entries)

    @property
    def confirmed_clean(self) -> bool:
        """True when no *confirmed* violation exists (degraded advisories
        from lossy windows are tolerated)."""
        return all(
            report.confidence is not Confidence.CONFIRMED
            for report in self.reports
        )

    # ------------------------------------------------------------ resilience

    @property
    def quarantined(self) -> tuple[RegisteredMonitor, ...]:
        """Registered monitors currently sitting out checkpoints (OPEN)."""
        return tuple(e for e in self._entries if e.quarantined)

    def quarantine_report(self) -> list[QuarantineRecord]:
        """Breaker status of every monitor whose breaker ever left CLOSED.

        The explicit surface for "this monitor's checker is broken": one
        record per monitor with a quarantine history, renderable for logs.
        """
        return [
            entry.quarantine_record()
            for entry in self._entries
            if entry.breaker.transitions or entry.breaker.consecutive_failures
        ]

    @property
    def dropped_events(self) -> int:
        """Events dropped across all registered monitors' sinks.

        Counts at the sink (total ever dropped), so lossy runs are visible
        from the engine without digging into each ring buffer.
        """
        return sum(entry.history.dropped_events for entry in self._entries)

    @property
    def dropped_in_windows(self) -> int:
        """Per-window drop counts accumulated over cut checking windows."""
        return sum(entry.dropped_in_windows for entry in self._entries)

    @property
    def degraded_windows(self) -> int:
        """Checking windows evaluated in degraded (lossy) mode."""
        return sum(entry.degraded_windows for entry in self._entries)

    def __repr__(self) -> str:
        return (
            f"DetectionEngine(monitors={len(self._entries)}, "
            f"checkpoints={self.checkpoints_run}, "
            f"reports={sum(len(e.reports) for e in self._entries)}, "
            f"dropped_events={self.dropped_events}, "
            f"degraded_windows={self.degraded_windows}, "
            f"quarantined={len(self.quarantined)})"
        )


def engine_process(
    engine: DetectionEngine,
    *,
    rounds: Optional[int] = None,
) -> Iterator[Syscall]:
    """Kernel process body invoking the engine every ``config.interval``.

    One process replaces N ``detector_process`` instances: every interval
    it runs one batched checkpoint over all registered monitors.  Runs
    ``rounds`` checkpoints (forever when None) or until
    :meth:`DetectionEngine.stop` is called::

        kernel.spawn(engine_process(engine), name="detection-engine")
    """
    remaining = rounds
    while remaining is None or remaining > 0:
        yield Delay(engine.config.interval)
        if engine.stopped:
            return
        engine.checkpoint()
        if remaining is not None:
            remaining -= 1
