"""The detection engine: one checking service shared by many monitors.

The paper runs one "fault detection routine" per monitor, and each of its
periodic checks suspends every other process ("upon detection, all other
running processes are suspended and are resumed only after the checking
has finished", Section 4).  With N monitored monitors that is N world
stops per checking interval — the suspend/resume cost grows linearly in
the number of detectors even when each individual check is cheap.

:class:`DetectionEngine` amortises that cost twice over.  Many monitors
register with one engine (each keeping its own Algorithm-1/2/3 state,
timeouts and report stream), and every checking interval the engine runs
one **two-phase checkpoint**:

* **Phase 1 — capture** (inside a single ``kernel.atomic`` section): for
  every due, non-quarantined monitor, snapshot the actual scheduling
  state and cut the history window, enqueueing an immutable
  :class:`CheckpointCapture` per monitor.  This is all the world-stop
  pays for: O(snapshot + cut) per monitor, no rule evaluation.
* **Phase 2 — evaluate** (outside the atomic section, workload running):
  drain the capture queue in registration order and run Algorithm-1,
  Algorithm-2's window check, Algorithm-3's replay/timer sweep and the
  degraded-mode path over each frozen capture.

Because every input a rule evaluator reads (the snapshot, the cut
segment, the frozen Request-List) is captured atomically in phase 1, the
reports are event-for-event identical to evaluating inside the section —
same rules, pids, timestamps and confidences, in the same order — while
the suspend-the-world window shrinks from O(rule evaluation) to
O(snapshot).  A checker that throws in phase 2 still trips its circuit
breaker; ``monitor_check_budget`` now times phase-2 evaluation.

On top of the captures, **adaptive per-monitor intervals**
(``DetectorConfig.adaptive_intervals``) let idle monitors sit out
phase 1: an EWMA of each monitor's event rate (from its segment sizes)
schedules a per-monitor ``next_due`` within the config's min/max bounds.
Skips are drop-safe: a monitor whose
:class:`~repro.history.bounded.BoundedHistory` is at risk of evicting
events before ``next_due`` is captured immediately — a skipped interval
must never silently lose a window.

:class:`~repro.detection.detector.FaultDetector` remains the one-monitor
façade over this engine, so existing call sites keep working unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Iterator, Optional, Union

from repro.detection.algorithm1 import (
    IncrementalConcurrencyChecker,
    check_general_concurrency_control,
)
from repro.detection.algorithm2 import ResourceStateChecker
from repro.detection.algorithm3 import CallingOrderChecker, sweep_request_list
from repro.detection.config import DetectorConfig
from repro.detection.replay import sweep_timers
from repro.detection.reports import Confidence, FaultReport
from repro.detection.rules import degrade_to_drop_tolerant
from repro.detection.supervision import CircuitBreaker, QuarantineRecord
from repro.history.database import HistoryDatabase
from repro.history.events import SchedulingEvent
from repro.history.sink import EventSink, Segment
from repro.history.states import SchedulingState
from repro.ids import Pid
from repro.kernel.syscalls import Delay, Syscall
from repro.observability.registry import MetricsRegistry
from repro.monitor.construct import Monitor, MonitorBase

__all__ = [
    "CheckpointCapture",
    "RegisteredMonitor",
    "DetectionEngine",
    "engine_process",
    "evaluate_capture",
]

MonitorLike = Union[Monitor, MonitorBase]


def _unwrap(target: MonitorLike) -> Monitor:
    return target.monitor if isinstance(target, MonitorBase) else target


@dataclass(frozen=True)
class CheckpointCapture:
    """One monitor's phase-1 capture: everything phase 2 needs, frozen.

    Produced inside the atomic section by :meth:`RegisteredMonitor.capture`
    and consumed outside it by :meth:`RegisteredMonitor.evaluate`.  All
    fields are immutable snapshots, so evaluation never races the
    still-running workload: ``snapshot`` is the scheduling state at the
    checkpoint, ``segment`` the cut history window, ``request_list`` the
    Algorithm-3 Request-List as it stood at the checkpoint (None when the
    monitor has no order checker), and ``taken_at`` the kernel's virtual
    time of the capture — the timestamp breaker decisions and timer sweeps
    are anchored to.
    """

    entry: "RegisteredMonitor"
    snapshot: SchedulingState
    segment: Segment
    request_list: Optional[tuple[tuple[Pid, float], ...]]
    taken_at: float


def _degrade_window(
    found: list[FaultReport],
    segment: Segment,
    *,
    monitor_name: str,
    tmax: Optional[float],
    tio: Optional[float],
) -> list[FaultReport]:
    """Keep only drop-tolerant findings, downgraded to DEGRADED.

    The filter itself is the pure
    :func:`~repro.detection.rules.degrade_to_drop_tolerant`; ST-5/6
    are then re-derived from the current snapshot
    (:func:`~repro.detection.replay.sweep_timers`): the replay sweep
    covers only entries it reconstructed from surviving events, so on
    a lossy window it can miss exactly the wedged process the timer
    rules exist to catch.  The snapshot's queue entries carry their
    own ``since`` timestamps, making the snapshot sweep exact without
    any events.
    """
    kept = degrade_to_drop_tolerant(found)
    kept.extend(
        replace(report, confidence=Confidence.DEGRADED)
        for report in sweep_timers(
            segment.current,
            monitor_name,
            tmax=tmax,
            tio=tio,
            window_start=segment.previous.time,
        )
    )
    return kept


def evaluate_capture(
    declaration,
    config: DetectorConfig,
    *,
    monitor_name: str,
    algorithm1: Optional[IncrementalConcurrencyChecker],
    algorithm2: Optional[ResourceStateChecker],
    algorithm3: Optional[CallingOrderChecker],
    order_checking: bool,
    snapshot: SchedulingState,
    segment: Segment,
    request_list: Optional[tuple[tuple[Pid, float], ...]],
) -> list[FaultReport]:
    """Run every rule over one frozen capture — the phase-2 seam.

    Pure over its inputs apart from the checker instances it advances
    (Algorithm-1 carried lists, Algorithm-2 cumulative counters,
    Algorithm-3 replay state); shared verbatim by the in-process
    :meth:`RegisteredMonitor.evaluate` and the process plane's shadow
    streams (:mod:`repro.detection.procpool`), which is what makes thread
    and process evaluation byte-identical.

    ``order_checking`` is passed separately from ``algorithm3`` because a
    realtime-tap shadow stream has no checker instance at all — the frozen
    ``request_list`` plus the pure sweep is the entirety of its phase-2
    order checking.
    """
    if algorithm1 is not None:
        found = algorithm1.check_window(
            segment, tmax=config.tmax, tio=config.tio
        )
    else:
        found = check_general_concurrency_control(
            declaration, segment, tmax=config.tmax, tio=config.tio
        )
    if algorithm2 is not None:
        found.extend(algorithm2.check_window(segment))
    if order_checking:
        if not config.realtime_orders and segment.complete:
            # Window replay of calling orders needs every event; on a
            # lossy window the real-time tap (when on) already saw the
            # true sequence, and the replay would start mid-pattern.
            assert algorithm3 is not None
            for event in segment.events:
                found.extend(algorithm3.on_event(event))
        if config.tlimit is not None:
            if config.realtime_orders:
                # Tap mode: sweep the Request-List frozen in phase 1 —
                # consistent with the snapshot even though the live
                # list has moved on since the section ended.
                assert request_list is not None
                found.extend(
                    sweep_request_list(
                        request_list, monitor_name, snapshot.time,
                        config.tlimit,
                    )
                )
            else:
                # Replay mode: the sweep must see the list as the
                # replay above just rebuilt it.
                assert algorithm3 is not None
                found.extend(algorithm3.periodic(snapshot.time, config.tlimit))
    if not segment.complete:
        found = _degrade_window(
            found,
            segment,
            monitor_name=monitor_name,
            tmax=config.tmax,
            tio=config.tio,
        )
        if algorithm2 is not None:
            # The lossy window desynchronised Algorithm-2's cumulative
            # counters; re-base them on the snapshot so later complete
            # windows don't report ST-7a on a healthy monitor.
            algorithm2.resync(segment.current)
    return found


class RegisteredMonitor:
    """Per-monitor detection state held by the engine.

    Owns what the seed's ``FaultDetector`` owned for one monitor: the
    attached event sink, the Algorithm-2/3 checker instances selected from
    the declaration, the real-time Algorithm-3 tap, and the monitor's
    report stream.  One checkpoint's worth of checking is split in two:
    :meth:`capture` (phase 1, inside the engine's atomic section) freezes
    the snapshot and history window; :meth:`evaluate` (phase 2, outside
    the section) runs the rules over the frozen capture.
    """

    def __init__(self, monitor: Monitor, config: DetectorConfig, label: str) -> None:
        self.monitor = monitor
        self.config = config
        self.label = label
        if monitor.history is None:
            monitor.core.attach_history(HistoryDatabase())
        history = monitor.history
        assert history is not None
        if not history.opened:
            history.open(monitor.core.snapshot())
        self.history: EventSink = history
        declaration = monitor.declaration
        #: Incremental Algorithm-1 state (None = stateless full re-walk).
        self.algorithm1: Optional[IncrementalConcurrencyChecker] = None
        if config.incremental_checking:
            self.algorithm1 = IncrementalConcurrencyChecker(declaration)
        self.algorithm2: Optional[ResourceStateChecker] = None
        if declaration.mtype.needs_resource_checking:
            checker = ResourceStateChecker(declaration)
            if checker.applicable:
                self.algorithm2 = checker
        self.algorithm3: Optional[CallingOrderChecker] = None
        self._tapped = False
        if declaration.mtype.needs_order_checking or declaration.call_order:
            self.algorithm3 = CallingOrderChecker(declaration)
            if config.realtime_orders:
                history.subscribe(self._on_event)
                self._tapped = True
        self.reports: list[FaultReport] = []
        self.checkpoints_run = 0
        #: Circuit breaker quarantining this monitor's checker when it
        #: raises or repeatedly blows ``config.monitor_check_budget``.
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failure_threshold,
            cooldown=config.breaker_cooldown,
        )
        #: Checkpoints this monitor sat out while quarantined.
        self.checkpoints_skipped = 0
        #: Events the sink reported dropped inside windows this entry cut.
        self.dropped_in_windows = 0
        #: Windows evaluated in degraded mode (incomplete event sequence).
        self.degraded_windows = 0
        # ------------------------------------------------- adaptive schedule
        #: EWMA of this monitor's event rate (events / virtual second).
        self.event_rate = 0.0
        self._rate_primed = False
        #: Virtual time of the next mandatory capture (None = never scheduled;
        #: the first checkpoint always captures).
        self.next_due: Optional[float] = None
        #: Phase-1 rounds skipped because the monitor was not yet due.
        self.intervals_skipped = 0
        #: Captures taken *before* ``next_due`` because skipping risked
        #: evicting events from a bounded sink (drop-safety overrides).
        self.forced_captures = 0

    # ------------------------------------------------------------- real time

    def _on_event(self, event: SchedulingEvent) -> None:
        assert self.algorithm3 is not None
        self.reports.extend(self.algorithm3.on_event(event))

    def detach(self) -> None:
        """Remove the real-time Algorithm-3 tap from the event sink."""
        if self._tapped:
            self.history.unsubscribe(self._on_event)
            self._tapped = False

    @property
    def tapped(self) -> bool:
        """True while the real-time order tap is attached to the sink."""
        return self._tapped

    # ----------------------------------------------------- adaptive schedule

    def due(self, now: float) -> bool:
        """Must this monitor be captured at a phase 1 starting ``now``?

        Always true with adaptive intervals off (every monitor, every
        interval — the paper's fixed-period checking) and for the first
        checkpoint.  Otherwise a monitor is due when its ``next_due`` has
        arrived, or early when skipping is not drop-safe: a bounded sink
        already holding a lossy window, or predicted to evict events
        before ``next_due``, is cut *now* rather than silently losing part
        of the window to ring-buffer eviction.
        """
        if not self.config.adaptive_intervals or self.next_due is None:
            return True
        if now >= self.next_due - 1e-12:
            return True
        if self._eviction_risk(now):
            self.forced_captures += 1
            return True
        return False

    def _eviction_risk(self, now: float) -> bool:
        capacity = getattr(self.history, "capacity", None)
        if capacity is None:
            return False  # unbounded sink: a skip can never drop events
        if getattr(self.history, "pending_dropped", 0) > 0:
            return True  # window already lossy: cut before it loses more
        assert self.next_due is not None
        predicted = self.event_rate * (self.next_due - now)
        # 2x headroom: the EWMA underestimates bursts by construction.
        return self.history.live_events + 2.0 * predicted >= capacity

    def _reschedule(self, segment: Segment, now: float) -> None:
        """Fold one cut window into the EWMA and pick the next due time."""
        config = self.config
        if not config.adaptive_intervals:
            return
        duration = segment.duration
        if duration > 0:
            rate = len(segment) / duration
            if self._rate_primed:
                alpha = config.ewma_alpha
                self.event_rate = alpha * rate + (1.0 - alpha) * self.event_rate
            else:
                self.event_rate = rate
                self._rate_primed = True
        lo = config.effective_min_interval
        hi = config.effective_max_interval
        if self.event_rate <= 0.0:
            interval = hi
        else:
            interval = min(
                max(config.adaptive_target_events / self.event_rate, lo), hi
            )
        self.next_due = now + interval

    # ------------------------------------------------------ phase 1: capture

    def capture(self, now: float) -> CheckpointCapture:
        """Phase 1: freeze this monitor's checkpoint inputs.

        Must run inside the engine's atomic section.  Snapshots the actual
        state, cuts the history window, freezes the Algorithm-3
        Request-List (the real-time tap keeps mutating the live list once
        the section ends) and advances the adaptive schedule.  No rule
        runs here — this is the entirety of the monitor's world-stop cost.
        """
        snapshot = self.monitor.core.snapshot()
        segment = self.history.cut(snapshot)
        request_list = (
            tuple(self.algorithm3.request_list)
            if self.algorithm3 is not None
            else None
        )
        self._reschedule(segment, now)
        return CheckpointCapture(
            entry=self,
            snapshot=snapshot,
            segment=segment,
            request_list=request_list,
            taken_at=now,
        )

    # ----------------------------------------------------- phase 2: evaluate

    def evaluate(self, capture: CheckpointCapture) -> list[FaultReport]:
        """Phase 2: run every rule over one frozen capture.

        Runs *outside* the atomic section — the workload is live again —
        which is safe because the capture is immutable and the mutable
        checker state touched here (Algorithm-2 counters, Algorithm-3
        replay state when the real-time tap is off) is only ever advanced
        by checkpoints, which the engine serialises.

        When the sink dropped events inside the window
        (``segment.dropped > 0``) the window cannot support the replay/
        comparison rules: only drop-tolerant rules survive (see
        :func:`repro.detection.rules.degrade_to_drop_tolerant`) and their
        reports are downgraded to :attr:`Confidence.DEGRADED` — a
        truncated trace must degrade, not false-positive.
        """
        found = evaluate_capture(
            self.monitor.declaration,
            self.config,
            monitor_name=self.monitor.name,
            algorithm1=self.algorithm1,
            algorithm2=self.algorithm2,
            algorithm3=self.algorithm3,
            order_checking=self.algorithm3 is not None,
            snapshot=capture.snapshot,
            segment=capture.segment,
            request_list=capture.request_list,
        )
        self.checkpoints_run += 1
        if not capture.segment.complete:
            self.dropped_in_windows += capture.segment.dropped
            self.degraded_windows += 1
        return found

    def check(self) -> list[FaultReport]:
        """Capture and evaluate in one call (single-phase convenience).

        Equivalent to one engine checkpoint for this monitor alone; kept
        for direct callers and tests.  Goes through the instance's
        ``evaluate`` attribute so wrappers installed on it (the chaos
        harness's sabotage) apply here too.
        """
        return self.evaluate(self.capture(self.monitor.kernel.now()))

    # ------------------------------------------------------ state hand-off

    def export_stream_spec(self) -> dict:
        """Everything a shadow evaluator needs to mirror this entry.

        The declaration travels as rendered text (the same
        render/parse seam the detection service uses — no pickling of
        monitor objects), the per-entry rule configuration as plain
        scalars, and the current checker state via the ``state_dict``
        surface.  In realtime-order mode Algorithm-3 stays home: the live
        tap owns its state, and phase 2 only needs the frozen
        Request-List each capture already carries.
        """
        return {
            "label": self.label,
            "monitor_name": self.monitor.name,
            "declaration": self.monitor.declaration.render(),
            "config": {
                "tmax": self.config.tmax,
                "tio": self.config.tio,
                "tlimit": self.config.tlimit,
                "realtime_orders": self.config.realtime_orders,
                "incremental_checking": self.config.incremental_checking,
            },
            "state": self.export_checker_state(),
        }

    def export_checker_state(self) -> dict:
        """The carried phase-2 checker state, JSON-compatible."""
        return {
            "algorithm1": (
                None if self.algorithm1 is None else self.algorithm1.state_dict()
            ),
            "algorithm2": (
                None if self.algorithm2 is None else self.algorithm2.state_dict()
            ),
            "algorithm3": (
                self.algorithm3.state_dict()
                if self.algorithm3 is not None
                and not self.config.realtime_orders
                else None
            ),
        }

    def import_checker_state(self, record: dict, *, basis=None) -> None:
        """Adopt a shadow evaluator's checker state after a batch.

        ``basis`` is the state object Algorithm-1's carried lists were
        left matching (the last evaluated window's ``current``); passing
        the engine's own object restores the identity-based carry, so a
        later in-thread window continues incrementally instead of
        rebasing.
        """
        raw = record.get("algorithm1")
        if raw is not None and self.algorithm1 is not None:
            self.algorithm1.restore_state(raw, basis=basis)
        raw = record.get("algorithm2")
        if raw is not None and self.algorithm2 is not None:
            self.algorithm2.restore_state(raw)
        raw = record.get("algorithm3")
        if (
            raw is not None
            and self.algorithm3 is not None
            and not self.config.realtime_orders
        ):
            self.algorithm3.restore_state(raw)

    # --------------------------------------------------- hot-path accounting

    @property
    def incremental_hits(self) -> int:
        """Windows evaluated on carried checking lists (no re-seeding)."""
        return 0 if self.algorithm1 is None else self.algorithm1.hits

    @property
    def incremental_rebases(self) -> int:
        """Windows that re-seeded the checking lists from the snapshot."""
        return 0 if self.algorithm1 is None else self.algorithm1.rebases

    @property
    def incremental_fastpaths(self) -> int:
        """Zero-event carried windows that skipped the full comparison."""
        return 0 if self.algorithm1 is None else self.algorithm1.fastpaths

    @property
    def staged_events(self) -> int:
        """Events this monitor's sink flushed through its staging buffer."""
        return getattr(self.history, "staged_events", 0)

    @property
    def staged_flushes(self) -> int:
        """Staged-batch flushes performed by this monitor's sink."""
        return getattr(self.history, "staged_flushes", 0)

    @property
    def quarantined(self) -> bool:
        """True while this monitor's breaker is OPEN (checker sat out)."""
        return self.breaker.quarantined

    def quarantine_record(self) -> QuarantineRecord:
        """One line of the engine's quarantine report for this monitor."""
        return QuarantineRecord(
            label=self.label,
            state=self.breaker.state,
            consecutive_failures=self.breaker.consecutive_failures,
            times_opened=self.breaker.times_opened,
            times_reclosed=self.breaker.times_reclosed,
            checkpoints_skipped=self.checkpoints_skipped,
            last_failure=self.breaker.last_failure,
            opened_at=self.breaker.opened_at,
        )

    def __repr__(self) -> str:
        return (
            f"RegisteredMonitor({self.label!r}, "
            f"reports={len(self.reports)}, checkpoints={self.checkpoints_run}, "
            f"skipped={self.intervals_skipped}, "
            f"breaker={self.breaker.state.value})"
        )


class DetectionEngine:
    """Shared checking service over any number of registered monitors.

    Parameters
    ----------
    kernel:
        The execution substrate all registered monitors must live on (the
        phase-1 capture sweep is one ``kernel.atomic`` section).
    config:
        Default :class:`DetectorConfig` applied to registrations that do
        not bring their own; its ``interval`` paces :func:`engine_process`.
    """

    def __init__(self, kernel, config: Optional[DetectorConfig] = None) -> None:
        self.kernel = kernel
        self.config = config or DetectorConfig()
        self._entries: list[RegisteredMonitor] = []
        self._by_label: dict[str, RegisteredMonitor] = {}
        #: Captures taken in phase 1 but not yet evaluated.  ``checkpoint``
        #: drains it immediately; it is a queue (not a local) so a future
        #: sharded engine can capture and evaluate on different cadences.
        self._pending_captures: list[CheckpointCapture] = []
        self.checkpoints_run = 0
        #: Number of ``kernel.atomic`` sections entered for checking — one
        #: per checkpoint regardless of how many monitors are registered.
        #: (The per-monitor baseline pays one section per monitor instead.)
        self.atomic_sections = 0
        #: Phase-1 captures taken (snapshot + cut inside the section).
        self.captures_taken = 0
        #: Phase-2 evaluations completed (rules run over a capture).
        self.evaluations_run = 0
        #: Wall-clock seconds inside phase-1 atomic sections — the actual
        #: suspend-the-world cost.
        self.worldstop_seconds = 0.0
        #: Longest single phase-1 section (per-checkpoint world-stop max).
        self.worldstop_max = 0.0
        #: Per-checkpoint phase-1 durations (world-stop percentile source).
        self.worldstop_samples: list[float] = []
        #: Wall-clock seconds spent in phase-2 evaluation (workload live).
        self.evaluate_seconds = 0.0
        #: Per-drain phase-2 durations (evaluate latency histogram source).
        self.evaluate_samples: list[float] = []
        #: Per-monitor evaluations that raised (absorbed by the breaker
        #: instead of escaping the checkpoint).
        self.check_failures = 0
        #: Final quarantine records of unregistered monitors whose breaker
        #: had history — without this, unregistering closed the book on a
        #: quarantine episode and the audit lost it.
        self.retired_quarantines: list[QuarantineRecord] = []
        self._stopped = False

    # ---------------------------------------------------------- registration

    def register(
        self,
        target: MonitorLike,
        config: Optional[DetectorConfig] = None,
        *,
        label: Optional[str] = None,
    ) -> RegisteredMonitor:
        """Add a monitor to the batched checkpoint.

        ``label`` keys the monitor in :meth:`reports_by_monitor`; it
        defaults to the monitor's declared name, suffixed ``#2``, ``#3``…
        when several registered monitors share one name.
        """
        monitor = _unwrap(target)
        if monitor.kernel is not self.kernel:
            raise ValueError(
                f"monitor {monitor.name!r} lives on a different kernel than "
                "the engine; register it with an engine on its own kernel"
            )
        base = label or monitor.name
        unique, suffix = base, 2
        while unique in self._by_label:
            unique = f"{base}#{suffix}"
            suffix += 1
        entry = RegisteredMonitor(monitor, config or self.config, unique)
        self._entries.append(entry)
        self._by_label[unique] = entry
        return entry

    def unregister(self, target: Union[MonitorLike, RegisteredMonitor]) -> None:
        """Detach a monitor's real-time tap and drop it from checkpoints."""
        if isinstance(target, RegisteredMonitor):
            entry = target
        else:
            monitor = _unwrap(target)
            matches = [e for e in self._entries if e.monitor is monitor]
            if not matches:
                raise ValueError(f"monitor {monitor.name!r} is not registered")
            entry = matches[0]
        if entry.breaker.transitions or entry.breaker.consecutive_failures:
            # Close out the quarantine record so the audit keeps the
            # episode instead of leaking it out of accounting.
            self.retired_quarantines.append(entry.quarantine_record())
        entry.detach()
        self._entries.remove(entry)
        del self._by_label[entry.label]
        self._pending_captures = [
            capture
            for capture in self._pending_captures
            if capture.entry is not entry
        ]

    @property
    def entries(self) -> tuple[RegisteredMonitor, ...]:
        return tuple(self._entries)

    @property
    def monitors(self) -> tuple[Monitor, ...]:
        return tuple(entry.monitor for entry in self._entries)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(entry.label for entry in self._entries)

    def entry_for(self, target: Union[MonitorLike, str]) -> RegisteredMonitor:
        """Look a registration up by label or by monitor object."""
        if isinstance(target, str):
            return self._by_label[target]
        monitor = _unwrap(target)
        for entry in self._entries:
            if entry.monitor is monitor:
                return entry
        raise KeyError(f"monitor {monitor.name!r} is not registered")

    # -------------------------------------------------------------- lifecycle

    def stop(self) -> None:
        """Ask a spawned ``engine_process`` to finish after its next wake.

        Also detaches every registered monitor's real-time tap, so a
        retired engine stops charging the recording hot path.
        """
        self._stopped = True
        for entry in self._entries:
            entry.detach()

    @property
    def stopped(self) -> bool:
        return self._stopped

    # --------------------------------------------------------------- checking

    def checkpoint(self) -> list[FaultReport]:
        """Run one two-phase periodic check over every registered monitor.

        Phase 1 (one atomic section) snapshots and cuts every due monitor;
        phase 2 evaluates the captures with the workload running again.
        The suspend-the-world cost is paid once per interval and covers
        only the snapshot/cut sweep.  Returns the new reports (also
        retained per monitor).
        """
        self.capture_phase()
        new_reports = self.evaluate_phase()
        self.checkpoints_run += 1
        return new_reports

    def capture_phase(self) -> int:
        """Phase 1: one atomic section enqueueing a capture per due monitor.

        Returns the number of captures taken.  Breaker gating and adaptive
        skips happen here — a quarantined or not-yet-due monitor is not
        snapshotted at all.
        """
        started = perf_counter()
        try:
            taken = self.kernel.atomic(self._capture_locked)
        finally:
            elapsed = perf_counter() - started
            self.worldstop_seconds += elapsed
            self.worldstop_samples.append(elapsed)
            if elapsed > self.worldstop_max:
                self.worldstop_max = elapsed
        return taken

    def _capture_locked(self) -> int:
        self.atomic_sections += 1
        now = self.kernel.now()
        taken = 0
        for entry in list(self._entries):
            if not entry.breaker.allow(now):
                entry.checkpoints_skipped += 1
                continue
            if not entry.due(now):
                entry.intervals_skipped += 1
                continue
            try:
                capture = entry.capture(now)
            except Exception as exc:  # noqa: BLE001 — quarantine, not crash
                # A snapshot/cut that raises must not poison the fleet's
                # shared section: absorb, count, let the breaker decide.
                self.check_failures += 1
                entry.breaker.record_failure(
                    now, f"{type(exc).__name__}: {exc}"
                )
                continue
            self._pending_captures.append(capture)
            self.captures_taken += 1
            taken += 1
        return taken

    def evaluate_phase(self) -> list[FaultReport]:
        """Phase 2: drain the capture queue, running rules off the world-stop.

        Evaluates in capture (registration) order, so the merged report
        stream is ordered exactly as the old single-phase checkpoint's.
        One broken evaluator cannot poison the rest of the drain: an
        exception is absorbed, counted, and fed to that monitor's breaker
        — which therefore opens on phase-2 throws exactly as it did when
        evaluation ran inside the section.
        """
        started = perf_counter()
        found: list[FaultReport] = []
        try:
            captures, self._pending_captures = self._pending_captures, []
            for capture in captures:
                entry = capture.entry
                check_started = perf_counter()
                try:
                    reports = entry.evaluate(capture)
                except Exception as exc:  # noqa: BLE001 — quarantine, not crash
                    self.check_failures += 1
                    entry.breaker.record_failure(
                        capture.taken_at, f"{type(exc).__name__}: {exc}"
                    )
                    continue
                elapsed = perf_counter() - check_started
                budget = entry.config.monitor_check_budget
                if budget is not None and elapsed > budget:
                    entry.breaker.record_failure(
                        capture.taken_at,
                        f"evaluation took {elapsed:.4f}s > budget {budget:g}s",
                    )
                else:
                    entry.breaker.record_success(capture.taken_at)
                self.evaluations_run += 1
                entry.reports.extend(reports)
                found.extend(reports)
        finally:
            elapsed = perf_counter() - started
            self.evaluate_seconds += elapsed
            self.evaluate_samples.append(elapsed)
        return found

    def take_pending_captures(self) -> list[CheckpointCapture]:
        """Claim the queued phase-1 captures for external evaluation.

        The process evaluation plane fixes each worker batch at submit
        time with this — once taken, the captures belong to the caller
        (ship them, evaluate them, or push them back onto
        ``_pending_captures`` for the in-thread fallback), and a later
        :meth:`evaluate_phase` sees only captures taken afterwards.
        """
        captures, self._pending_captures = self._pending_captures, []
        return captures

    @property
    def pending_captures(self) -> int:
        """Captures taken in phase 1 and not yet evaluated."""
        return len(self._pending_captures)

    @property
    def checking_seconds(self) -> float:
        """Total wall-clock checking cost: world-stop plus evaluation.

        The pre-split counter, kept as the sum so Table-1 overhead ratios
        still charge the detector for *all* its CPU time — but only
        :attr:`worldstop_seconds` of it stalls the workload.
        """
        return self.worldstop_seconds + self.evaluate_seconds

    def worldstop_percentile(self, q: float) -> float:
        """The ``q``-quantile (0 < q <= 1) of per-checkpoint world-stops.

        Nearest-rank over :attr:`worldstop_samples`; 0.0 before the first
        checkpoint.  The overhead bench publishes p50/p99 from here.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be within (0, 1], got {q!r}")
        samples = sorted(self.worldstop_samples)
        if not samples:
            return 0.0
        rank = max(0, math.ceil(q * len(samples)) - 1)
        return samples[rank]

    # --------------------------------------------------------------- metrics

    def metrics(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        labels: Optional[dict] = None,
    ) -> MetricsRegistry:
        """Snapshot this engine's counters into a metrics registry.

        The single stats surface: exporters, ``FaultStatistics``, and the
        gate runner all read this instead of scraping attributes or
        reprs.  ``labels`` (e.g. ``{"shard": "0"}``) are stamped onto
        every family — :meth:`DetectionCluster.metrics` samples each
        shard's engine into one registry this way.  Pass a fresh
        ``registry`` per snapshot; sampling is additive.
        """
        registry = MetricsRegistry() if registry is None else registry
        base = {str(k): str(v) for k, v in (labels or {}).items()}
        names = tuple(base)

        def counter(name: str, help: str, value: float) -> None:
            registry.counter(name, help, names).labels(**base).inc(value)

        def gauge(name: str, help: str, value: float) -> None:
            registry.gauge(name, help, names).labels(**base).set(value)

        counter(
            "repro_engine_checkpoints_total",
            "Two-phase checkpoints completed.",
            self.checkpoints_run,
        )
        counter(
            "repro_engine_atomic_sections_total",
            "Kernel atomic sections entered for checking.",
            self.atomic_sections,
        )
        counter(
            "repro_engine_captures_total",
            "Phase-1 captures taken (snapshot + cut).",
            self.captures_taken,
        )
        counter(
            "repro_engine_evaluations_total",
            "Phase-2 evaluations completed.",
            self.evaluations_run,
        )
        counter(
            "repro_engine_intervals_skipped_total",
            "Adaptive-schedule checkpoint skips.",
            self.intervals_skipped,
        )
        counter(
            "repro_engine_forced_captures_total",
            "Drop-safety captures taken before next_due.",
            self.forced_captures,
        )
        counter(
            "repro_engine_check_failures_total",
            "Capture/evaluate exceptions absorbed by breakers.",
            self.check_failures,
        )
        counter(
            "repro_engine_incremental_hits_total",
            "Windows evaluated on carried checking lists.",
            self.incremental_hits,
        )
        counter(
            "repro_engine_incremental_rebases_total",
            "Windows that re-seeded checking lists.",
            self.incremental_rebases,
        )
        counter(
            "repro_engine_incremental_fastpaths_total",
            "Zero-event windows that skipped comparison.",
            self.incremental_fastpaths,
        )
        counter(
            "repro_engine_staged_events_total",
            "Events flushed through sink staging buffers.",
            self.staged_events,
        )
        counter(
            "repro_engine_staged_flushes_total",
            "Staged-batch flushes across monitor sinks.",
            self.staged_flushes,
        )
        counter(
            "repro_engine_dropped_events_total",
            "Events dropped at bounded sinks.",
            self.dropped_events,
        )
        counter(
            "repro_engine_dropped_in_windows_total",
            "Per-window drop counts over cut checking windows.",
            self.dropped_in_windows,
        )
        counter(
            "repro_engine_degraded_windows_total",
            "Checking windows evaluated in degraded (lossy) mode.",
            self.degraded_windows,
        )
        gauge(
            "repro_engine_monitors",
            "Monitors currently registered.",
            len(self._entries),
        )
        gauge(
            "repro_engine_quarantined_monitors",
            "Monitors currently sitting out checkpoints (breaker OPEN).",
            len(self.quarantined),
        )
        gauge(
            "repro_engine_pending_captures",
            "Phase-1 captures awaiting evaluation.",
            self.pending_captures,
        )

        reports_family = registry.counter(
            "repro_reports_total",
            "Fault reports by confidence.",
            names + ("confidence",),
        )
        for confidence, reports in self.reports_by_confidence().items():
            reports_family.labels(
                **base, confidence=confidence.name.lower()
            ).inc(len(reports))

        monitor_names = names + ("monitor",)
        monitor_reports = registry.counter(
            "repro_monitor_reports_total",
            "Fault reports per registered monitor.",
            monitor_names,
        )
        monitor_checkpoints = registry.counter(
            "repro_monitor_checkpoints_total",
            "Checkpoints evaluated per registered monitor.",
            monitor_names,
        )
        monitor_degraded = registry.counter(
            "repro_monitor_degraded_windows_total",
            "Degraded (lossy) windows per registered monitor.",
            monitor_names,
        )
        for entry in self._entries:
            monitor_reports.labels(**base, monitor=entry.label).inc(
                len(entry.reports)
            )
            monitor_checkpoints.labels(**base, monitor=entry.label).inc(
                entry.checkpoints_run
            )
            monitor_degraded.labels(**base, monitor=entry.label).inc(
                entry.degraded_windows
            )

        phase_family = registry.histogram(
            "repro_phase_latency_seconds",
            "Wall-clock latency per detection phase.",
            names + ("phase",),
        )
        phase_family.labels(**base, phase="capture").observe_all(
            self.worldstop_samples
        )
        phase_family.labels(**base, phase="evaluate").observe_all(
            self.evaluate_samples
        )

        for entry in self._entries:
            # Durable sinks (WriteAheadLog) carry their own latency
            # histograms; fold them in without a hard dependency.
            observe = getattr(entry.history, "observe_metrics", None)
            if callable(observe):
                observe(registry, labels=base)
        return registry

    # ------------------------------------------------------------- reporting

    @property
    def reports(self) -> list[FaultReport]:
        """All reports across registered monitors, in registration order."""
        merged: list[FaultReport] = []
        for entry in self._entries:
            merged.extend(entry.reports)
        return merged

    def reports_by_monitor(self) -> dict[str, list[FaultReport]]:
        """Per-monitor report streams, keyed by registration label."""
        return {entry.label: list(entry.reports) for entry in self._entries}

    def reports_for_rule(self, rule) -> list[FaultReport]:
        return [report for report in self.reports if report.rule is rule]

    def implicated_faults(self) -> frozenset:
        """Union of suspected fault classes over all monitors' reports."""
        suspects: set = set()
        for entry in self._entries:
            for report in entry.reports:
                suspects.update(report.suspected_faults)
        return frozenset(suspects)

    def reports_by_confidence(self) -> dict[Confidence, list[FaultReport]]:
        """All reports split into confirmed vs degraded streams."""
        split: dict[Confidence, list[FaultReport]] = {
            confidence: [] for confidence in Confidence
        }
        for report in self.reports:
            split[report.confidence].append(report)
        return split

    @property
    def clean(self) -> bool:
        """True when no registered monitor has reported a violation."""
        return all(not entry.reports for entry in self._entries)

    @property
    def confirmed_clean(self) -> bool:
        """True when no *confirmed* violation exists (degraded advisories
        from lossy windows are tolerated)."""
        return all(
            report.confidence is not Confidence.CONFIRMED
            for report in self.reports
        )

    # ------------------------------------------------------------ resilience

    @property
    def quarantined(self) -> tuple[RegisteredMonitor, ...]:
        """Registered monitors currently sitting out checkpoints (OPEN)."""
        return tuple(e for e in self._entries if e.quarantined)

    def quarantine_report(self) -> list[QuarantineRecord]:
        """Breaker status of every monitor whose breaker ever left CLOSED.

        The explicit surface for "this monitor's checker is broken": one
        record per monitor with a quarantine history, renderable for logs.
        Includes the closed-out records of since-unregistered monitors so
        an episode survives its monitor leaving the fleet.
        """
        live = [
            entry.quarantine_record()
            for entry in self._entries
            if entry.breaker.transitions or entry.breaker.consecutive_failures
        ]
        return live + list(self.retired_quarantines)

    @property
    def dropped_events(self) -> int:
        """Events dropped across all registered monitors' sinks.

        Counts at the sink (total ever dropped), so lossy runs are visible
        from the engine without digging into each ring buffer.
        """
        return sum(entry.history.dropped_events for entry in self._entries)

    @property
    def dropped_in_windows(self) -> int:
        """Per-window drop counts accumulated over cut checking windows."""
        return sum(entry.dropped_in_windows for entry in self._entries)

    @property
    def degraded_windows(self) -> int:
        """Checking windows evaluated in degraded (lossy) mode."""
        return sum(entry.degraded_windows for entry in self._entries)

    @property
    def intervals_skipped(self) -> int:
        """Adaptive-schedule skips across all registered monitors."""
        return sum(entry.intervals_skipped for entry in self._entries)

    @property
    def forced_captures(self) -> int:
        """Drop-safety captures taken before ``next_due`` (all monitors)."""
        return sum(entry.forced_captures for entry in self._entries)

    @property
    def incremental_hits(self) -> int:
        """Windows evaluated on carried checking lists (all monitors)."""
        return sum(entry.incremental_hits for entry in self._entries)

    @property
    def incremental_rebases(self) -> int:
        """Windows that re-seeded checking lists (all monitors)."""
        return sum(entry.incremental_rebases for entry in self._entries)

    @property
    def incremental_fastpaths(self) -> int:
        """Zero-event windows that skipped the comparison (all monitors)."""
        return sum(entry.incremental_fastpaths for entry in self._entries)

    @property
    def staged_events(self) -> int:
        """Events flushed through sink staging buffers (all monitors)."""
        return sum(entry.staged_events for entry in self._entries)

    @property
    def staged_flushes(self) -> int:
        """Staged-batch flushes across all registered monitors' sinks."""
        return sum(entry.staged_flushes for entry in self._entries)

    def __repr__(self) -> str:
        return (
            f"DetectionEngine(monitors={len(self._entries)}, "
            f"checkpoints={self.checkpoints_run}, "
            f"atomic_sections={self.atomic_sections}, "
            f"captures_taken={self.captures_taken}, "
            f"evaluations_run={self.evaluations_run}, "
            f"intervals_skipped={self.intervals_skipped}, "
            f"incremental_hits={self.incremental_hits}, "
            f"staged_flushes={self.staged_flushes}, "
            f"reports={sum(len(e.reports) for e in self._entries)}, "
            f"dropped_events={self.dropped_events}, "
            f"degraded_windows={self.degraded_windows}, "
            f"quarantined={len(self.quarantined)})"
        )


def engine_process(
    engine: DetectionEngine,
    *,
    rounds: Optional[int] = None,
) -> Iterator[Syscall]:
    """Kernel process body invoking the engine every ``config.interval``.

    One process replaces N ``detector_process`` instances: every interval
    it runs one two-phase checkpoint over all registered monitors.  Runs
    ``rounds`` checkpoints (forever when None) or until
    :meth:`DetectionEngine.stop` is called::

        kernel.spawn(engine_process(engine), name="detection-engine")
    """
    remaining = rounds
    while remaining is None or remaining > 0:
        yield Delay(engine.config.interval)
        if engine.stopped:
            return
        engine.checkpoint()
        if remaining is not None:
            remaining -= 1
