"""Offline FD-rule checking over a complete retained trace (Section 3.2).

The FD-Rules characterise a valid scheduling sequence from the very first
event.  This checker replays an *entire* trace (requires a history database
constructed with ``retain_full_trace=True``) through the same machinery as
the windowed algorithms, starting from the empty initial state, and reports
violations under FD-Rule identifiers.

It exists for three reasons:

1. it is the paper's Section 3.2 formulation, before the space
   optimisation;
2. it is the ground truth for the A1 ablation (windowed ST checking must
   agree with full-trace FD checking on every injected fault);
3. property-based tests use it to establish "no false positives on
   fault-free schedules" independently of checkpoint placement.
"""

from __future__ import annotations

from typing import Optional

from repro.detection.algorithm3 import CallingOrderChecker
from repro.detection.replay import ReplayMachine
from repro.detection.reports import FaultReport
from repro.detection.rules import FDRule, STRule
from repro.history.events import EventKind, SchedulingEvent
from repro.history.states import SchedulingState
from repro.monitor.declaration import MonitorDeclaration

__all__ = ["check_full_trace", "ST_TO_FD"]

#: Translation from the replay machine's ST identifiers to the FD-Rules
#: they realise.  ST-4 is split by queue kind inside ``_translate``.
ST_TO_FD: dict[STRule, FDRule] = {
    STRule.ONE_INSIDE: FDRule.MUTUAL_EXCLUSION_ENTER,
    STRule.ENTER_TAKES_FREE_MONITOR: FDRule.MUTUAL_EXCLUSION_ENTER,
    STRule.BLOCKED_MEANS_BUSY: FDRule.FAIR_RESPONSE,
    STRule.CALLER_IS_RUNNING: FDRule.ENTER_OBSERVED,
    STRule.SIGNAL_CONSISTENT: FDRule.MUTUAL_EXCLUSION_SIGNAL,
    STRule.ENTRY_QUEUE_MATCHES: FDRule.MUTUAL_EXCLUSION_RELEASE,
    STRule.COND_QUEUE_MATCHES: FDRule.MUTUAL_EXCLUSION_SIGNAL,
    STRule.RUNNING_MATCHES: FDRule.MUTUAL_EXCLUSION_ENTER,
    STRule.TMAX_EXCEEDED: FDRule.NONTERMINATION,
    STRule.TIO_EXCEEDED: FDRule.NO_STARVATION,
    STRule.RESOURCE_INVARIANT: FDRule.RESOURCE_INVARIANT,
    STRule.RESOURCE_DELTA_MATCHES: FDRule.RESOURCE_INVARIANT,
    STRule.SEND_WAIT_CONSISTENT: FDRule.SEND_WAIT_CONSISTENT,
    STRule.RECEIVE_WAIT_CONSISTENT: FDRule.RECEIVE_WAIT_CONSISTENT,
    STRule.NO_DUPLICATE_REQUEST: FDRule.ACQUIRE_THEN_RELEASE,
    STRule.RELEASE_REQUIRES_REQUEST: FDRule.RELEASE_AFTER_ACQUIRE,
    STRule.REQUEST_NOT_RELEASED: FDRule.ACQUIRE_THEN_RELEASE,
    STRule.CALL_ORDER_VIOLATED: FDRule.ACQUIRE_THEN_RELEASE,
    STRule.WAIT_FOR_CYCLE: FDRule.ACQUIRE_THEN_RELEASE,
}


def _translate(report: FaultReport) -> FaultReport:
    rule = report.rule
    if isinstance(rule, FDRule):
        return report
    if rule is STRule.EVENT_WHILE_BLOCKED:
        fd = (
            FDRule.CORRECT_SYNC_ENTRY
            if "Enter-0-List" in report.message
            else FDRule.CORRECT_SYNC_COND
        )
    else:
        fd = ST_TO_FD[rule]
    return FaultReport(
        rule=fd,
        message=report.message,
        monitor=report.monitor,
        detected_at=report.detected_at,
        pids=report.pids,
        event_seq=report.event_seq,
        window_start=report.window_start,
    )


def empty_initial_state(
    declaration: MonitorDeclaration, time: float = 0.0
) -> SchedulingState:
    """The scheduling state of a freshly created monitor."""
    return SchedulingState(
        time=time,
        entry_queue=(),
        cond_queues={cond: () for cond in declaration.conditions},
        running=(),
        resource_count=declaration.rmax,
    )


def check_full_trace(
    declaration: MonitorDeclaration,
    trace: tuple[SchedulingEvent, ...],
    *,
    final_state: Optional[SchedulingState] = None,
    tmax: Optional[float] = None,
    tio: Optional[float] = None,
    tlimit: Optional[float] = None,
) -> list[FaultReport]:
    """Check a complete event sequence against FD-Rules 1–7.

    ``final_state`` enables the end-of-trace comparison with the actual
    queues (FD-Rules 1b/1c); timer bounds enable FD-2 / FD-4 sweeps at the
    final instant; ``tlimit`` enables the FD-7 resource-holding sweep.
    """
    machine = ReplayMachine(declaration, empty_initial_state(declaration))
    machine.replay(trace)
    end_time = trace[-1].time if trace else 0.0
    if final_state is not None:
        machine.compare_with(final_state, tmax=tmax, tio=tio)
    else:
        # No actual state available: synthesise one from the model so the
        # queue comparisons are vacuous but the timer sweeps still run.
        synthetic = SchedulingState(
            time=end_time,
            entry_queue=tuple(machine.enter0),
            cond_queues={c: tuple(q) for c, q in machine.wait_cond.items()},
            running=tuple(machine.running),
            urgent=tuple(machine.urgent),
        )
        machine.compare_with(synthetic, tmax=tmax, tio=tio)
    reports = [_translate(report) for report in machine.violations]

    # FD-Rule 6: resource-state consistency (cumulative, from zero).
    if declaration.mtype.needs_resource_checking and declaration.rmax:
        reports.extend(_check_resources(declaration, trace))

    # FD-Rule 7: calling orders over the whole trace.
    if declaration.mtype.needs_order_checking or declaration.call_order:
        order = CallingOrderChecker(declaration)
        order_reports: list[FaultReport] = []
        for event in trace:
            order_reports.extend(order.on_event(event))
        if tlimit is not None:
            order_reports.extend(order.periodic(end_time, tlimit))
        reports.extend(_translate(report) for report in order_reports)
    return reports


def _check_resources(
    declaration: MonitorDeclaration, trace: tuple[SchedulingEvent, ...]
) -> list[FaultReport]:
    """Cumulative FD-6 evaluation: r/s counters and R# from first principles."""
    rmax = declaration.rmax
    assert rmax is not None
    sends = 0
    receives = 0
    reports: list[FaultReport] = []

    def report(rule: FDRule, message: str, event: SchedulingEvent) -> None:
        reports.append(
            FaultReport(
                rule=rule,
                message=message,
                monitor=declaration.name,
                detected_at=event.time,
                pids=(event.pid,),
                event_seq=event.seq,
            )
        )

    from repro.detection.algorithm2 import completion_event_kind

    completion = completion_event_kind(declaration.discipline)
    for event in trace:
        resource = rmax - (sends - receives)  # R# = Rmax - outstanding items
        if event.kind is completion:
            if event.pname == "Send":
                sends += 1
            elif event.pname == "Receive":
                receives += 1
            else:
                continue
            if not 0 <= receives <= sends <= receives + rmax:
                report(
                    FDRule.RESOURCE_INVARIANT,
                    f"after {event.pname} by P{event.pid}: r={receives}, "
                    f"s={sends}, Rmax={rmax} violates 0 <= r <= s <= r+Rmax",
                    event,
                )
        elif event.kind is EventKind.WAIT:
            if event.pname == "Send" and event.cond == "full":
                if resource != 0:
                    report(
                        FDRule.SEND_WAIT_CONSISTENT,
                        f"Wait(Send, full) by P{event.pid} with R#={resource}",
                        event,
                    )
            elif event.pname == "Receive" and event.cond == "empty":
                if resource != rmax:
                    report(
                        FDRule.RECEIVE_WAIT_CONSISTENT,
                        f"Wait(Receive, empty) by P{event.pid} with "
                        f"R#={resource}",
                        event,
                    )
    return reports
