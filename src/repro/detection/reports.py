"""Fault reports — the checker's output stream.

A detected violation is data, not an exception: the faulty execution has
already happened, and the paper's construct *reports* it (Section 3.3:
"report an error").  Reports carry the violated rule, the implicated fault
classes, the processes involved and the checking window, so that the
robustness experiment can score detection coverage per fault class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.detection.faults import FaultClass
from repro.detection.rules import SUSPECTS, FDRule, STRule
from repro.errors import RecoveryError
from repro.ids import Pid

__all__ = [
    "Confidence",
    "FaultReport",
    "rule_from_id",
    "report_to_dict",
    "report_from_dict",
]

Rule = Union[FDRule, STRule]


class Confidence(enum.Enum):
    """How much the checking window backs the report.

    ``CONFIRMED`` — the window was complete: every event since the last
    checkpoint was available to the checker, so the violation is fully
    witnessed.  ``DEGRADED`` — the window was lossy (the sink dropped
    events, see :class:`~repro.history.sink.Segment.dropped`): only
    drop-tolerant rules were evaluated and their findings are advisory.
    Degraded reports must never trigger destructive recovery.
    """

    CONFIRMED = "confirmed"
    DEGRADED = "degraded"


@dataclass(frozen=True)
class FaultReport:
    """One detected concurrency-control rule violation."""

    #: The violated rule (an ST-Rule for on-line checks, FD-Rule off-line).
    rule: Rule
    #: Human-readable description of what was observed.
    message: str
    #: Monitor in which the violation was observed.
    monitor: str
    #: Time at which the checker flagged the violation.
    detected_at: float
    #: Processes implicated (possibly empty when not attributable).
    pids: tuple[Pid, ...] = ()
    #: Sequence number of the event that triggered the violation, when the
    #: check was event-triggered (None for checkpoint-comparison checks).
    event_seq: Optional[int] = None
    #: Start of the checking window in which the violation was found.
    window_start: Optional[float] = None
    #: Whether the checking window fully backs the finding (CONFIRMED) or
    #: the sink dropped events inside it (DEGRADED, advisory only).
    confidence: Confidence = Confidence.CONFIRMED

    @property
    def degraded(self) -> bool:
        """True when this report came from a lossy checking window."""
        return self.confidence is Confidence.DEGRADED

    @property
    def suspected_faults(self) -> tuple[FaultClass, ...]:
        """Fault classes whose occurrence this violation implicates."""
        return SUSPECTS.get(self.rule, ())

    @property
    def rule_id(self) -> str:
        return self.rule.value

    def implicates(self, fault: FaultClass) -> bool:
        return fault in self.suspected_faults

    def render(self) -> str:
        """One-line rendering for logs and example output."""
        pids = ",".join(f"P{p}" for p in self.pids) or "-"
        tag = " (degraded)" if self.degraded else ""
        return (
            f"[{self.rule_id}]{tag} t={self.detected_at:g} "
            f"monitor={self.monitor} pids={pids}: {self.message}"
        )

    def __str__(self) -> str:
        return self.render()


# ------------------------------------------------------------------- codec

# The canonical JSON codec for reports.  Shared by the report journal
# (exactly-once delivery across restarts, :mod:`repro.detection.durability`)
# and the process-parallel evaluation plane (reports crossing the worker
# pipe, :mod:`repro.detection.procpool`).  Round trips are exact:
# ``report_from_dict(report_to_dict(r)) == r`` — floats survive JSON
# bit-for-bit via repr-based encoding.


def rule_from_id(value: str) -> Rule:
    """Resolve a ``rule_id`` string back to its ST-/FD-Rule member."""
    for enum_type in (STRule, FDRule):
        try:
            return enum_type(value)
        except ValueError:
            continue
    raise RecoveryError(f"unknown rule id {value!r} in serialized report")


def report_to_dict(report: FaultReport) -> dict:
    """One fault report as a JSON-compatible record."""
    return {
        "kind": "report",
        "rule": report.rule_id,
        "message": report.message,
        "monitor": report.monitor,
        "detected_at": report.detected_at,
        "pids": list(report.pids),
        "event_seq": report.event_seq,
        "window_start": report.window_start,
        "confidence": report.confidence.value,
    }


def report_from_dict(record: dict) -> FaultReport:
    if record.get("kind") != "report":
        raise RecoveryError(f"not a report record: {record!r}")
    try:
        return FaultReport(
            rule=rule_from_id(record["rule"]),
            message=record["message"],
            monitor=record["monitor"],
            detected_at=record["detected_at"],
            pids=tuple(record["pids"]),
            event_seq=record["event_seq"],
            window_start=record["window_start"],
            confidence=Confidence(record["confidence"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RecoveryError(f"malformed report record: {exc}") from exc
