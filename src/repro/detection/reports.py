"""Fault reports — the checker's output stream.

A detected violation is data, not an exception: the faulty execution has
already happened, and the paper's construct *reports* it (Section 3.3:
"report an error").  Reports carry the violated rule, the implicated fault
classes, the processes involved and the checking window, so that the
robustness experiment can score detection coverage per fault class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.detection.faults import FaultClass
from repro.detection.rules import SUSPECTS, FDRule, STRule
from repro.ids import Pid

__all__ = ["FaultReport"]

Rule = Union[FDRule, STRule]


@dataclass(frozen=True)
class FaultReport:
    """One detected concurrency-control rule violation."""

    #: The violated rule (an ST-Rule for on-line checks, FD-Rule off-line).
    rule: Rule
    #: Human-readable description of what was observed.
    message: str
    #: Monitor in which the violation was observed.
    monitor: str
    #: Time at which the checker flagged the violation.
    detected_at: float
    #: Processes implicated (possibly empty when not attributable).
    pids: tuple[Pid, ...] = ()
    #: Sequence number of the event that triggered the violation, when the
    #: check was event-triggered (None for checkpoint-comparison checks).
    event_seq: Optional[int] = None
    #: Start of the checking window in which the violation was found.
    window_start: Optional[float] = None

    @property
    def suspected_faults(self) -> tuple[FaultClass, ...]:
        """Fault classes whose occurrence this violation implicates."""
        return SUSPECTS.get(self.rule, ())

    @property
    def rule_id(self) -> str:
        return self.rule.value

    def implicates(self, fault: FaultClass) -> bool:
        return fault in self.suspected_faults

    def render(self) -> str:
        """One-line rendering for logs and example output."""
        pids = ",".join(f"P{p}" for p in self.pids) or "-"
        return (
            f"[{self.rule_id}] t={self.detected_at:g} monitor={self.monitor} "
            f"pids={pids}: {self.message}"
        )

    def __str__(self) -> str:
        return self.render()
