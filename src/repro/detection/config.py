"""Detection tunables shared by the engine and the single-monitor façade."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["DetectorConfig"]


@dataclass(frozen=True)
class DetectorConfig:
    """Tunables of the detection machinery.

    ``interval`` is the checking period ``T`` (Section 3.3: ``Tmax < T``
    keeps periodic checking sound; ``T = 1`` event-time makes it real-time).
    ``tmax`` bounds residence inside the monitor / on condition queues,
    ``tio`` bounds entry-queue residence, ``tlimit`` bounds resource
    holding.  Any timeout may be None to disable that sweep.

    The supervision fields bound the *detector's own* failure modes (the
    pipeline must degrade, not take the application down — see
    :mod:`repro.detection.supervision`):

    * ``checkpoint_budget`` — wall-clock seconds one batched checkpoint may
      take before the supervisor counts a budget blow (None disables).
    * ``checkpoint_retries`` / ``retry_backoff`` — how often a failed
      checkpoint is retried, with exponential backoff starting at
      ``retry_backoff`` virtual seconds.
    * ``stall_timeout`` — virtual seconds without a completed checkpoint
      before the stall watchdog flags the pipeline (None disables).
    * ``monitor_check_budget`` — wall-clock seconds a *single* monitor's
      share of the checkpoint may take; blowing it repeatedly trips that
      monitor's circuit breaker (None disables).
    * ``breaker_failure_threshold`` — consecutive per-monitor check
      failures (exceptions or budget blows) before the monitor is
      quarantined (its breaker opens).
    * ``breaker_cooldown`` — virtual seconds a quarantined monitor sits out
      before a half-open probe checkpoint is allowed.

    The adaptive-interval fields drive the engine's per-monitor capture
    schedule (two-phase checkpoints skip idle monitors in phase 1):

    * ``adaptive_intervals`` — enable the per-monitor ``next_due`` schedule.
      Off by default: every registered monitor is captured at every engine
      interval, which keeps report streams bit-identical to the paper's
      fixed-period checking.
    * ``min_interval`` / ``max_interval`` — bounds of the adaptive schedule
      (defaults: ``interval`` and ``8 * interval``).  A busy monitor is
      captured every ``min_interval``; a fully idle one every
      ``max_interval`` — so timer sweeps still run, just less often.
    * ``ewma_alpha`` — smoothing factor of the per-monitor event-rate EWMA
      (1.0 = last window only).
    * ``adaptive_target_events`` — the schedule aims for roughly this many
      events per checking window: next interval =
      ``target / ewma_rate`` clamped to the bounds.

    The sharding fields shape a :class:`~repro.detection.cluster.DetectionCluster`
    (ignored by a plain single engine):

    * ``shards`` — number of engine shards the registered fleet is
      partitioned across (1 = a single engine, no partitioning).
    * ``shard_policy`` — which :class:`~repro.detection.cluster.ShardPolicy`
      places new registrations: ``"round-robin"``, ``"rate"`` (event-rate
      EWMA balance) or ``"label"`` (explicit label groups).
    * ``stagger`` — offset each shard's capture schedule by
      ``interval * k / N`` so phase-1 world-stops never coincide; off, all
      shards fire at the same instants (useful for apples-to-apples
      measurements).
    * ``evaluation`` — which phase-2 evaluation plane the cluster runs:
      ``"threads"`` (one worker thread per shard — overlap, but the GIL
      serialises the checkers), ``"processes"`` (one evaluator worker
      *process* per shard — true multi-core parallelism, captures cross
      the pipe wire-serialized) or ``None`` (auto: threads on the thread
      kernel, inline on the sim kernel).

    Rather than memorising the kwarg sprawl, start from a
    :meth:`preset` — ``DetectorConfig.preset("bounded", interval=0.5)`` —
    and override what differs.
    """

    interval: float = 1.0
    tmax: Optional[float] = 5.0
    tio: Optional[float] = 10.0
    tlimit: Optional[float] = 10.0
    #: Drive Algorithm-3 Step 1 on every event (the paper's mandate for
    #: allocator monitors).  False falls back to replaying the window's
    #: events at each checkpoint instead.
    realtime_orders: bool = True
    #: Carry Algorithm-1's checking lists across checkpoints (one
    #: persistent replay machine per monitor) so phase-2 evaluation costs
    #: O(new events), not O(window re-seed).  The report stream is
    #: byte-identical either way; False falls back to the stateless
    #: full re-walk — the differential-testing oracle.
    incremental_checking: bool = True
    # ------------------------------------------------- supervision tunables
    checkpoint_budget: Optional[float] = None
    checkpoint_retries: int = 2
    retry_backoff: float = 0.1
    #: Randomised stretch on each retry backoff: the delay becomes
    #: ``backoff * 2**attempt * (1 + U[0, retry_jitter])``, drawn from the
    #: supervisor's own seeded RNG so sim runs stay deterministic.  Zero
    #: keeps the historical lockstep schedule — with many supervised
    #: engines sharing a failing dependency, lockstep retries stampede it
    #: in unison; jitter spreads them out.
    retry_jitter: float = 0.0
    stall_timeout: Optional[float] = None
    monitor_check_budget: Optional[float] = None
    breaker_failure_threshold: int = 3
    breaker_cooldown: float = 5.0
    # ---------------------------------------------- adaptive-interval tunables
    adaptive_intervals: bool = False
    min_interval: Optional[float] = None
    max_interval: Optional[float] = None
    ewma_alpha: float = 0.5
    adaptive_target_events: float = 8.0
    # --------------------------------------------------- sharding tunables
    shards: int = 1
    shard_policy: str = "round-robin"
    stagger: bool = True
    evaluation: Optional[str] = None

    #: Named starting points for common deployments (see :meth:`preset`).
    _PRESETS = {
        # The paper's setup: fixed-period checking, nothing bounded.
        "paper": {},
        # Production-shaped: every detector failure mode bounded.
        "bounded": {
            "checkpoint_budget": 0.5,
            "checkpoint_retries": 2,
            "retry_backoff": 0.1,
            "retry_jitter": 0.25,
            "stall_timeout": 10.0,
            "monitor_check_budget": 0.25,
        },
        # Idle monitors captured less often (per-monitor EWMA schedule).
        "adaptive": {
            "adaptive_intervals": True,
        },
        # Crash-durable pipelines: patient retries + a stall watchdog.
        "durable": {
            "checkpoint_retries": 3,
            "retry_backoff": 0.1,
            "retry_jitter": 0.25,
            "stall_timeout": 15.0,
        },
    }

    @classmethod
    def preset(cls, name: str, **overrides) -> "DetectorConfig":
        """A named configuration baseline, with optional field overrides.

        ``preset("paper")`` is the default config; ``"bounded"`` turns on
        every supervision bound; ``"adaptive"`` enables the per-monitor
        capture schedule; ``"durable"`` suits WAL-backed pipelines.
        Overrides win over the preset: ``preset("bounded", shards=4)``.
        """
        try:
            base = dict(cls._PRESETS[name])
        except KeyError:
            raise ValueError(
                f"unknown preset {name!r}; choose from "
                f"{sorted(cls._PRESETS)}"
            ) from None
        base.update(overrides)
        return cls(**base)

    @property
    def effective_min_interval(self) -> float:
        """Floor of the adaptive capture schedule (defaults to ``interval``)."""
        return self.interval if self.min_interval is None else self.min_interval

    @property
    def effective_max_interval(self) -> float:
        """Ceiling of the adaptive capture schedule (default ``8 * interval``)."""
        if self.max_interval is not None:
            return self.max_interval
        return max(8.0 * self.interval, self.effective_min_interval)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(
                f"checking interval must be positive, got {self.interval!r}"
            )
        for name in ("tmax", "tio", "tlimit"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(
                    f"{name} must be None or non-negative, got {value!r}"
                )
        for name in ("checkpoint_budget", "stall_timeout", "monitor_check_budget"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(
                    f"{name} must be None or positive, got {value!r}"
                )
        if self.checkpoint_retries < 0:
            raise ValueError(
                f"checkpoint_retries must be >= 0, got {self.checkpoint_retries!r}"
            )
        if self.retry_backoff <= 0:
            raise ValueError(
                f"retry_backoff must be positive, got {self.retry_backoff!r}"
            )
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError(
                f"retry_jitter must be in [0, 1], got {self.retry_jitter!r}"
            )
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold!r}"
            )
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be positive, got {self.breaker_cooldown!r}"
            )
        for name in ("min_interval", "max_interval"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(
                    f"{name} must be None or positive, got {value!r}"
                )
        if self.effective_min_interval > self.effective_max_interval:
            raise ValueError(
                f"min_interval {self.effective_min_interval!r} exceeds "
                f"max_interval {self.effective_max_interval!r}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be within (0, 1], got {self.ewma_alpha!r}"
            )
        if self.adaptive_target_events <= 0:
            raise ValueError(
                "adaptive_target_events must be positive, got "
                f"{self.adaptive_target_events!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards!r}")
        if self.shard_policy not in ("round-robin", "rate", "label"):
            raise ValueError(
                f"shard_policy must be one of 'round-robin', 'rate', "
                f"'label'; got {self.shard_policy!r}"
            )
        if self.evaluation not in (None, "threads", "processes"):
            raise ValueError(
                f"evaluation must be None, 'threads' or 'processes'; "
                f"got {self.evaluation!r}"
            )
