"""Detection tunables shared by the engine and the single-monitor façade."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["DetectorConfig"]


@dataclass(frozen=True)
class DetectorConfig:
    """Tunables of the detection machinery.

    ``interval`` is the checking period ``T`` (Section 3.3: ``Tmax < T``
    keeps periodic checking sound; ``T = 1`` event-time makes it real-time).
    ``tmax`` bounds residence inside the monitor / on condition queues,
    ``tio`` bounds entry-queue residence, ``tlimit`` bounds resource
    holding.  Any timeout may be None to disable that sweep.
    """

    interval: float = 1.0
    tmax: Optional[float] = 5.0
    tio: Optional[float] = 10.0
    tlimit: Optional[float] = 10.0
    #: Drive Algorithm-3 Step 1 on every event (the paper's mandate for
    #: allocator monitors).  False falls back to replaying the window's
    #: events at each checkpoint instead.
    realtime_orders: bool = True

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(
                f"checking interval must be positive, got {self.interval!r}"
            )
        for name in ("tmax", "tio", "tlimit"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(
                    f"{name} must be None or non-negative, got {value!r}"
                )
