"""Rule identifiers: FD-Rules 1–7 (Section 3.2) and ST-Rules 1–8 (3.3.2).

The FD-Rules characterise a *valid scheduling sequence* over the complete
event/state history; the ST-Rules are their incremental, checkpoint-window
reformulation over the checking lists.  The paper proves that every fault
class violates at least one FD-Rule and that every FD-Rule violation
surfaces as an ST-Rule violation, which is what justifies the pruning
strategy.  ``SUSPECTS`` records which fault classes a given rule violation
implicates — it is how a :class:`~repro.detection.reports.FaultReport`
names its suspected faults.
"""

from __future__ import annotations

import enum

from repro.detection.faults import FaultClass

__all__ = [
    "FDRule",
    "STRule",
    "SUSPECTS",
    "DROP_TOLERANT",
    "is_drop_tolerant",
    "degrade_to_drop_tolerant",
]


class FDRule(enum.Enum):
    """FD-Rules over full event sequences (paper Section 3.2)."""

    #: 1a — a process enters only when no process uses the monitor.
    MUTUAL_EXCLUSION_ENTER = "FD-1a"
    #: 1b — Wait / unsuccessful Signal-Exit activates exactly one entry waiter.
    MUTUAL_EXCLUSION_RELEASE = "FD-1b"
    #: 1c — successful Signal-Exit activates exactly one condition waiter.
    MUTUAL_EXCLUSION_SIGNAL = "FD-1c"
    #: 1d — every process operating inside must have called Enter.
    ENTER_OBSERVED = "FD-1d"
    #: 2 — nontermination inside a monitor (exit within Tmax).
    NONTERMINATION = "FD-2"
    #: 3 — fair response: a request is delayed only when the monitor is busy.
    FAIR_RESPONSE = "FD-3"
    #: 4 — free of starvation and losing processes (queue residence <= Tio).
    NO_STARVATION = "FD-4"
    #: 5a — a condition waiter resumes only via a signal on that condition.
    CORRECT_SYNC_COND = "FD-5a"
    #: 5b — an entry waiter resumes only via Wait or a non-signalling Exit.
    CORRECT_SYNC_ENTRY = "FD-5b"
    #: 6a — 0 <= r <= s <= r + Rmax.
    RESOURCE_INVARIANT = "FD-6a"
    #: 6b — Wait(Send, full) only when R# = 0.
    SEND_WAIT_CONSISTENT = "FD-6b"
    #: 6c — Wait(Receive, empty) only when R# = Rmax.
    RECEIVE_WAIT_CONSISTENT = "FD-6c"
    #: 7a — every Acquire is followed by a Release before the next Acquire.
    ACQUIRE_THEN_RELEASE = "FD-7a"
    #: 7b — every Release is preceded by an unmatched Acquire.
    RELEASE_AFTER_ACQUIRE = "FD-7b"


class STRule(enum.Enum):
    """State-transition rules over the checking lists (Section 3.3.2)."""

    #: 1 — Enter-0-List equals the actual EQ at the checkpoint.
    ENTRY_QUEUE_MATCHES = "ST-1"
    #: 2 — each Wait-Cond-List equals the actual CQ[Cond] at the checkpoint.
    COND_QUEUE_MATCHES = "ST-2"
    #: 3a — at any time |Running-List| <= 1.
    ONE_INSIDE = "ST-3a"
    #: 3b — Wait/Signal-Exit only by the process that is Running.
    CALLER_IS_RUNNING = "ST-3b"
    #: 3c — a successful Enter leaves Running = {Pid}.
    ENTER_TAKES_FREE_MONITOR = "ST-3c"
    #: 3d — an unsuccessful Enter implies someone is Running.
    BLOCKED_MEANS_BUSY = "ST-3d"
    #: 4 — a process generating an event cannot be on any waiting list.
    EVENT_WHILE_BLOCKED = "ST-4"
    #: 5 — residence in Running / condition queues bounded by Tmax.
    TMAX_EXCEEDED = "ST-5"
    #: 6 — residence in the entry queue bounded by Tio.
    TIO_EXCEEDED = "ST-6"
    #: 7a — 0 <= r <= s <= r + Rmax (cumulative).
    RESOURCE_INVARIANT = "ST-7a"
    #: 7b — R# at the checkpoint equals last R# + r - s.
    RESOURCE_DELTA_MATCHES = "ST-7b"
    #: 7c — Wait(Send, full) only when Resource-No = 0.
    SEND_WAIT_CONSISTENT = "ST-7c"
    #: 7d — Wait(Receive, empty) only when Resource-No = Rmax.
    RECEIVE_WAIT_CONSISTENT = "ST-7d"
    #: 8a — no pid occurs twice in the Request-List.
    NO_DUPLICATE_REQUEST = "ST-8a"
    #: 8b — Enter(Release) requires the pid to be in the Request-List.
    RELEASE_REQUIRES_REQUEST = "ST-8b"
    #: 8c — no pid stays in the Request-List beyond Tlimit.
    REQUEST_NOT_RELEASED = "ST-8c"
    #: extension — a Signal/Signal-Exit flag must agree with the model
    #: condition queue (flag=1 needs a waiter; flag=0 with waiters pending
    #: is a missed resumption).  Implied by FD-Rule 1(c).
    SIGNAL_CONSISTENT = "ST-SG"
    #: extension — the running set at the checkpoint matches the model
    #: (catches held-monitor and not-observed faults; implied by the
    #: paper's "Running-List = s_t.Running" step of Algorithm-1).
    RUNNING_MATCHES = "ST-R"
    #: extension — a declared path-expression call order was violated.
    CALL_ORDER_VIOLATED = "ST-PX"
    #: extension — a circular wait across allocator monitors (wait-for
    #: graph cycle; see :mod:`repro.detection.waitfor`).
    WAIT_FOR_CYCLE = "ST-WF"


#: Rules whose verdict survives a lossy checking window.  The replay/
#: comparison rules (ST-1..ST-4, ST-R, ST-SG, the ST-7 resource ledger and
#: the ST-PX window replay) reconstruct state from the *full* event
#: sequence; with events missing, a divergence proves nothing — evaluating
#: them on an incomplete window manufactures false positives.  The timer
#: sweeps (ST-5, ST-6, ST-8c) and the wait-for-graph cycle check (ST-WF)
#: read residence times and edges straight off snapshots: a dropped event
#: can make them stale but their arithmetic stays well-defined, so they are
#: still evaluated on incomplete windows — with their reports downgraded to
#: ``Confidence.DEGRADED`` (see :mod:`repro.detection.reports`).
DROP_TOLERANT: frozenset[STRule] = frozenset(
    {
        STRule.TMAX_EXCEEDED,
        STRule.TIO_EXCEEDED,
        STRule.REQUEST_NOT_RELEASED,
        STRule.WAIT_FOR_CYCLE,
    }
)


def is_drop_tolerant(rule: enum.Enum) -> bool:
    """True when ``rule`` may be evaluated on an incomplete window."""
    return rule in DROP_TOLERANT


def degrade_to_drop_tolerant(reports):
    """Pure degraded-mode filter for one lossy window's findings.

    Keeps only the reports whose rules survive an incomplete event
    sequence — the drop-tolerant set above, plus the snapshot-witnessed
    mutual-exclusion violation (ST-3a with no triggering event: it reads
    the actual state directly and needs no events at all) — each
    downgraded to ``Confidence.DEGRADED``.  The timer-sweep rules ST-5/6
    are dropped entirely: the caller re-derives them exactly from the
    state snapshot (:func:`repro.detection.replay.sweep_timers`), which a
    truncated replay cannot.

    Operating on plain report lists (no checker state), this runs in the
    engine's phase 2, off the world-stop critical path.
    """
    from dataclasses import replace

    from repro.detection.reports import Confidence

    kept = []
    for report in reports:
        if report.rule in (STRule.TMAX_EXCEEDED, STRule.TIO_EXCEEDED):
            continue  # replaced by the caller's snapshot sweep
        snapshot_witnessed = (
            report.rule is STRule.ONE_INSIDE and report.event_seq is None
        )
        if is_drop_tolerant(report.rule) or snapshot_witnessed:
            kept.append(replace(report, confidence=Confidence.DEGRADED))
    return kept


#: Which fault classes a violation of each rule implicates.  A report lists
#: the union over the rules it violated; campaigns assert that their
#: injected class appears among the suspects.
SUSPECTS: dict[enum.Enum, tuple[FaultClass, ...]] = {
    STRule.ENTRY_QUEUE_MATCHES: (
        FaultClass.ENTER_REQUEST_LOST,
        FaultClass.ENTER_NO_RESPONSE,
        FaultClass.WAIT_NO_RESUME,
        FaultClass.WAIT_ENTRY_STARVED,
        # The entry queue also diverges when a second process was admitted
        # from it behind the model's back:
        FaultClass.WAIT_MUTEX_VIOLATED,
        FaultClass.SIGEXIT_MUTEX_VIOLATED,
    ),
    STRule.COND_QUEUE_MATCHES: (
        FaultClass.WAIT_CALLER_LOST,
        FaultClass.SIGEXIT_NO_RESUME,
    ),
    STRule.ONE_INSIDE: (
        FaultClass.ENTER_MUTEX_VIOLATED,
        FaultClass.WAIT_MUTEX_VIOLATED,
        FaultClass.SIGEXIT_MUTEX_VIOLATED,
    ),
    STRule.CALLER_IS_RUNNING: (
        FaultClass.ENTER_NOT_OBSERVED,
        FaultClass.WAIT_NO_BLOCK,
    ),
    STRule.ENTER_TAKES_FREE_MONITOR: (
        FaultClass.ENTER_MUTEX_VIOLATED,
        FaultClass.SIGEXIT_MONITOR_HELD,
        # An Enter that succeeds while the model believes the monitor is
        # occupied also arises when an earlier release resumed nobody (the
        # model admitted the head, reality left the monitor free):
        FaultClass.ENTER_NO_RESPONSE,
        FaultClass.WAIT_NO_RESUME,
    ),
    STRule.BLOCKED_MEANS_BUSY: (FaultClass.ENTER_NO_RESPONSE,),
    STRule.EVENT_WHILE_BLOCKED: (
        FaultClass.WAIT_NO_BLOCK,
        FaultClass.ENTER_REQUEST_LOST,
        # A process acting while the model still has it on a waiting list is
        # also the signature of a double resume: it was woken alongside the
        # legitimately admitted process.
        FaultClass.WAIT_MUTEX_VIOLATED,
        FaultClass.SIGEXIT_MUTEX_VIOLATED,
    ),
    STRule.TMAX_EXCEEDED: (
        FaultClass.TERMINATED_INSIDE,
        FaultClass.SIGEXIT_NO_RESUME,
        FaultClass.SIGEXIT_MONITOR_HELD,
        FaultClass.WAIT_MONITOR_HELD,
    ),
    STRule.TIO_EXCEEDED: (
        FaultClass.ENTER_NO_RESPONSE,
        FaultClass.WAIT_ENTRY_STARVED,
        FaultClass.ENTER_REQUEST_LOST,
        FaultClass.WAIT_NO_RESUME,
    ),
    STRule.RESOURCE_INVARIANT: (
        FaultClass.RECEIVE_EXCEEDS_SEND,
        FaultClass.SEND_EXCEEDS_CAPACITY,
    ),
    STRule.RESOURCE_DELTA_MATCHES: (
        FaultClass.SEND_DELAY_INTEGRITY,
        FaultClass.RECEIVE_DELAY_INTEGRITY,
    ),
    STRule.SEND_WAIT_CONSISTENT: (FaultClass.SEND_DELAY_INTEGRITY,),
    STRule.RECEIVE_WAIT_CONSISTENT: (FaultClass.RECEIVE_DELAY_INTEGRITY,),
    STRule.NO_DUPLICATE_REQUEST: (FaultClass.REQUEST_WHILE_HOLDING,),
    STRule.RELEASE_REQUIRES_REQUEST: (FaultClass.RELEASE_BEFORE_REQUEST,),
    STRule.REQUEST_NOT_RELEASED: (FaultClass.RESOURCE_NOT_RELEASED,),
    STRule.SIGNAL_CONSISTENT: (
        FaultClass.SIGEXIT_NO_RESUME,
        FaultClass.WAIT_CALLER_LOST,
    ),
    STRule.RUNNING_MATCHES: (
        FaultClass.ENTER_NOT_OBSERVED,
        FaultClass.WAIT_MONITOR_HELD,
        FaultClass.SIGEXIT_MONITOR_HELD,
        FaultClass.WAIT_NO_BLOCK,
        FaultClass.SIGEXIT_NO_RESUME,
    ),
    STRule.CALL_ORDER_VIOLATED: (
        FaultClass.RELEASE_BEFORE_REQUEST,
        FaultClass.REQUEST_WHILE_HOLDING,
    ),
    STRule.WAIT_FOR_CYCLE: (
        # A circular wait means every participant holds a resource it will
        # now never release (the deadlock freezes them all):
        FaultClass.RESOURCE_NOT_RELEASED,
        FaultClass.REQUEST_WHILE_HOLDING,
    ),
    # FD-rule suspects (used by the offline checker's reports)
    FDRule.MUTUAL_EXCLUSION_ENTER: (FaultClass.ENTER_MUTEX_VIOLATED,),
    FDRule.MUTUAL_EXCLUSION_RELEASE: (
        FaultClass.WAIT_NO_RESUME,
        FaultClass.WAIT_MUTEX_VIOLATED,
    ),
    FDRule.MUTUAL_EXCLUSION_SIGNAL: (
        FaultClass.SIGEXIT_NO_RESUME,
        FaultClass.SIGEXIT_MUTEX_VIOLATED,
    ),
    FDRule.ENTER_OBSERVED: (FaultClass.ENTER_NOT_OBSERVED,),
    FDRule.NONTERMINATION: (FaultClass.TERMINATED_INSIDE,),
    FDRule.FAIR_RESPONSE: (FaultClass.ENTER_NO_RESPONSE,),
    FDRule.NO_STARVATION: (
        FaultClass.WAIT_ENTRY_STARVED,
        FaultClass.ENTER_REQUEST_LOST,
    ),
    FDRule.CORRECT_SYNC_COND: (FaultClass.WAIT_NO_BLOCK,),
    FDRule.CORRECT_SYNC_ENTRY: (FaultClass.WAIT_CALLER_LOST,),
    FDRule.RESOURCE_INVARIANT: (
        FaultClass.RECEIVE_EXCEEDS_SEND,
        FaultClass.SEND_EXCEEDS_CAPACITY,
    ),
    FDRule.SEND_WAIT_CONSISTENT: (FaultClass.SEND_DELAY_INTEGRITY,),
    FDRule.RECEIVE_WAIT_CONSISTENT: (FaultClass.RECEIVE_DELAY_INTEGRITY,),
    FDRule.ACQUIRE_THEN_RELEASE: (
        FaultClass.REQUEST_WHILE_HOLDING,
        FaultClass.RESOURCE_NOT_RELEASED,
    ),
    FDRule.RELEASE_AFTER_ACQUIRE: (FaultClass.RELEASE_BEFORE_REQUEST,),
}
