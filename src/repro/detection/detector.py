"""The fault detector: a single-monitor façade over the detection engine.

``FaultDetector`` keeps the seed's one-monitor API (Figure 1's "fault
detection routine" box) while the actual machinery lives in
:class:`~repro.detection.engine.DetectionEngine`: constructing a detector
creates a private engine and registers the one monitor with it.

* **Periodic checking** — :meth:`FaultDetector.checkpoint` snapshots the
  actual scheduling state, cuts the history segment since the last
  checkpoint, and runs Algorithm-1 (always), Algorithm-2 (communication
  coordinators) and Algorithm-3's Step-2 timer sweep (allocators).  The
  paper suspends every other process for the whole check; the engine
  narrows that to a two-phase checkpoint — only the snapshot/cut runs
  inside the ``kernel.atomic`` section, rule evaluation happens after it
  over the frozen capture (see :mod:`repro.detection.engine`).
* **Real-time checking** — for allocator-type monitors (and any monitor
  with a declared call order) Algorithm-3's Step 1 is driven by a tap on
  the event sink, so level-III faults are reported on the very event that
  commits them.  :meth:`stop` detaches the tap.

``detector_process`` packages the periodic invocation as a kernel process:
spawn it alongside the workload and it checkpoints every ``interval`` time
units — the ``T`` whose choice the overhead experiment (Table 1) studies.

.. deprecated::
    ``FaultDetector`` and ``detector_process`` are deprecated shims.  New
    code should construct a :class:`repro.DetectionSession` — one
    constructor that wires the engine (or a sharded cluster), supervision
    and durability, for any number of monitors::

        session = DetectionSession(kernel, monitors=[monitor])
        session.start()

    Both shims emit a :class:`DeprecationWarning` (once per process) and
    will be removed after the migration window.
"""

from __future__ import annotations

import warnings
from typing import Iterator, Optional, Union

from repro.detection.algorithm3 import CallingOrderChecker
from repro.detection.config import DetectorConfig
from repro.detection.engine import DetectionEngine, engine_process
from repro.detection.reports import FaultReport
from repro.kernel.syscalls import Syscall
from repro.monitor.construct import Monitor, MonitorBase

__all__ = ["DetectorConfig", "FaultDetector", "detector_process"]

#: Deprecations already announced this process (warn once, not per call).
_warned: set[str] = set()


def _warn_deprecated(name: str) -> None:
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"{name} is deprecated; construct a repro.DetectionSession("
        "kernel, monitors=[...]) and call session.start() instead",
        DeprecationWarning,
        stacklevel=3,
    )


class FaultDetector:
    """Detection façade bound to one monitor.  **Deprecated** — use
    :class:`repro.DetectionSession`.

    A thin wrapper over a one-entry :class:`DetectionEngine`: the engine
    owns the Algorithm-1/2/3 state, the real-time tap and the report
    stream; this class preserves the original single-monitor surface
    (``reports``, ``checkpoint``, ``checkpoints_run`` …).
    """

    def __init__(
        self,
        target: Union[Monitor, MonitorBase],
        config: Optional[DetectorConfig] = None,
    ) -> None:
        _warn_deprecated("FaultDetector")
        monitor = target.monitor if isinstance(target, MonitorBase) else target
        self.config = config or DetectorConfig()
        self._engine = DetectionEngine(monitor.kernel, self.config)
        self._entry = self._engine.register(monitor, self.config)
        self._history = self._entry.history

    # ---------------------------------------------------------------- plumbing

    @property
    def engine(self) -> DetectionEngine:
        """The underlying (private, one-monitor) detection engine."""
        return self._engine

    @property
    def monitor(self) -> Monitor:
        return self._entry.monitor

    @property
    def algorithm3(self) -> Optional[CallingOrderChecker]:
        return self._entry.algorithm3

    def stop(self) -> None:
        """Ask a spawned ``detector_process`` to finish after its next wake.

        Also detaches the real-time Algorithm-3 tap from the event sink, so
        a stopped detector no longer intercepts (or pays for) recording.
        """
        self._engine.stop()

    @property
    def stopped(self) -> bool:
        return self._engine.stopped

    # -------------------------------------------------------------- periodic

    def checkpoint(self) -> list[FaultReport]:
        """Run one periodic check; returns (and retains) the new reports.

        Two phases: the snapshot and the history cut execute as a single
        atomic section (the paper's "all other running processes are
        suspended", Section 4, shrunk to its capture step); rule
        evaluation then runs over the frozen capture with the workload
        resumed.
        """
        return self._engine.checkpoint()

    @property
    def checkpoints_run(self) -> int:
        return self._engine.checkpoints_run

    @property
    def checking_seconds(self) -> float:
        """Accumulated wall-clock seconds spent checking, both phases
        (overhead accounting for the Table-1 experiment)."""
        return self._engine.checking_seconds

    @property
    def worldstop_seconds(self) -> float:
        """Wall-clock seconds inside phase-1 atomic sections (the part of
        :attr:`checking_seconds` that actually stalls the workload)."""
        return self._engine.worldstop_seconds

    @property
    def evaluate_seconds(self) -> float:
        """Wall-clock seconds of phase-2 rule evaluation (off the world
        stop; the workload runs concurrently)."""
        return self._engine.evaluate_seconds

    # ------------------------------------------------------------- reporting

    @property
    def reports(self) -> list[FaultReport]:
        """The monitor's report stream (live list, in detection order)."""
        return self._entry.reports

    def reports_for_rule(self, rule) -> list[FaultReport]:
        return [report for report in self.reports if report.rule is rule]

    def implicated_faults(self) -> frozenset:
        """Union of suspected fault classes over all reports so far."""
        return self._engine.implicated_faults()

    @property
    def clean(self) -> bool:
        """True when no violation has been reported."""
        return not self.reports


def detector_process(
    detector: FaultDetector,
    *,
    rounds: Optional[int] = None,
) -> Iterator[Syscall]:
    """Kernel process body invoking the detector every ``interval``.

    Runs ``rounds`` checkpoints (forever when None) or until
    :meth:`FaultDetector.stop` is called.  Spawn it like any workload
    process::

        kernel.spawn(detector_process(detector), name="detector")
    """
    _warn_deprecated("detector_process")
    return engine_process(detector.engine, rounds=rounds)
