"""The fault detector: periodic checking plus real-time order checking.

``FaultDetector`` wires the three algorithms to one monitor (Figure 1's
"fault detection routine" box):

* **Periodic checking** — :meth:`FaultDetector.checkpoint` snapshots the
  actual scheduling state, cuts the history segment since the last
  checkpoint, and runs Algorithm-1 (always), Algorithm-2 (communication
  coordinators) and Algorithm-3's Step-2 timer sweep (allocators).  Per the
  paper, the whole checkpoint runs with every other process suspended —
  realised as one ``kernel.atomic`` section.
* **Real-time checking** — for allocator-type monitors (and any monitor
  with a declared call order) Algorithm-3's Step 1 is driven by a tap on
  the history database, so level-III faults are reported on the very event
  that commits them.

``detector_process`` packages the periodic invocation as a kernel process:
spawn it alongside the workload and it checkpoints every ``interval`` time
units — the ``T`` whose choice the overhead experiment (Table 1) studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterator, Optional, Union

from repro.detection.algorithm1 import check_general_concurrency_control
from repro.detection.algorithm2 import ResourceStateChecker
from repro.detection.algorithm3 import CallingOrderChecker
from repro.detection.reports import FaultReport
from repro.history.database import HistoryDatabase
from repro.history.events import SchedulingEvent
from repro.kernel.syscalls import Delay, Syscall
from repro.monitor.construct import Monitor, MonitorBase

__all__ = ["DetectorConfig", "FaultDetector", "detector_process"]


@dataclass(frozen=True)
class DetectorConfig:
    """Tunables of the detection machinery.

    ``interval`` is the checking period ``T`` (Section 3.3: ``Tmax < T``
    keeps periodic checking sound; ``T = 1`` event-time makes it real-time).
    ``tmax`` bounds residence inside the monitor / on condition queues,
    ``tio`` bounds entry-queue residence, ``tlimit`` bounds resource
    holding.  Any timeout may be None to disable that sweep.
    """

    interval: float = 1.0
    tmax: Optional[float] = 5.0
    tio: Optional[float] = 10.0
    tlimit: Optional[float] = 10.0
    #: Drive Algorithm-3 Step 1 on every event (the paper's mandate for
    #: allocator monitors).  False falls back to replaying the window's
    #: events at each checkpoint instead.
    realtime_orders: bool = True


class FaultDetector:
    """Detection façade bound to one monitor."""

    def __init__(
        self,
        target: Union[Monitor, MonitorBase],
        config: Optional[DetectorConfig] = None,
    ) -> None:
        monitor = target.monitor if isinstance(target, MonitorBase) else target
        self._monitor = monitor
        self.config = config or DetectorConfig()
        if monitor.history is None:
            monitor.core.attach_history(HistoryDatabase())
        history = monitor.history
        assert history is not None
        if not history.opened:
            history.open(monitor.core.snapshot())
        self._history = history
        declaration = monitor.declaration
        self._algorithm2: Optional[ResourceStateChecker] = None
        if declaration.mtype.needs_resource_checking:
            checker = ResourceStateChecker(declaration)
            if checker.applicable:
                self._algorithm2 = checker
        self._algorithm3: Optional[CallingOrderChecker] = None
        if declaration.mtype.needs_order_checking or declaration.call_order:
            self._algorithm3 = CallingOrderChecker(declaration)
            if self.config.realtime_orders:
                history.subscribe(self._on_event)
        self.reports: list[FaultReport] = []
        self.checkpoints_run = 0
        #: Accumulated wall-clock seconds spent inside checkpoints
        #: (overhead accounting for the Table-1 experiment).
        self.checking_seconds = 0.0
        self._stopped = False

    # ---------------------------------------------------------------- plumbing

    @property
    def monitor(self) -> Monitor:
        return self._monitor

    @property
    def algorithm3(self) -> Optional[CallingOrderChecker]:
        return self._algorithm3

    def stop(self) -> None:
        """Ask a spawned ``detector_process`` to finish after its next wake."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    # ------------------------------------------------------------- real time

    def _on_event(self, event: SchedulingEvent) -> None:
        assert self._algorithm3 is not None
        self.reports.extend(self._algorithm3.on_event(event))

    # -------------------------------------------------------------- periodic

    def checkpoint(self) -> list[FaultReport]:
        """Run one periodic check; returns (and retains) the new reports.

        The snapshot, the history cut and the rule evaluation execute as a
        single atomic section: "upon detection, all other running processes
        are suspended and are resumed only after the checking has finished"
        (Section 4).
        """
        started = perf_counter()
        try:
            new_reports = self._monitor.kernel.atomic(self._checkpoint_locked)
        finally:
            self.checking_seconds += perf_counter() - started
        self.reports.extend(new_reports)
        self.checkpoints_run += 1
        return new_reports

    def _checkpoint_locked(self) -> list[FaultReport]:
        snapshot = self._monitor.core.snapshot()
        segment = self._history.cut(snapshot)
        found = check_general_concurrency_control(
            self._monitor.declaration,
            segment,
            tmax=self.config.tmax,
            tio=self.config.tio,
        )
        if self._algorithm2 is not None:
            found.extend(self._algorithm2.check_window(segment))
        if self._algorithm3 is not None:
            if not self.config.realtime_orders:
                for event in segment.events:
                    found.extend(self._algorithm3.on_event(event))
            if self.config.tlimit is not None:
                found.extend(
                    self._algorithm3.periodic(snapshot.time, self.config.tlimit)
                )
        return found

    # ------------------------------------------------------------- reporting

    def reports_for_rule(self, rule) -> list[FaultReport]:
        return [report for report in self.reports if report.rule is rule]

    def implicated_faults(self) -> frozenset:
        """Union of suspected fault classes over all reports so far."""
        suspects: set = set()
        for report in self.reports:
            suspects.update(report.suspected_faults)
        return frozenset(suspects)

    @property
    def clean(self) -> bool:
        """True when no violation has been reported."""
        return not self.reports


def detector_process(
    detector: FaultDetector,
    *,
    rounds: Optional[int] = None,
) -> Iterator[Syscall]:
    """Kernel process body invoking the detector every ``interval``.

    Runs ``rounds`` checkpoints (forever when None) or until
    :meth:`FaultDetector.stop` is called.  Spawn it like any workload
    process::

        kernel.spawn(detector_process(detector), name="detector")
    """
    remaining = rounds
    while remaining is None or remaining > 0:
        yield Delay(detector.config.interval)
        if detector.stopped:
            return
        detector.checkpoint()
        if remaining is not None:
            remaining -= 1
