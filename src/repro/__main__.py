"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo [--seed N] [--json PATH]``
    Run the quickstart workload (clean + injected fault) through a
    :class:`repro.DetectionSession` and print the findings.
``coverage [--seed N] [--json PATH]``
    The robustness experiment: inject all 21 fault classes, print the
    per-class detection table (exit status 1 if any class is missed).
``overhead [--backend sim|threads] [--seed N] [--repeats N] [--engine] [--bounded C] [--wal] [--fleet N] [--json PATH]``
    Regenerate Table 1 (overhead ratio vs checking interval); ``--engine``
    checks through a shared DetectionEngine registration, ``--bounded``
    records through a capacity-C ring buffer and surfaces dropped events,
    ``--wal`` instead measures write-ahead-log recording overhead
    (events/sec and bytes/event per fsync policy vs the in-memory sink),
    ``--fleet N`` instead compares incremental checking-list evaluation
    against the full re-walk on an N-monitor fleet (the hot-path gate).
``scaling [--backend sim|threads] [--seed N] [--counts N ...] [--shards N ...] [--quick] [--json PATH]``
    Engine scaling: batched checkpoints vs per-monitor detectors at
    fleet sizes 1/4/16; ``--shards`` compares staggered
    DetectionCluster shard counts instead (per-shard world-stop detail).
``chaos [--seed N] [--rounds N] [--network] [--clients N] [--json PATH]``
    Detector-resilience chaos campaign: a healthy workload with faults
    injected into the detection pipeline itself (raising evaluators,
    transient checkpoint failures, delays, event-drop bursts); exit
    status 1 unless the supervised engine rides it out cleanly.
    ``--network`` runs the detection-*service* campaign instead:
    N remote clients over a sim network with connection drops, partial
    frames, slow-consumer stalls and a server crash/restart; passes only
    with zero client-side exceptions, every lossy window DEGRADED and no
    duplicate reports after recovery.
``crash-recovery [--seed N] [--rounds N] [--crashes N] [--backend sim|threads] [--fsync P] [--points P ...] [--json PATH]``
    Crash-durability campaign: kill a WAL-backed DurableEngine at seeded
    crash points, restart and recover it, and compare the delivered fault
    set against an uninterrupted golden run; exit status 1 unless the
    sets match with zero duplicates.
``serve --socket PATH [--durable DIR] [--runtime S] [--json PATH]``
    Run the detection ingestion daemon behind a unix socket: remote
    clients ship checkpoint windows, the daemon replays them into shadow
    monitors and journals delivered reports (exactly-once across
    restarts when ``--durable`` is set).
``service-client --socket PATH [--rounds N] [--seed N] [--json PATH]``
    Run a demo workload (bounded buffer + allocator misuser) whose
    monitors report to a ``serve`` daemon through the fault-tolerant
    client; exits 0 only if no client-side exception escaped.
``service-smoke [--rounds N] [--json PATH]``
    End-to-end service smoke: start a daemon, run two client processes,
    SIGKILL and restart the daemon mid-run, and assert both clients
    survive with zero errors and the recovered journal holds no
    duplicate reports.
``check TRACE.jsonl --monitor {buffer,allocator} [--tmax T] ...``
    Offline FD-rule checking of a persisted JSONL trace (see
    :mod:`repro.history.serialize`).
``metrics [--seed N] [--monitors N] [--shards N] [--until S] [--stable] [--json PATH]``
    Run a seeded sim-kernel fleet through a :class:`DetectionSession` and
    export its live metrics registry: Prometheus text on stdout, the
    versioned ``repro-metrics/1`` JSON document via ``--json``.
    ``--stable`` drops wall-clock histogram families so two identical
    invocations produce byte-identical JSON.
``gates run SPEC.toml --metrics FILE [FILE ...] [--json PATH]``
    Evaluate declarative performance gates (TOML specs) against exported
    metrics JSON (``repro metrics`` dumps or ``BENCH_*.json`` bench
    envelopes); prints a pass/fail table and exits nonzero on any
    violation.
``selftest [--seed N] [--json PATH]``
    One fast end-to-end sanity pass (clean run + one injected fault).

Every randomised subcommand takes ``--seed``, and every result-producing
subcommand takes ``--json PATH`` ('-' for stdout) emitting one stable
top-level schema: ``{"command": ..., "seed": ..., "results": {...}}``.
(``check`` and ``faults`` are deterministic lookups with no measurement
payload, so they take neither.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main"]


def _emit_json(args: argparse.Namespace, results: dict) -> None:
    """Write the uniform ``{"command", "seed", "results"}`` envelope."""
    import json

    if getattr(args, "json", None) is None:
        return
    payload = json.dumps(
        {
            "command": args.command,
            "seed": getattr(args, "seed", None),
            "results": results,
        },
        indent=2,
    )
    if args.json == "-":
        print(payload)
    else:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"json written to {args.json}")


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import (
        BoundedBuffer,
        Delay,
        DetectionSession,
        DetectorConfig,
        HistoryDatabase,
        RandomPolicy,
        SimKernel,
        TriggeredHooks,
    )

    def run(hooks=None):
        kernel = SimKernel(RandomPolicy(seed=args.seed), on_deadlock="stop")
        buffer = BoundedBuffer(
            kernel,
            capacity=3,
            history=HistoryDatabase(),
            hooks=hooks,
            service_time=0.02,
        )
        if hooks is not None:
            hooks.core = buffer.monitor.core
        session = DetectionSession(
            kernel, monitors=[buffer], config=DetectorConfig(interval=0.5)
        )

        def producer():
            for item in range(25):
                yield Delay(0.05)
                yield from buffer.send(item)

        def consumer():
            for __ in range(25):
                yield Delay(0.04)
                yield from buffer.receive()

        kernel.spawn(producer())
        kernel.spawn(consumer())
        session.start()
        kernel.run(until=20)
        kernel.raise_failures()
        return session

    clean = run()
    print(f"clean run   : {len(clean.reports)} reports "
          f"(clean={clean.clean})")
    faulty = run(TriggeredHooks("enter_despite_owner", fire_at=2))
    print(f"faulty run  : {len(faulty.reports)} reports")
    for report in faulty.reports[:3]:
        print(f"   {report}")
    _emit_json(
        args,
        {
            "clean_run": {"reports": len(clean.reports), "clean": clean.clean},
            "faulty_run": {
                "reports": len(faulty.reports),
                "rules": sorted(
                    {report.rule_id for report in faulty.reports}
                ),
            },
        },
    )
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from repro.bench.coverage import main as coverage_main

    argv = ["--seed", str(args.seed)]
    if args.json is not None:
        argv += ["--json", args.json]
    return coverage_main(argv)


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.bench.overhead import main as overhead_main

    argv = ["--backend", args.backend, "--repeats", str(args.repeats)]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.engine:
        argv.append("--engine")
    if args.bounded is not None:
        argv += ["--bounded", str(args.bounded)]
    if args.wal:
        argv.append("--wal")
    if args.fleet is not None:
        argv += ["--fleet", str(args.fleet)]
    if args.evaluation is not None:
        argv += ["--evaluation", args.evaluation]
    if args.service:
        argv.append("--service")
    if args.intervals is not None:
        argv += ["--intervals"] + [str(value) for value in args.intervals]
    if args.scenarios is not None:
        argv += ["--scenarios"] + list(args.scenarios)
    if args.json is not None:
        argv += ["--json", args.json]
    return overhead_main(argv)


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.bench.engine_scaling import main as scaling_main

    argv = ["--backend", args.backend]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.counts:
        argv += ["--counts"] + [str(count) for count in args.counts]
    if args.shards:
        argv += ["--shards"] + [str(count) for count in args.shards]
    if args.processes:
        argv += [
            "--processes",
            "--workers", str(args.workers),
            "--repeats", str(args.repeats),
        ]
    if args.quick:
        argv.append("--quick")
    if args.json is not None:
        argv += ["--json", args.json]
    return scaling_main(argv)


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.network:
        from repro.injection.network import (
            NetworkChaosConfig,
            run_network_chaos_campaign,
        )

        result = run_network_chaos_campaign(
            NetworkChaosConfig(
                seed=args.seed, rounds=args.rounds, clients=args.clients
            )
        )
        print(result.summary())
        _emit_json(
            args,
            {
                "passed": result.passed,
                "summary": result.summary(),
                "windows_accepted": result.windows_accepted,
                "lossy_windows": result.lossy_windows,
                "degraded_windows": result.degraded_windows,
                "delivered_reports": result.delivered_reports,
                "duplicate_journal_keys": result.duplicate_journal_keys,
                "reconnects": result.reconnects,
                "client_errors": list(result.client_errors),
            },
        )
        return 0 if result.passed else 1
    from repro.injection.chaos import run_chaos_campaign

    result = run_chaos_campaign(seed=args.seed, rounds=args.rounds)
    print(result.summary())
    _emit_json(
        args, {"passed": result.passed, "summary": result.summary()}
    )
    return 0 if result.passed else 1


def _cmd_crash_recovery(args: argparse.Namespace) -> int:
    from repro.injection.chaos import CrashPoint, run_crash_recovery_campaign

    points = (
        tuple(CrashPoint(value) for value in args.points)
        if args.points
        else None
    )
    result = run_crash_recovery_campaign(
        seed=args.seed,
        rounds=args.rounds,
        crashes=args.crashes,
        backend=args.backend,
        fsync=args.fsync,
        crash_points=points,
    )
    print(result.summary())
    _emit_json(
        args, {"passed": result.passed, "summary": result.summary()}
    )
    return 0 if result.passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    print(f"detection daemon listening on {args.socket}")
    stats = serve(
        args.socket,
        durable_dir=args.durable,
        runtime=args.runtime,
        ready_file=args.ready_file,
        poll_interval=args.poll_interval,
        metrics_path=args.metrics_out,
        metrics_every=args.metrics_every,
    )
    print(
        f"daemon stopped: {stats['windows_accepted']} windows, "
        f"{stats['delivered_reports']} reports, "
        f"{stats['quarantined_connections']} quarantined"
    )
    _emit_json(args, stats)
    return 0


def _cmd_service_client(args: argparse.Namespace) -> int:
    from repro.apps.bounded_buffer import BoundedBuffer
    from repro.apps.resource_allocator import SingleResourceAllocator
    from repro.kernel.syscalls import Delay
    from repro.kernel.threads import ThreadKernel
    from repro.service.client import DetectionClient, client_process
    from repro.service.transport import unix_connector

    kernel = ThreadKernel(time_scale=args.time_scale)
    buffer = BoundedBuffer(kernel, capacity=3)
    allocator = SingleResourceAllocator(kernel, name="allocator")
    client = DetectionClient(
        kernel,
        unix_connector(args.socket),
        name=args.name,
        interval=args.interval,
        backoff_base=0.5,
        backoff_max=2.0 * args.interval,
        seed=args.seed,
    )
    client.attach(buffer, label="buffer")
    client.attach(allocator, label="allocator", tlimit=2.0 * args.interval)
    operations = args.rounds * 4
    phase = args.rounds * args.interval * 0.4

    def producer():
        for item in range(operations):
            yield Delay(0.11)
            yield from buffer.send(item)

    def consumer():
        for __ in range(operations):
            yield Delay(0.12)
            yield from buffer.receive()

    def misuser():
        yield Delay(0.35)
        yield from allocator.release()  # ST-8b + ST-PX
        yield Delay(phase)
        yield from allocator.request()
        yield Delay(0.07)
        yield from allocator.request()  # ST-8a; blocks on itself
        yield Delay(3.1 * args.interval)
        yield from allocator.release()

    def rescuer():
        yield Delay(0.35 + phase + 0.6)
        yield from allocator.release()  # un-wedges the misuser

    kernel.spawn(producer(), "producer")
    kernel.spawn(consumer(), "consumer")
    kernel.spawn(misuser(), "misuser")
    kernel.spawn(rescuer(), "rescuer")
    kernel.spawn(
        client_process(client, rounds=args.rounds, drain_rounds=60),
        "service-client",
    )
    horizon = (args.rounds + 65) * args.interval + 60.0
    kernel.run(until=horizon)
    stats = client.stats()
    print(
        f"{args.name}: {stats['windows_captured']} windows captured, "
        f"{stats['windows_acked']} acked, {stats['connects']} connect(s), "
        f"{stats['disconnects']} disconnect(s), "
        f"{len(stats['errors'])} error(s)"
    )
    for error in stats["errors"]:
        print(f"   client error: {error}")
    _emit_json(args, stats)
    ok = not stats["errors"] and stats["windows_acked"] > 0
    return 0 if ok else 1


def _cmd_service_smoke(args: argparse.Namespace) -> int:
    import os
    import shutil
    import signal
    import subprocess
    import tempfile
    import time
    from pathlib import Path

    import repro
    from repro.service.server import ServiceJournal, service_report_key

    root = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    socket_path = root / "daemon.sock"
    ready = root / "ready"
    durable = root / "journal"
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        path
        for path in (package_root, env.get("PYTHONPATH"))
        if path
    )
    procs: list[subprocess.Popen] = []

    def daemon() -> subprocess.Popen:
        if ready.exists():
            ready.unlink()
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", str(socket_path),
                "--durable", str(durable),
                "--ready-file", str(ready),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        procs.append(proc)
        deadline = time.monotonic() + 20.0
        while not ready.exists():
            if proc.poll() is not None or time.monotonic() > deadline:
                raise RuntimeError("daemon failed to start")
            time.sleep(0.05)
        return proc

    try:
        first = daemon()
        clients = []
        for index in range(2):
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "service-client",
                    "--socket", str(socket_path),
                    "--rounds", str(args.rounds),
                    "--interval", str(args.interval),
                    "--time-scale", str(args.time_scale),
                    "--seed", str(index),
                    "--name", f"smoke-{index}",
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            procs.append(proc)
            clients.append(proc)
        # Let both clients connect and ship a few windows, then kill the
        # daemon without ceremony and bring up a recovered incarnation.
        time.sleep(args.kill_after)
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=10)
        time.sleep(0.5)
        second = daemon()
        client_codes = [proc.wait(timeout=180) for proc in clients]
        second.send_signal(signal.SIGTERM)
        second.wait(timeout=30)
        journal = ServiceJournal(durable / "service.jsonl")
        keys = [service_report_key(r) for r in journal.reports]
        journal.close()
        duplicates = len(keys) - len(set(keys))
        results = {
            "client_exit_codes": client_codes,
            "reports_delivered": len(keys),
            "duplicate_reports": duplicates,
            "daemon_restarted": True,
        }
        passed = (
            all(code == 0 for code in client_codes)
            and duplicates == 0
            and len(keys) > 0
        )
        verdict = "PASS" if passed else "FAIL"
        print(
            f"service smoke [{verdict}]: clients={client_codes}, "
            f"{len(keys)} reports, {duplicates} duplicates after restart"
        )
        if not passed:
            for proc in clients:
                output = proc.stdout.read() if proc.stdout else ""
                if output:
                    print(output)
        _emit_json(args, results)
        return 0 if passed else 1
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        shutil.rmtree(root, ignore_errors=True)


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.detection import check_full_trace
    from repro.history.serialize import load_trace
    from repro.monitor import MonitorDeclaration, MonitorType

    declarations = {
        "buffer": MonitorDeclaration(
            name="buffer",
            mtype=MonitorType.COMMUNICATION_COORDINATOR,
            procedures=("Send", "Receive"),
            conditions=("full", "empty"),
            rmax=args.rmax,
        ),
        "allocator": MonitorDeclaration(
            name="allocator",
            mtype=MonitorType.RESOURCE_ALLOCATOR,
            procedures=("Request", "Release"),
            conditions=("free",),
            call_order="(Request ; Release)*",
        ),
    }
    declaration = declarations[args.monitor]
    with open(args.trace) as stream:
        events, states = load_trace(stream)
    final_state = states[-1] if states else None
    reports = check_full_trace(
        declaration,
        events,
        final_state=final_state,
        tmax=args.tmax,
        tio=args.tio,
        tlimit=args.tlimit,
    )
    print(f"checked {len(events)} events against FD-Rules 1-7")
    for report in reports:
        print(f"   {report}")
    print(f"{len(reports)} violation(s) found")
    return 1 if reports else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Print the fault-taxonomy reference card (classes, campaigns, rules)."""
    from repro._tables import render_table
    from repro.detection.faults import FaultClass, FaultLevel
    from repro.detection.rules import SUSPECTS, STRule
    from repro.injection.campaigns import CAMPAIGNS

    titles = {
        FaultLevel.IMPLEMENTATION: "Level I — implementation level",
        FaultLevel.PROCEDURE: "Level II — monitor procedure level",
        FaultLevel.USER_PROCESS: "Level III — user process level (real time)",
    }
    detecting_rules: dict[FaultClass, list[str]] = {f: [] for f in FaultClass}
    for rule in STRule:
        for fault in SUSPECTS.get(rule, ()):
            detecting_rules[fault].append(rule.value)
    for level in FaultLevel:
        rows = [
            [
                fault.label,
                CAMPAIGNS[fault].description[:50],
                ",".join(CAMPAIGNS[fault].primary_rules),
                ",".join(detecting_rules[fault][:5]),
            ]
            for fault in FaultClass.at_level(level)
        ]
        print(
            render_table(
                ["fault", "injected as", "primary rules", "all suspecting rules"],
                rows,
                title=titles[level],
            )
        )
        print()
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.detection.config import DetectorConfig
    from repro.detection.session import DetectionSession
    from repro.kernel.policies import RandomPolicy
    from repro.kernel.sim import SimKernel
    from repro.observability.export import to_json_dict, to_prometheus_text
    from repro.workloads.scenarios import WorkloadSpec, build_fleet

    kernel = SimKernel(RandomPolicy(seed=args.seed), on_deadlock="stop")
    spec = WorkloadSpec(
        processes=4, operations=args.operations, think_time=0.05,
        seed=args.seed,
    )
    session = DetectionSession(
        kernel,
        config=DetectorConfig(
            interval=0.5, tmax=120.0, tio=120.0, tlimit=120.0
        ),
        shards=args.shards,
    )
    fleet = build_fleet(kernel, args.monitors, spec)
    for run in fleet:
        session.register(run.monitor)
        run.spawn_all(kernel)
    session.start()
    kernel.run(until=args.until, max_steps=20_000_000)
    kernel.raise_failures()
    session.stop()
    registry = session.metrics()
    print(to_prometheus_text(registry), end="")
    _emit_json(args, to_json_dict(registry, stable_only=args.stable))
    return 0


def _cmd_gates(args: argparse.Namespace) -> int:
    from repro.observability.gates import (
        MetricsView,
        load_gate_specs,
        render_gate_table,
        run_gates,
    )

    specs = load_gate_specs(args.spec)
    view = MetricsView.from_files(args.metrics)
    results = run_gates(specs, view)
    print(render_gate_table(results))
    failed = sum(1 for result in results if result.status == "fail")
    _emit_json(
        args,
        {
            "spec": str(args.spec),
            "metrics_files": [str(path) for path in args.metrics],
            "gates": [result.to_dict() for result in results],
            "failed": failed,
        },
    )
    return 1 if failed else 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.detection import FaultClass
    from repro.injection import run_campaign

    seed = getattr(args, "seed", 0)
    demo = argparse.Namespace(seed=seed, json=None, command="demo")
    status = _cmd_demo(demo)
    outcome = run_campaign(FaultClass.RELEASE_BEFORE_REQUEST, seed=seed)
    print(f"campaign III.a: detected={outcome.detected}")
    _emit_json(
        args,
        {
            "demo_status": status,
            "campaign": {
                "fault": "III.a",
                "detected": outcome.detected,
                "rules": list(outcome.rules),
            },
        },
    )
    return 0 if status == 0 and outcome.detected else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Robust monitors with run-time fault detection "
        "(DSN 2001 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="quickstart demo")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--json", default=None, metavar="PATH")
    demo.set_defaults(func=_cmd_demo)

    coverage = subparsers.add_parser(
        "coverage", help="robustness experiment (21 fault campaigns)"
    )
    coverage.add_argument("--seed", type=int, default=0)
    coverage.add_argument("--json", default=None, metavar="PATH")
    coverage.set_defaults(func=_cmd_coverage)

    overhead = subparsers.add_parser(
        "overhead", help="Table 1: overhead vs checking interval"
    )
    overhead.add_argument(
        "--backend", choices=("sim", "threads"), default="threads"
    )
    overhead.add_argument("--seed", type=int, default=None)
    overhead.add_argument("--repeats", type=int, default=3)
    overhead.add_argument("--engine", action="store_true")
    overhead.add_argument("--bounded", type=int, default=None, metavar="CAPACITY")
    overhead.add_argument(
        "--wal",
        action="store_true",
        help="measure WAL recording overhead per fsync policy instead",
    )
    overhead.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="measure the incremental-vs-full phase-2 hot path on an "
        "N-monitor fleet instead",
    )
    overhead.add_argument(
        "--evaluation",
        choices=("threads", "processes"),
        default=None,
        help="with --fleet: route phase 2 through the given evaluation "
        "plane instead of in-line evaluation",
    )
    overhead.add_argument(
        "--service",
        action="store_true",
        help="measure detection-service ingest throughput instead",
    )
    overhead.add_argument(
        "--intervals",
        type=float,
        nargs="*",
        default=None,
        metavar="T",
        help="checking intervals to sweep (default: the paper's grid)",
    )
    overhead.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        metavar="NAME",
        help="monitor scenarios to measure (default: all three)",
    )
    overhead.add_argument("--json", default=None, metavar="PATH")
    overhead.set_defaults(func=_cmd_overhead)

    scaling = subparsers.add_parser(
        "scaling", help="engine scaling: batched vs per-monitor checkpoints"
    )
    scaling.add_argument("--backend", choices=("sim", "threads"), default="sim")
    scaling.add_argument("--seed", type=int, default=None)
    scaling.add_argument("--counts", type=int, nargs="*", default=None)
    scaling.add_argument(
        "--shards",
        type=int,
        nargs="*",
        default=None,
        metavar="N",
        help="compare staggered DetectionCluster shard counts instead",
    )
    scaling.add_argument(
        "--processes",
        action="store_true",
        help="compare phase-2 evaluation planes instead: pooled worker "
        "threads vs one evaluator worker process per shard",
    )
    scaling.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="shard/worker count for --processes (default 4)",
    )
    scaling.add_argument(
        "--repeats",
        type=int,
        default=2,
        metavar="K",
        help="runs per plane for --processes; best wall kept (default 2)",
    )
    scaling.add_argument("--quick", action="store_true")
    scaling.add_argument("--json", default=None, metavar="PATH")
    scaling.set_defaults(func=_cmd_scaling)

    chaos = subparsers.add_parser(
        "chaos", help="detector-resilience chaos campaign (sim kernel)"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--rounds", type=int, default=60)
    chaos.add_argument(
        "--network",
        action="store_true",
        help="run the network-fault campaign against the detection "
        "service instead (connection drops, torn frames, stalls, "
        "server crash/restart)",
    )
    chaos.add_argument(
        "--clients",
        type=int,
        default=3,
        metavar="N",
        help="client sessions for --network (default: 3)",
    )
    chaos.add_argument("--json", default=None, metavar="PATH")
    chaos.set_defaults(func=_cmd_chaos)

    serve = subparsers.add_parser(
        "serve",
        help="run the detection ingestion daemon on a unix socket",
    )
    serve.add_argument("--socket", required=True, metavar="PATH")
    serve.add_argument(
        "--durable",
        default=None,
        metavar="DIR",
        help="journal directory; enables crash recovery + exactly-once",
    )
    serve.add_argument(
        "--runtime",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this long (default: run until SIGTERM)",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="touch this file once the socket is listening",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.05, metavar="SECONDS"
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="dump the server's metrics registry as JSON here on "
        "shutdown (and periodically with --metrics-every)",
    )
    serve.add_argument(
        "--metrics-every",
        type=float,
        default=None,
        metavar="SECONDS",
        help="rewrite --metrics-out every this many seconds while serving",
    )
    serve.add_argument("--json", default=None, metavar="PATH")
    serve.set_defaults(func=_cmd_serve)

    service_client = subparsers.add_parser(
        "service-client",
        help="run a fault-injecting workload that reports to a daemon",
    )
    service_client.add_argument("--socket", required=True, metavar="PATH")
    service_client.add_argument("--rounds", type=int, default=10)
    service_client.add_argument("--interval", type=float, default=2.0)
    service_client.add_argument(
        "--time-scale",
        type=float,
        default=0.1,
        help="wall seconds per virtual second (default: 0.1)",
    )
    service_client.add_argument("--seed", type=int, default=0)
    service_client.add_argument("--name", default="client")
    service_client.add_argument("--json", default=None, metavar="PATH")
    service_client.set_defaults(func=_cmd_service_client)

    service_smoke = subparsers.add_parser(
        "service-smoke",
        help="end-to-end daemon smoke: two clients, kill + restart "
        "the server mid-run, assert no duplicate reports",
    )
    service_smoke.add_argument("--rounds", type=int, default=10)
    service_smoke.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="client checkpoint interval in virtual seconds (default 2.0)",
    )
    service_smoke.add_argument(
        "--time-scale",
        type=float,
        default=0.1,
        metavar="S",
        help="client wall seconds per virtual second (default 0.1)",
    )
    service_smoke.add_argument(
        "--kill-after",
        type=float,
        default=2.5,
        metavar="SECONDS",
        help="wall seconds before the daemon is SIGKILLed (default 2.5)",
    )
    service_smoke.add_argument("--json", default=None, metavar="PATH")
    service_smoke.set_defaults(func=_cmd_service_smoke)

    crash = subparsers.add_parser(
        "crash-recovery",
        help="crash-durability campaign: kill, restart, recover, compare",
    )
    crash.add_argument("--seed", type=int, default=0)
    crash.add_argument("--rounds", type=int, default=40)
    crash.add_argument("--crashes", type=int, default=4)
    crash.add_argument(
        "--backend", choices=("sim", "threads"), default="sim"
    )
    crash.add_argument(
        "--fsync", choices=("always", "interval", "never"), default="interval"
    )
    crash.add_argument(
        "--points",
        nargs="*",
        default=None,
        metavar="POINT",
        choices=(
            "mid-capture", "mid-evaluate",
            "mid-snapshot-write", "mid-wal-append",
        ),
        help="crash points to sample from (default: all four)",
    )
    crash.add_argument("--json", default=None, metavar="PATH")
    crash.set_defaults(func=_cmd_crash_recovery)

    check = subparsers.add_parser(
        "check", help="offline FD-rule check of a JSONL trace"
    )
    check.add_argument("trace", help="path to a JSONL trace file")
    check.add_argument(
        "--monitor", choices=("buffer", "allocator"), default="buffer"
    )
    check.add_argument("--rmax", type=int, default=3)
    check.add_argument("--tmax", type=float, default=None)
    check.add_argument("--tio", type=float, default=None)
    check.add_argument("--tlimit", type=float, default=None)
    check.set_defaults(func=_cmd_check)

    faults = subparsers.add_parser(
        "faults", help="fault-taxonomy reference card"
    )
    faults.set_defaults(func=_cmd_faults)

    metrics = subparsers.add_parser(
        "metrics",
        help="export a live DetectionSession's metrics "
        "(Prometheus text + repro-metrics JSON)",
    )
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--monitors",
        type=int,
        default=4,
        metavar="N",
        help="fleet size to drive (default 4)",
    )
    metrics.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="engine shards (default 2)",
    )
    metrics.add_argument(
        "--operations",
        type=int,
        default=40,
        metavar="N",
        help="operations per workload process (default 40)",
    )
    metrics.add_argument(
        "--until",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="virtual-time horizon (default 20)",
    )
    metrics.add_argument(
        "--stable",
        action="store_true",
        help="drop wall-clock histogram families from the JSON export "
        "so identical seeded runs are byte-identical",
    )
    metrics.add_argument("--json", default=None, metavar="PATH")
    metrics.set_defaults(func=_cmd_metrics)

    gates = subparsers.add_parser(
        "gates",
        help="evaluate declarative perf gates against exported metrics",
    )
    gates_sub = gates.add_subparsers(dest="gates_command", required=True)
    gates_run = gates_sub.add_parser(
        "run", help="run a TOML gate spec against metrics JSON files"
    )
    gates_run.add_argument("spec", metavar="SPEC.toml")
    gates_run.add_argument(
        "--metrics",
        nargs="+",
        required=True,
        metavar="FILE",
        help="metrics JSON documents (repro metrics dumps or BENCH_*.json)",
    )
    gates_run.add_argument("--json", default=None, metavar="PATH")
    gates_run.set_defaults(func=_cmd_gates)

    selftest = subparsers.add_parser("selftest", help="fast sanity pass")
    selftest.add_argument("--seed", type=int, default=0)
    selftest.add_argument("--json", default=None, metavar="PATH")
    selftest.set_defaults(func=_cmd_selftest)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
