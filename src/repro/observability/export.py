"""Prometheus text-format and stable-JSON exporters for the registry.

Two serializations of one :class:`~repro.observability.registry.MetricsRegistry`:

* :func:`to_prometheus_text` — the Prometheus exposition format
  (``# HELP`` / ``# TYPE`` comments, ``name{label="v"} value`` samples,
  cumulative ``_bucket{le="..."}`` rows plus ``_sum``/``_count`` for
  histograms).  Scrapeable line syntax; ordering is deterministic.
* :func:`to_json_dict` — a versioned JSON document (``schema`` =
  :data:`METRICS_SCHEMA`) shared by ``repro metrics``, the bench
  ``BENCH_*.json`` payloads, and the gate runner.  Keys and metric order
  are stable, so identical seeded sim-kernel runs serialize to identical
  bytes (``stable_only=True`` additionally drops wall-clock families).

The JSON schema, version ``repro-metrics/1``::

    {
      "schema": "repro-metrics/1",
      "metrics": [
        {"name": ..., "kind": "counter"|"gauge", "help": ...,
         "labels": {...}, "value": <float>},
        {"name": ..., "kind": "histogram", "help": ..., "labels": {...},
         "buckets": [<bound>, ...],          # finite bounds
         "counts": [<int>, ...],             # per-bucket, +Inf slot last
         "sum": <float>, "count": <int>,
         "p50": <float>, "p95": <float>, "p99": <float>}
      ]
    }

One entry per child (label set), sorted by ``(name, label values)``.
Bump the schema suffix on any incompatible change; consumers (gates,
CI artifact diffing) check the prefix.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

from repro.observability.registry import Histogram, MetricsRegistry

__all__ = [
    "METRICS_SCHEMA",
    "to_prometheus_text",
    "to_json_dict",
    "write_metrics_json",
    "metric_samples",
]

#: Version tag carried by every JSON export.  ``repro-metrics/<major>``.
METRICS_SCHEMA = "repro-metrics/1"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return _format_value(bound)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                cumulative = child.cumulative()
                for bound, count in zip(child.bounds, cumulative):
                    le = _format_labels(labels, f'le="{_format_bound(bound)}"')
                    lines.append(f"{family.name}_bucket{le} {count}")
                inf = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{inf} {cumulative[-1]}")
                suffix = _format_labels(labels)
                lines.append(
                    f"{family.name}_sum{suffix} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{suffix} {child.count}")
            else:
                suffix = _format_labels(labels)
                lines.append(
                    f"{family.name}{suffix} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def to_json_dict(
    registry: MetricsRegistry, *, stable_only: bool = False
) -> dict:
    """Serialize the registry to the versioned JSON document.

    ``stable_only=True`` drops families declared ``stable=False`` (the
    wall-clock latency histograms), leaving only values that reproduce
    exactly under the sim kernel.
    """
    metrics: list[dict] = []
    for family in registry.collect():
        if stable_only and not family.stable:
            continue
        for labels, child in family.samples():
            entry: dict = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labels": labels,
            }
            if isinstance(child, Histogram):
                entry["buckets"] = list(child.bounds)
                entry["counts"] = list(child.bucket_counts())
                entry["sum"] = child.sum
                entry["count"] = child.count
                entry["p50"] = child.percentile(0.50)
                entry["p95"] = child.percentile(0.95)
                entry["p99"] = child.percentile(0.99)
            else:
                entry["value"] = child.value
            metrics.append(entry)
    return {"schema": METRICS_SCHEMA, "metrics": metrics}


def write_metrics_json(
    target: Union[str, IO[str]],
    registry: MetricsRegistry,
    *,
    stable_only: bool = False,
) -> None:
    """Dump :func:`to_json_dict` to a path or stream, byte-stable."""
    payload = to_json_dict(registry, stable_only=stable_only)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        with open(target, "w", encoding="utf-8") as stream:  # type: ignore[arg-type]
            stream.write(text)


def metric_samples(payload: dict) -> list[dict]:
    """Extract the metric entry list from any export-bearing document.

    Accepts a raw :func:`to_json_dict` document, a CLI envelope whose
    ``results`` is (or contains) one, or a bench envelope with the export
    under ``results["metrics"]``.  Raises ``ValueError`` when no
    ``repro-metrics`` document is found or the schema major is unknown.
    """
    candidates = [payload]
    results = payload.get("results")
    if isinstance(results, dict):
        candidates.append(results)
        nested = results.get("metrics")
        if isinstance(nested, dict):
            candidates.append(nested)
    nested = payload.get("metrics")
    if isinstance(nested, dict):
        candidates.append(nested)
    for candidate in candidates:
        schema = candidate.get("schema")
        if isinstance(schema, str) and schema.startswith("repro-metrics/"):
            if schema != METRICS_SCHEMA:
                raise ValueError(
                    f"unsupported metrics schema {schema!r}; "
                    f"this build reads {METRICS_SCHEMA!r}"
                )
            entries = candidate.get("metrics")
            if not isinstance(entries, list):
                raise ValueError("metrics document has no 'metrics' list")
            return entries
    raise ValueError(
        "no repro-metrics document found (expected a 'schema': "
        f"'{METRICS_SCHEMA}' block at top level or under results.metrics)"
    )
