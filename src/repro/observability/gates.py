"""Obligation-style release gates evaluated against exported metrics.

A gate spec turns "world-stop p99 < 5 ms" or "WAL overhead < 2x memory"
from an ad-hoc CI shell snippet into a declarative obligation::

    [[gate]]
    name = "incremental-beats-full"
    metric = "repro_bench_evaluate_seconds"
    labels = { mode = "incremental" }
    op = "<"
    threshold = 1.0
    [gate.baseline]
    metric = "repro_bench_evaluate_seconds"
    labels = { mode = "full" }

Semantics:

* ``metric`` (+ optional ``labels`` selector) picks a sample from the
  metrics JSON (:mod:`repro.observability.export` schema).  The selector
  must match exactly one entry; zero or many matches fail the gate —
  a gate over a metric that was never exported is a violation, not a
  silent pass.
* ``percentile`` (e.g. ``99`` or ``0.99``) reads ``pNN`` from a
  histogram entry (recomputed from the bucket counts when the canned
  p50/p95/p99 don't cover it).
* ``[gate.baseline]`` names a second sample; the compared value becomes
  the ratio ``value / baseline`` (so ``op="<" threshold=2.0`` states
  "under 2x the baseline").  A zero baseline fails the gate.
* ``op`` is one of ``< <= > >= == !=``; the gate passes when
  ``compared OP threshold`` holds.
* ``[gate.when]`` is an optional precondition with the same
  ``metric``/``labels``/``op``/``threshold`` shape; when it does not
  hold the gate is *skipped* (reported, but not a violation).  This is
  how "processes beat threads, but only on >= 4 cores" is expressed.

The runner (``repro gates run SPEC --metrics FILE...``) loads one or
more metrics JSON files (raw exports or CLI/bench envelopes), evaluates
every gate, prints a pass/fail table, and exits nonzero on violation.

TOML parsing uses :mod:`tomllib` where available (python >= 3.11) and
falls back to a minimal built-in parser covering the subset the gate
format needs (``[[gate]]`` array tables, sub-tables, inline tables,
strings/numbers/booleans) — no third-party dependency either way.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

try:  # python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    tomllib = None

from repro.observability.export import metric_samples
from repro.observability.registry import Histogram

__all__ = [
    "GateSpec",
    "GateResult",
    "MetricsView",
    "load_gate_specs",
    "parse_gate_specs",
    "run_gates",
    "render_gate_table",
]

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class _Selector:
    """One metric lookup: name + label filter + optional percentile."""

    metric: str
    labels: tuple[tuple[str, str], ...] = ()
    percentile: Optional[float] = None

    @classmethod
    def from_table(cls, table: dict, context: str) -> "_Selector":
        metric = table.get("metric")
        if not isinstance(metric, str) or not metric:
            raise ValueError(f"{context}: 'metric' (string) is required")
        labels = table.get("labels", {})
        if not isinstance(labels, dict):
            raise ValueError(f"{context}: 'labels' must be a table")
        percentile = table.get("percentile")
        if percentile is not None:
            percentile = _normalize_percentile(percentile, context)
        return cls(
            metric=metric,
            labels=tuple(sorted((str(k), str(v)) for k, v in labels.items())),
            percentile=percentile,
        )

    def describe(self) -> str:
        text = self.metric
        if self.labels:
            inner = ",".join(f"{k}={v}" for k, v in self.labels)
            text += "{" + inner + "}"
        if self.percentile is not None:
            text += f" p{self.percentile * 100:g}"
        return text


def _normalize_percentile(value: object, context: str) -> float:
    try:
        q = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ValueError(f"{context}: percentile must be a number") from None
    if q > 1.0:  # "99" means p99
        q /= 100.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"{context}: percentile out of range: {value}")
    return q


@dataclass(frozen=True)
class GateSpec:
    """One declarative obligation from a ``[[gate]]`` table."""

    name: str
    value: _Selector
    op: str
    threshold: float
    baseline: Optional[_Selector] = None
    when: Optional[tuple] = None  # (_Selector, op, threshold)

    def describe(self) -> str:
        lhs = self.value.describe()
        if self.baseline is not None:
            lhs = f"{lhs} / {self.baseline.describe()}"
        return f"{lhs} {self.op} {self.threshold:g}"


@dataclass
class GateResult:
    """Outcome of evaluating one gate against the metrics view."""

    gate: GateSpec
    status: str  # "pass" | "fail" | "skip"
    value: Optional[float] = None
    compared: Optional[float] = None
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status != "fail"

    def to_dict(self) -> dict:
        return {
            "name": self.gate.name,
            "obligation": self.gate.describe(),
            "status": self.status,
            "value": self.value,
            "compared": self.compared,
            "detail": self.detail,
        }


class MetricsView:
    """Metric entries from one or more export documents, queryable."""

    def __init__(self, entries: Sequence[dict]) -> None:
        self.entries = list(entries)

    @classmethod
    def from_files(cls, paths: Sequence[str]) -> "MetricsView":
        entries: list[dict] = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
            if not isinstance(payload, dict):
                raise ValueError(f"{path}: expected a JSON object")
            entries.extend(metric_samples(payload))
        return cls(entries)

    def lookup(self, selector: _Selector) -> float:
        wanted = dict(selector.labels)
        matches = [
            entry
            for entry in self.entries
            if entry.get("name") == selector.metric
            and all(
                str(entry.get("labels", {}).get(k)) == v
                for k, v in wanted.items()
            )
        ]
        if not matches:
            raise LookupError(f"no metric matches {selector.describe()}")
        if len(matches) > 1:
            labels = [entry.get("labels", {}) for entry in matches]
            raise LookupError(
                f"{selector.describe()} is ambiguous: "
                f"{len(matches)} entries match ({labels}); "
                "tighten the labels selector"
            )
        entry = matches[0]
        if entry.get("kind") == "histogram":
            return self._histogram_value(entry, selector)
        if selector.percentile is not None:
            raise LookupError(
                f"{selector.describe()}: percentile requested but "
                f"{selector.metric} is a {entry.get('kind')}"
            )
        value = entry.get("value")
        if not isinstance(value, (int, float)):
            raise LookupError(f"{selector.describe()}: entry has no value")
        return float(value)

    @staticmethod
    def _histogram_value(entry: dict, selector: _Selector) -> float:
        if selector.percentile is None:
            raise LookupError(
                f"{selector.describe()}: histogram gates need 'percentile'"
            )
        canned = {0.50: "p50", 0.95: "p95", 0.99: "p99"}.get(
            selector.percentile
        )
        if canned and isinstance(entry.get(canned), (int, float)):
            return float(entry[canned])
        bounds = entry.get("buckets")
        counts = entry.get("counts")
        if not bounds or not counts:
            raise LookupError(
                f"{selector.describe()}: entry carries no bucket data"
            )
        histogram = Histogram(bounds)
        with histogram._lock:
            for index, count in enumerate(counts):
                histogram._counts[index] = int(count)
            histogram._count = sum(int(c) for c in counts)
            histogram._sum = float(entry.get("sum", 0.0))
        return histogram.percentile(selector.percentile)


# --------------------------------------------------------------------------
# Spec loading


def parse_gate_specs(data: dict) -> list[GateSpec]:
    """Build :class:`GateSpec` objects from a parsed TOML document."""
    tables = data.get("gate")
    if not isinstance(tables, list) or not tables:
        raise ValueError("gate spec must contain at least one [[gate]] table")
    specs: list[GateSpec] = []
    for index, table in enumerate(tables):
        context = f"[[gate]] #{index + 1}"
        if not isinstance(table, dict):
            raise ValueError(f"{context}: expected a table")
        name = table.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{context}: 'name' (string) is required")
        context = f"gate {name!r}"
        op = table.get("op")
        if op not in _OPS:
            raise ValueError(
                f"{context}: 'op' must be one of {sorted(_OPS)}, got {op!r}"
            )
        threshold = table.get("threshold")
        if not isinstance(threshold, (int, float)) or isinstance(
            threshold, bool
        ):
            raise ValueError(f"{context}: 'threshold' (number) is required")
        value = _Selector.from_table(table, context)
        baseline = None
        if "baseline" in table:
            if not isinstance(table["baseline"], dict):
                raise ValueError(f"{context}: [gate.baseline] must be a table")
            baseline = _Selector.from_table(
                table["baseline"], f"{context} baseline"
            )
        when = None
        if "when" in table:
            when_table = table["when"]
            if not isinstance(when_table, dict):
                raise ValueError(f"{context}: [gate.when] must be a table")
            when_op = when_table.get("op")
            if when_op not in _OPS:
                raise ValueError(
                    f"{context} when: 'op' must be one of {sorted(_OPS)}"
                )
            when_threshold = when_table.get("threshold")
            if not isinstance(when_threshold, (int, float)) or isinstance(
                when_threshold, bool
            ):
                raise ValueError(
                    f"{context} when: 'threshold' (number) is required"
                )
            when = (
                _Selector.from_table(when_table, f"{context} when"),
                when_op,
                float(when_threshold),
            )
        specs.append(
            GateSpec(
                name=name,
                value=value,
                op=op,
                threshold=float(threshold),
                baseline=baseline,
                when=when,
            )
        )
    return specs


def load_gate_specs(path: str) -> list[GateSpec]:
    """Load ``[[gate]]`` specs from a TOML file."""
    with open(path, "rb") as stream:
        raw = stream.read()
    if tomllib is not None:
        data = tomllib.loads(raw.decode("utf-8"))
    else:
        data = _parse_toml_subset(raw.decode("utf-8"))
    return parse_gate_specs(data)


# --------------------------------------------------------------------------
# Evaluation


def _evaluate(spec: GateSpec, view: MetricsView) -> GateResult:
    if spec.when is not None:
        selector, op, threshold = spec.when
        try:
            probe = view.lookup(selector)
        except LookupError as error:
            return GateResult(
                spec, "fail", detail=f"when-clause lookup failed: {error}"
            )
        if not _OPS[op](probe, threshold):
            return GateResult(
                spec,
                "skip",
                detail=(
                    f"precondition not met: "
                    f"{selector.describe()}={probe:g} not {op} {threshold:g}"
                ),
            )
    try:
        value = view.lookup(spec.value)
    except LookupError as error:
        return GateResult(spec, "fail", detail=str(error))
    compared = value
    if spec.baseline is not None:
        try:
            base = view.lookup(spec.baseline)
        except LookupError as error:
            return GateResult(spec, "fail", value=value, detail=str(error))
        if base == 0:
            return GateResult(
                spec,
                "fail",
                value=value,
                detail=f"baseline {spec.baseline.describe()} is zero",
            )
        compared = value / base
    ok = _OPS[spec.op](compared, spec.threshold)
    detail = f"{compared:g} {spec.op} {spec.threshold:g}"
    return GateResult(
        spec,
        "pass" if ok else "fail",
        value=value,
        compared=compared,
        detail=detail,
    )


def run_gates(
    specs: Sequence[GateSpec], view: MetricsView
) -> list[GateResult]:
    """Evaluate every gate; order preserved from the spec file."""
    return [_evaluate(spec, view) for spec in specs]


_STATUS_MARK = {"pass": "PASS", "fail": "FAIL", "skip": "SKIP"}


def render_gate_table(results: Sequence[GateResult]) -> str:
    """Human-readable pass/fail table, one row per gate."""
    rows = [("gate", "obligation", "status", "detail")]
    for result in results:
        rows.append(
            (
                result.gate.name,
                result.gate.describe(),
                _STATUS_MARK[result.status],
                result.detail,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(
                (
                    row[0].ljust(widths[0]),
                    row[1].ljust(widths[1]),
                    row[2].ljust(widths[2]),
                    row[3],
                )
            ).rstrip()
        )
        if index == 0:
            lines.append("-" * (sum(widths) + 6 + max(len(row[3]), 0)))
    failed = sum(1 for r in results if r.status == "fail")
    skipped = sum(1 for r in results if r.status == "skip")
    passed = sum(1 for r in results if r.status == "pass")
    lines.append(
        f"{passed} passed, {failed} failed, {skipped} skipped "
        f"of {len(results)} gate(s)"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Minimal TOML-subset parser (python 3.10 fallback; no tomllib, no deps).
# Covers exactly what gate specs use: [[array.tables]], [sub.tables],
# key = "string" | number | true/false | { inline = "table" }.


def _parse_toml_scalar(text: str, line_number: int):
    text = text.strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        body = text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("{"):
        if not text.endswith("}"):
            raise ValueError(f"line {line_number}: unterminated inline table")
        inner = text[1:-1].strip()
        table: dict = {}
        if inner:
            for part in inner.split(","):
                if "=" not in part:
                    raise ValueError(
                        f"line {line_number}: bad inline table entry {part!r}"
                    )
                key, value = part.split("=", 1)
                table[key.strip()] = _parse_toml_scalar(value, line_number)
        return table
    try:
        if any(c in text for c in ".eE") and not text.startswith("0x"):
            return float(text)
        return int(text, 0)
    except ValueError:
        raise ValueError(
            f"line {line_number}: unsupported TOML value {text!r} "
            "(fallback parser reads strings, numbers, booleans, "
            "and inline tables)"
        ) from None


def _parse_toml_subset(text: str) -> dict:
    """Parse the TOML subset used by gate specs (3.10 fallback)."""
    root: dict = {}
    current = root
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise ValueError(f"line {line_number}: bad table header")
            path = line[2:-2].strip().split(".")
            parent = root
            for part in path[:-1]:
                parent = _descend(parent, part, line_number)
            array = parent.setdefault(path[-1], [])
            if not isinstance(array, list):
                raise ValueError(
                    f"line {line_number}: {path[-1]!r} is not an array table"
                )
            current = {}
            array.append(current)
        elif line.startswith("["):
            if not line.endswith("]"):
                raise ValueError(f"line {line_number}: bad table header")
            path = line[1:-1].strip().split(".")
            parent = root
            # A [gate.labels] header after [[gate]] attaches to the most
            # recent element of the 'gate' array, per TOML semantics.
            for part in path[:-1]:
                parent = _descend(parent, part, line_number)
            table = parent.setdefault(path[-1], {})
            if not isinstance(table, dict):
                raise ValueError(
                    f"line {line_number}: {path[-1]!r} is not a table"
                )
            current = table
        else:
            if "=" not in line:
                raise ValueError(
                    f"line {line_number}: expected 'key = value', "
                    f"got {raw_line!r}"
                )
            key, value = line.split("=", 1)
            # Strip trailing comments outside strings (best effort: gate
            # specs keep values and comments on simple lines).
            value = value.strip()
            if not value.startswith('"') and "#" in value:
                value = value.split("#", 1)[0].strip()
            current[key.strip()] = _parse_toml_scalar(value, line_number)
    return root


def _descend(parent: dict, part: str, line_number: int) -> dict:
    node = parent.get(part)
    if isinstance(node, list):
        if not node:
            raise ValueError(
                f"line {line_number}: array table {part!r} is empty"
            )
        node = node[-1]
    elif node is None:
        node = parent.setdefault(part, {})
    if not isinstance(node, dict):
        raise ValueError(f"line {line_number}: {part!r} is not a table")
    return node
