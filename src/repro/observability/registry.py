"""Metrics registry: counters, gauges, and histograms with labels.

The single stats surface for the whole stack.  Every component keeps its
cheap native counters on the hot path (plain ``int``/``float`` attributes,
or an owned :class:`Histogram` where per-observation latency matters) and
assembles a :class:`MetricsRegistry` snapshot on demand via a ``metrics()``
method — ``DetectionEngine.metrics()``, ``DetectionCluster.metrics()``,
``DetectionSession.metrics()``, ``DetectionServer.metrics()``.  Exporters
(:mod:`repro.observability.export`) and the gate runner
(:mod:`repro.observability.gates`) consume the registry, never the
components directly.

Design notes
------------

* **Labels** follow the Prometheus model: a *family* is declared once with
  a fixed tuple of label names (``shard``, ``monitor``, ``phase``, ...);
  ``family.labels(shard="0")`` returns the child instrument for that label
  set, creating it on first use.
* **Histograms** use explicit cumulative bucket bounds (``le`` semantics:
  an observation equal to a bound lands in that bound's bucket) plus an
  implicit ``+Inf`` bucket, and keep the *exact* sum and count alongside
  the bucket counts.  Percentiles are estimated by linear interpolation
  inside the containing bucket, which is deterministic given the counts.
* **Thread safety**: one lock per child instrument; the registry itself
  locks family creation.  Observing is a counter bump plus one bisect —
  cheap enough for the WAL append path.
* **Stability**: families carry a ``stable`` flag.  Wall-clock timing
  families are declared ``stable=False`` so the JSON exporter can emit a
  byte-deterministic subset for sim-kernel runs (two identical seeded
  runs produce identical stable-only exports).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default latency bucket bounds (seconds).  Spans 10us .. 10s, the range
#: between a single staged-record append and a pathological world-stop.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value that can go up and down."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram with exact sum/count and percentiles.

    ``bounds`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything above the last bound.  ``le`` semantics mean an
    observation exactly equal to a bound counts toward that bucket.
    """

    kind = "histogram"

    def __init__(
        self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be increasing: {bounds}")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError("+Inf bucket is implicit; bounds must be finite")
        self.bounds = bounds
        self._lock = threading.Lock()
        # One slot per finite bound plus the +Inf slot at the end.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_all(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with differing bounds: "
                f"{self.bounds} != {other.bounds}"
            )
        counts = other.bucket_counts()
        with other._lock:
            other_sum, other_count = other._sum, other._count
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += count
            self._sum += other_sum
            self._count += other_count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts, ``+Inf`` slot last."""
        with self._lock:
            return tuple(self._counts)

    def cumulative(self) -> tuple[int, ...]:
        """Cumulative counts per bound, Prometheus ``le`` style."""
        out = []
        total = 0
        for count in self.bucket_counts():
            total += count
            out.append(total)
        return tuple(out)

    def percentile(self, q: float) -> float:
        """Estimate the ``q`` quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation inside the containing bucket; the first
        bucket interpolates from 0.  Observations in the ``+Inf`` bucket
        clamp to the highest finite bound (the histogram cannot resolve
        beyond its bounds).  An empty histogram returns 0.0.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            counts = tuple(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0.0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            if seen + count >= rank:
                if index >= len(self.bounds):  # +Inf bucket
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                fraction = (rank - seen) / count
                return lower + (upper - lower) * fraction
            seen += count
        return self.bounds[-1]


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its per-label-set child instruments."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        stable: bool = True,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if kind not in _INSTRUMENTS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.stable = stable
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _signature(self) -> tuple:
        extra = self.buckets if self.kind == "histogram" else ()
        return (self.kind, self.labelnames, self.stable, extra)

    def labels(self, **labelvalues: object):
        """Child instrument for one label set (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self.buckets)
                else:
                    child = _INSTRUMENTS[self.kind]()
                self._children[key] = child
            return child

    def samples(self) -> list[tuple[dict[str, str], object]]:
        """``(labels-dict, instrument)`` pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]


class MetricsRegistry:
    """A collection of metric families, declared idempotently by name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        *,
        stable: bool = True,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        family = MetricFamily(
            name, kind, help, labelnames, stable=stable, buckets=buckets
        )
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing._signature() != family._signature():
                    raise ValueError(
                        f"metric {name!r} re-declared with a different "
                        f"signature: {existing._signature()} "
                        f"!= {family._signature()}"
                    )
                return existing
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        stable: bool = True,
    ) -> MetricFamily:
        return self._declare(name, "counter", help, labelnames, stable=stable)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        stable: bool = True,
    ) -> MetricFamily:
        return self._declare(name, "gauge", help, labelnames, stable=stable)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        stable: bool = False,
    ) -> MetricFamily:
        # Histograms default to stable=False: they almost always hold
        # wall-clock latencies, which never reproduce byte-for-byte.
        return self._declare(
            name, "histogram", help, labelnames, stable=stable, buckets=buckets
        )

    def collect(self) -> list[MetricFamily]:
        """All families, sorted by name (deterministic export order)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    # -- convenience lookups used by FaultStatistics and tests ----------

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        """Sum of a counter/gauge family's children matching ``labels``.

        ``labels=None`` sums every child (e.g. across shards); a partial
        label mapping sums the children whose labels are a superset.
        """
        family = self.get(name)
        if family is None:
            raise KeyError(f"no metric named {name!r}")
        if family.kind == "histogram":
            raise TypeError(
                f"{name!r} is a histogram; use histogram_sum/percentile"
            )
        wanted = {str(k): str(v) for k, v in (labels or {}).items()}
        total = 0.0
        for sample_labels, child in family.samples():
            if all(sample_labels.get(k) == v for k, v in wanted.items()):
                total += child.value  # type: ignore[union-attr]
        return total

    def _histogram_children(
        self, name: str, labels: Optional[Mapping[str, str]]
    ) -> list[Histogram]:
        family = self.get(name)
        if family is None:
            raise KeyError(f"no metric named {name!r}")
        if family.kind != "histogram":
            raise TypeError(f"{name!r} is not a histogram")
        wanted = {str(k): str(v) for k, v in (labels or {}).items()}
        return [
            child  # type: ignore[misc]
            for sample_labels, child in family.samples()
            if all(sample_labels.get(k) == v for k, v in wanted.items())
        ]

    def histogram_sum(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        return sum(c.sum for c in self._histogram_children(name, labels))

    def histogram_count(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> int:
        return sum(c.count for c in self._histogram_children(name, labels))

    def histogram_percentile(
        self,
        name: str,
        q: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Percentile across the merged buckets of the matching children."""
        children = self._histogram_children(name, labels)
        if not children:
            return 0.0
        merged = Histogram(children[0].bounds)
        for child in children:
            merged.merge(child)
        return merged.percentile(q)
