"""Observability plane: metrics registry, exporters, and release gates.

``repro.observability`` is deliberately leaf-free of the rest of the
package: :mod:`~repro.observability.registry` and
:mod:`~repro.observability.export` import nothing from ``repro``, so any
layer (kernel, history, detection, service, bench) can depend on them
without cycles.  Components expose ``metrics()`` methods that assemble a
:class:`MetricsRegistry` snapshot; :func:`to_prometheus_text` /
:func:`to_json_dict` serialize it; :mod:`~repro.observability.gates`
turns CI perf assertions into declarative obligations evaluated against
the exported JSON.
"""

from repro.observability.export import (
    METRICS_SCHEMA,
    metric_samples,
    to_json_dict,
    to_prometheus_text,
    write_metrics_json,
)
from repro.observability.gates import (
    GateResult,
    GateSpec,
    MetricsView,
    load_gate_specs,
    parse_gate_specs,
    render_gate_table,
    run_gates,
)
from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "GateResult",
    "GateSpec",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsView",
    "load_gate_specs",
    "metric_samples",
    "parse_gate_specs",
    "render_gate_table",
    "run_gates",
    "to_json_dict",
    "to_prometheus_text",
    "write_metrics_json",
]
