"""One fault-injection campaign per taxonomy entry (21 total).

Each campaign builds a deterministic workload on the simulation kernel,
activates exactly one fault, lets the detector run, and reports a
:class:`CampaignOutcome`.  A campaign *succeeds* when (a) the fault was
actually activated during the run and (b) at least one report implicates
the injected fault class (via the rule→fault SUSPECTS mapping).

Activation mechanisms by level:

* **Level I** — a :class:`~repro.injection.hooks.TriggeredHooks`
  perturbation of the monitor core (or, for I.c.4, a process body that
  terminates inside the monitor).
* **Level II** — a :class:`~repro.apps.bounded_buffer.BufferIntegrityFault`
  variant of the bounded-buffer procedures.
* **Level III** — deliberately buggy user processes driving a correct
  allocator monitor.

The robustness benchmark (`benchmarks/test_robustness_coverage.py`)
regenerates the paper's Section 4 claim — "all injected faults are
detected" — by running the full campaign table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.apps.bounded_buffer import BoundedBuffer, BufferIntegrityFault
from repro.apps.resource_allocator import SingleResourceAllocator
from repro.detection.config import DetectorConfig
from repro.detection.session import DetectionSession
from repro.detection.faults import FaultClass
from repro.detection.reports import FaultReport
from repro.errors import UnknownCampaignError
from repro.history.database import HistoryDatabase
from repro.injection.hooks import TriggeredHooks
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.syscalls import Delay, Syscall
from repro.monitor.hooks import CoreHooks

__all__ = ["CampaignOutcome", "CAMPAIGNS", "run_campaign", "run_all_campaigns"]


@dataclass(frozen=True)
class CampaignOutcome:
    """Result of one fault-injection run."""

    fault: FaultClass
    #: True when the fault actually manifested during the run.
    activated: bool
    #: True when some report implicates the injected fault class.
    detected: bool
    reports: tuple[FaultReport, ...]
    #: Distinct rule ids that fired.
    rules: tuple[str, ...]
    end_time: float
    events_recorded: int

    def summary(self) -> str:
        status = "DETECTED" if self.detected else (
            "MISSED" if self.activated else "NOT-ACTIVATED"
        )
        return (
            f"{self.fault.label:8s} {status:13s} reports={len(self.reports):3d} "
            f"rules={','.join(self.rules) or '-'}"
        )


@dataclass(frozen=True)
class _Campaign:
    fault: FaultClass
    description: str
    build: Callable[[int], CampaignOutcome]
    #: The rule(s) primarily expected to flag this fault (test metadata).
    primary_rules: tuple[str, ...]


# ---------------------------------------------------------------------------
# shared scenario scaffolding
# ---------------------------------------------------------------------------


def _producer(buffer: BoundedBuffer, items: int, delay: float) -> Iterator[Syscall]:
    for item in range(items):
        yield Delay(delay)
        yield from buffer.send(item)


def _consumer(buffer: BoundedBuffer, items: int, delay: float) -> Iterator[Syscall]:
    for __ in range(items):
        yield Delay(delay)
        yield from buffer.receive()


def _buffer_outcome(
    fault: FaultClass,
    *,
    hooks: Optional[TriggeredHooks] = None,
    integrity_fault: BufferIntegrityFault = BufferIntegrityFault.NONE,
    seed: int = 0,
    producers: int = 2,
    consumers: int = 2,
    items: int = 25,
    produce_delay: float = 0.05,
    consume_delay: float = 0.04,
    until: float = 25.0,
    config: Optional[DetectorConfig] = None,
    extra_body: Optional[Callable[[SimKernel, BoundedBuffer], Iterator[Syscall]]] = None,
    activation: Optional[Callable[[], bool]] = None,
    service_time: float = 0.03,
    capacity: int = 3,
) -> CampaignOutcome:
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    history = HistoryDatabase()
    buffer = BoundedBuffer(
        kernel,
        capacity=capacity,
        history=history,
        hooks=hooks,
        integrity_fault=integrity_fault,
        service_time=service_time,
    )
    if hooks is not None:
        hooks.core = buffer.monitor.core
    session = DetectionSession(
        kernel,
        monitors=[buffer],
        config=config or DetectorConfig(interval=0.5, tmax=3.0, tio=6.0),
    )
    for __ in range(producers):
        kernel.spawn(_producer(buffer, items, produce_delay), "producer")
    for __ in range(consumers):
        kernel.spawn(_consumer(buffer, items, consume_delay), "consumer")
    if extra_body is not None:
        kernel.spawn(extra_body(kernel, buffer), "saboteur")
    session.start()
    result = kernel.run(until=until)
    if activation is not None:
        activated = activation()
    elif hooks is not None:
        activated = hooks.fired > 0
    else:
        activated = True
    return _outcome(fault, activated, session, result.end_time, history)


def _allocator_outcome(
    fault: FaultClass,
    buggy_bodies: Callable[
        [SimKernel, SingleResourceAllocator], list[Iterator[Syscall]]
    ],
    *,
    seed: int = 0,
    honest_users: int = 3,
    until: float = 25.0,
    config: Optional[DetectorConfig] = None,
) -> CampaignOutcome:
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    history = HistoryDatabase()
    allocator = SingleResourceAllocator(kernel, history=history)
    session = DetectionSession(
        kernel,
        monitors=[allocator],
        config=config
        or DetectorConfig(interval=0.5, tmax=4.0, tio=8.0, tlimit=4.0),
    )

    def honest(index: int) -> Iterator[Syscall]:
        for __ in range(4):
            yield Delay(0.1 + 0.03 * index)
            yield from allocator.request()
            yield Delay(0.2)
            yield from allocator.release()

    for index in range(honest_users):
        kernel.spawn(honest(index), f"user-{index}")
    for body in buggy_bodies(kernel, allocator):
        kernel.spawn(body, "buggy-user")
    session.start()
    result = kernel.run(until=until)
    return _outcome(fault, True, session, result.end_time, history)


def _outcome(
    fault: FaultClass,
    activated: bool,
    session: DetectionSession,
    end_time: float,
    history: HistoryDatabase,
) -> CampaignOutcome:
    reports = tuple(session.reports)
    detected = any(report.implicates(fault) for report in reports)
    rules = tuple(sorted({report.rule_id for report in reports}))
    return CampaignOutcome(
        fault=fault,
        activated=activated,
        detected=activated and detected,
        reports=reports,
        rules=rules,
        end_time=end_time,
        events_recorded=history.total_recorded,
    )


# ---------------------------------------------------------------------------
# level I campaigns
# ---------------------------------------------------------------------------


def _hooked(
    fault: FaultClass,
    perturbation: str,
    scenario_kwargs: Optional[dict] = None,
    **hook_kwargs,
):
    def build(seed: int) -> CampaignOutcome:
        hooks = TriggeredHooks(perturbation, **hook_kwargs)
        return _buffer_outcome(
            fault, hooks=hooks, seed=seed, **(scenario_kwargs or {})
        )

    return build


#: Scenario shape for faults that fire on the wait-release and
#: signal-handoff paths (I.b.3, I.b.5, I.c.3).  Asymmetric rates make the
#: buffer run empty so consumers genuinely Wait, while the surplus of
#: eager processes keeps the entry queue populated at those instants.  The
#: tight checking interval makes the transient double-admission overlap
#: observable — the paper's "by properly defining the checking frequency T,
#: the checking can be made more accurate".
_WAIT_PATH_KWARGS = dict(
    capacity=2,
    service_time=0.05,
    producers=3,
    consumers=6,
    produce_delay=0.15,
    consume_delay=0.02,
    items=40,
    until=30.0,
    # Generous timeouts: consumers legitimately wait a long time for slow
    # producers here, and this scenario's faults are queue-shape faults,
    # not timeouts.
    config=DetectorConfig(interval=0.04, tmax=30.0, tio=30.0),
)


def _terminate_inside(seed: int) -> CampaignOutcome:
    activated = {"value": False}

    def saboteur(kernel: SimKernel, buffer: BoundedBuffer) -> Iterator[Syscall]:
        yield Delay(0.7)
        yield from buffer.monitor.enter("Send")
        activated["value"] = True
        # Terminates here, still inside the monitor: fault I.c.4.

    return _buffer_outcome(
        FaultClass.TERMINATED_INSIDE,
        seed=seed,
        extra_body=saboteur,
        activation=lambda: activated["value"],
    )


# ---------------------------------------------------------------------------
# level II campaigns (buggy buffer procedures)
# ---------------------------------------------------------------------------


def _integrity(fault: FaultClass, variant: BufferIntegrityFault, **kwargs):
    def build(seed: int) -> CampaignOutcome:
        return _buffer_outcome(
            fault, integrity_fault=variant, seed=seed, **kwargs
        )

    return build


# ---------------------------------------------------------------------------
# level III campaigns (buggy user processes)
# ---------------------------------------------------------------------------


def _release_before_request(seed: int) -> CampaignOutcome:
    def bodies(kernel, allocator):
        def buggy() -> Iterator[Syscall]:
            yield Delay(0.5)
            yield from allocator.release()  # never requested: fault III.a

        return [buggy()]

    return _allocator_outcome(FaultClass.RELEASE_BEFORE_REQUEST, bodies, seed=seed)


def _resource_not_released(seed: int) -> CampaignOutcome:
    def bodies(kernel, allocator):
        def buggy() -> Iterator[Syscall]:
            yield Delay(0.5)
            yield from allocator.request()
            # Holds the resource forever: fault III.b.
            yield Delay(1e9)

        return [buggy()]

    return _allocator_outcome(FaultClass.RESOURCE_NOT_RELEASED, bodies, seed=seed)


def _request_while_holding(seed: int) -> CampaignOutcome:
    def bodies(kernel, allocator):
        def buggy() -> Iterator[Syscall]:
            yield Delay(0.5)
            yield from allocator.request()
            yield Delay(0.1)
            # Requests again without releasing: fault III.c (self-deadlock).
            yield from allocator.request()

        return [buggy()]

    return _allocator_outcome(FaultClass.REQUEST_WHILE_HOLDING, bodies, seed=seed)


# ---------------------------------------------------------------------------
# the campaign table
# ---------------------------------------------------------------------------

CAMPAIGNS: dict[FaultClass, _Campaign] = {
    FaultClass.ENTER_MUTEX_VIOLATED: _Campaign(
        FaultClass.ENTER_MUTEX_VIOLATED,
        "a contended Enter is admitted although the monitor is occupied",
        _hooked(FaultClass.ENTER_MUTEX_VIOLATED, "enter_despite_owner", fire_at=2),
        ("ST-3c", "ST-3a"),
    ),
    FaultClass.ENTER_REQUEST_LOST: _Campaign(
        FaultClass.ENTER_REQUEST_LOST,
        "a blocked enterer is dropped from the entry queue",
        _hooked(FaultClass.ENTER_REQUEST_LOST, "drop_enter", fire_at=2),
        ("ST-1", "ST-6"),
    ),
    FaultClass.ENTER_NO_RESPONSE: _Campaign(
        FaultClass.ENTER_NO_RESPONSE,
        "a release admits nobody although the entry queue is populated",
        _hooked(
            FaultClass.ENTER_NO_RESPONSE,
            "suppress_admission",
            origin="signal-exit",
        ),
        # The missed admission surfaces when the next process enters the
        # "free" monitor that the model believes is occupied:
        ("ST-3c", "ST-3a"),
    ),
    FaultClass.ENTER_NOT_OBSERVED: _Campaign(
        FaultClass.ENTER_NOT_OBSERVED,
        "a successful Enter is not recorded (process inside unobserved)",
        _hooked(FaultClass.ENTER_NOT_OBSERVED, "suppress_enter_record", fire_at=3),
        ("ST-3b", "ST-R"),
    ),
    FaultClass.WAIT_NO_BLOCK: _Campaign(
        FaultClass.WAIT_NO_BLOCK,
        "Wait records the event but the caller keeps running inside",
        _hooked(FaultClass.WAIT_NO_BLOCK, "wait_no_block"),
        ("ST-4", "ST-2"),
    ),
    FaultClass.WAIT_CALLER_LOST: _Campaign(
        FaultClass.WAIT_CALLER_LOST,
        "a waiting caller is dropped from the condition queue",
        _hooked(FaultClass.WAIT_CALLER_LOST, "wait_lose_caller"),
        ("ST-2", "ST-SG"),
    ),
    FaultClass.WAIT_NO_RESUME: _Campaign(
        FaultClass.WAIT_NO_RESUME,
        "a Wait releases the monitor but resumes no entry waiter",
        _hooked(
            FaultClass.WAIT_NO_RESUME,
            "suppress_admission",
            scenario_kwargs=_WAIT_PATH_KWARGS,
            origin="wait",
        ),
        ("ST-3c", "ST-3a"),
    ),
    FaultClass.WAIT_ENTRY_STARVED: _Campaign(
        FaultClass.WAIT_ENTRY_STARVED,
        "one entry-queue process is skipped at every admission",
        _hooked(FaultClass.WAIT_ENTRY_STARVED, "starve_victim", victim=2),
        ("ST-1", "ST-6"),
    ),
    FaultClass.WAIT_MUTEX_VIOLATED: _Campaign(
        FaultClass.WAIT_MUTEX_VIOLATED,
        "a Wait's release admits two entry waiters at once",
        _hooked(
            FaultClass.WAIT_MUTEX_VIOLATED,
            "admit_extra",
            scenario_kwargs=_WAIT_PATH_KWARGS,
            origin="wait",
        ),
        ("ST-3a", "ST-4", "ST-R"),
    ),
    FaultClass.WAIT_MONITOR_HELD: _Campaign(
        FaultClass.WAIT_MONITOR_HELD,
        "the caller blocks on the condition but never releases the lock",
        _hooked(FaultClass.WAIT_MONITOR_HELD, "wait_hold_monitor"),
        ("ST-R", "ST-1", "ST-5"),
    ),
    FaultClass.SIGEXIT_NO_RESUME: _Campaign(
        FaultClass.SIGEXIT_NO_RESUME,
        "Signal-Exit claims flag=1 but the waiter stays on the queue",
        _hooked(FaultClass.SIGEXIT_NO_RESUME, "fake_resume"),
        ("ST-SG", "ST-2", "ST-R"),
    ),
    FaultClass.SIGEXIT_MONITOR_HELD: _Campaign(
        FaultClass.SIGEXIT_MONITOR_HELD,
        "the exiting process never vacates the Running slot",
        _hooked(FaultClass.SIGEXIT_MONITOR_HELD, "hold_monitor_on_exit"),
        ("ST-R", "ST-3d", "ST-5"),
    ),
    FaultClass.SIGEXIT_MUTEX_VIOLATED: _Campaign(
        FaultClass.SIGEXIT_MUTEX_VIOLATED,
        "Signal-Exit resumes the condition waiter and the entry head",
        _hooked(
            FaultClass.SIGEXIT_MUTEX_VIOLATED,
            "admit_extra",
            scenario_kwargs=_WAIT_PATH_KWARGS,
            origin="signal-exit-handoff",
        ),
        ("ST-3a", "ST-4", "ST-R"),
    ),
    FaultClass.TERMINATED_INSIDE: _Campaign(
        FaultClass.TERMINATED_INSIDE,
        "a process terminates inside the monitor without exiting",
        _terminate_inside,
        ("ST-5",),
    ),
    FaultClass.SEND_DELAY_INTEGRITY: _Campaign(
        FaultClass.SEND_DELAY_INTEGRITY,
        "Send is delayed although the buffer is not full",
        _integrity(
            FaultClass.SEND_DELAY_INTEGRITY,
            BufferIntegrityFault.SEND_SPURIOUS_DELAY,
        ),
        ("ST-7c",),
    ),
    FaultClass.RECEIVE_DELAY_INTEGRITY: _Campaign(
        FaultClass.RECEIVE_DELAY_INTEGRITY,
        "Receive is delayed although the buffer is not empty",
        _integrity(
            FaultClass.RECEIVE_DELAY_INTEGRITY,
            BufferIntegrityFault.RECEIVE_SPURIOUS_DELAY,
        ),
        ("ST-7d",),
    ),
    FaultClass.RECEIVE_EXCEEDS_SEND: _Campaign(
        FaultClass.RECEIVE_EXCEEDS_SEND,
        "Receive completes from an empty buffer (r overtakes s)",
        _integrity(
            FaultClass.RECEIVE_EXCEEDS_SEND,
            BufferIntegrityFault.RECEIVE_IGNORES_EMPTY,
            produce_delay=0.2,
            consume_delay=0.03,
        ),
        ("ST-7a",),
    ),
    FaultClass.SEND_EXCEEDS_CAPACITY: _Campaign(
        FaultClass.SEND_EXCEEDS_CAPACITY,
        "Send completes into a full buffer (s overtakes r + Rmax)",
        _integrity(
            FaultClass.SEND_EXCEEDS_CAPACITY,
            BufferIntegrityFault.SEND_IGNORES_FULL,
            produce_delay=0.03,
            consume_delay=0.2,
        ),
        ("ST-7a", "ST-7b"),
    ),
    FaultClass.RELEASE_BEFORE_REQUEST: _Campaign(
        FaultClass.RELEASE_BEFORE_REQUEST,
        "a user process releases a resource it never acquired",
        _release_before_request,
        ("ST-8b",),
    ),
    FaultClass.RESOURCE_NOT_RELEASED: _Campaign(
        FaultClass.RESOURCE_NOT_RELEASED,
        "a user process acquires the resource and never releases it",
        _resource_not_released,
        ("ST-8c",),
    ),
    FaultClass.REQUEST_WHILE_HOLDING: _Campaign(
        FaultClass.REQUEST_WHILE_HOLDING,
        "a user process re-acquires the resource it already holds",
        _request_while_holding,
        ("ST-8a",),
    ),
}

assert len(CAMPAIGNS) == len(FaultClass), "every fault class needs a campaign"


def run_campaign(fault: FaultClass, seed: int = 0) -> CampaignOutcome:
    """Run the campaign for one fault class and return its outcome."""
    campaign = CAMPAIGNS.get(fault)
    if campaign is None:
        raise UnknownCampaignError(f"no campaign registered for {fault}")
    return campaign.build(seed)


def run_all_campaigns(seed: int = 0) -> dict[FaultClass, CampaignOutcome]:
    """Run the full robustness experiment (the paper's Section 4 claim)."""
    return {fault: run_campaign(fault, seed) for fault in FaultClass}
