"""Chaos injection against the *detector's* environment (not the workload).

The campaign machinery in :mod:`repro.injection.campaigns` injects faults
into the monitored system and asserts the detector finds them.  This
module inverts the direction: the workload is healthy, and the faults are
injected into the detection pipeline itself —

* **rule evaluators that raise** — one registered monitor's ``check()`` is
  sabotaged to throw for its first N invocations, exercising the
  per-monitor circuit breaker (CLOSED → OPEN → HALF_OPEN probe → CLOSED),
* **transient checkpoint failures** — the engine's batched checkpoint
  raises on a seeded subset of rounds (first attempt only), exercising the
  supervisor's retry-with-backoff,
* **delayed checkpoints** — seeded extra delays before a round's first
  attempt, exercising the checkpoint pacing and stall watchdog,
* **event-drop bursts** — seeded ``force_drop`` bursts against the fleet's
  :class:`~repro.history.bounded.BoundedHistory` sinks, exercising
  degraded-mode evaluation (incomplete windows must downgrade, never
  false-positive).

Everything is driven by one ``random.Random(seed)`` on the sim kernel, so
a campaign is exactly reproducible: same seed, same injections, same
counters.  :func:`run_chaos_campaign` is the acceptance harness — a
campaign *passes* when the supervisor completes every round, nothing
crashes the kernel, the healthy fleet stays CONFIRMED-clean, and the
broken monitor's breaker both opens and re-closes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.apps.bounded_buffer import BoundedBuffer
from repro.apps.resource_allocator import SingleResourceAllocator
from repro.apps.shared_account import SharedAccount
from repro.detection.config import DetectorConfig
from repro.detection.engine import DetectionEngine, RegisteredMonitor
from repro.detection.reports import Confidence, FaultReport
from repro.detection.supervision import (
    BreakerState,
    CheckpointSupervisor,
    supervisor_process,
)
from repro.errors import InjectionError
from repro.history.bounded import BoundedHistory
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.syscalls import Delay, Syscall

__all__ = [
    "ChaosError",
    "ChaosConfig",
    "SabotagedCheck",
    "sabotage_entry",
    "ChaosInjector",
    "ChaosCampaignResult",
    "run_chaos_campaign",
]


class ChaosError(InjectionError):
    """The exception type every injected detector-environment fault raises."""


@dataclass(frozen=True)
class ChaosConfig:
    """Tunables of one chaos campaign (all draws from one seeded RNG)."""

    seed: int = 0
    #: Supervised checkpoint rounds to run.
    rounds: int = 60
    #: Checking interval of the supervised engine (virtual seconds).
    interval: float = 0.25
    #: Probability a round's first checkpoint attempt raises.
    checkpoint_failure_rate: float = 0.2
    #: Probability a round starts with an injected extra delay.
    delay_rate: float = 0.25
    #: Upper bound of an injected delay (virtual seconds).
    max_delay: float = 0.3
    #: Probability a round opens with an event-drop burst.
    drop_burst_rate: float = 0.25
    #: Events force-dropped from every bounded sink per burst.
    burst_size: int = 6
    #: How many times the sabotaged monitor's check raises before healing.
    evaluator_failures: int = 3
    #: Breaker tuning for the fleet (kept tight so the lifecycle completes
    #: well inside the campaign).
    breaker_failure_threshold: int = 2
    breaker_cooldown: float = 0.6

    def __post_init__(self) -> None:
        for name in (
            "rounds", "burst_size", "evaluator_failures",
            "breaker_failure_threshold",
        ):
            if getattr(self, name) < 1:
                raise InjectionError(
                    f"{name} must be >= 1, got {getattr(self, name)!r}"
                )
        for name in ("interval", "breaker_cooldown"):
            if getattr(self, name) <= 0.0:
                raise InjectionError(
                    f"{name} must be > 0, got {getattr(self, name)!r}"
                )
        if self.max_delay < 0.0:
            raise InjectionError(
                f"max_delay must be >= 0, got {self.max_delay!r}"
            )
        for name in ("checkpoint_failure_rate", "delay_rate", "drop_burst_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise InjectionError(
                    f"{name} must be within [0, 1], got {value!r}"
                )


class SabotagedCheck:
    """Wraps one registered monitor's ``evaluate`` to raise N times, then heal.

    Installed with :func:`sabotage_entry`; deterministic by construction
    (the first ``failures`` invocations raise :class:`ChaosError`, every
    later one delegates to the original evaluator).  Wrapping ``evaluate``
    sabotages the *phase-2* rule evaluation of the two-phase checkpoint —
    the phase-1 snapshot/cut still succeeds, so this exercises exactly the
    "checker throws off the critical path, breaker must still open" seam.
    ``entry.check()`` goes through the same wrapper.  Because a
    quarantined monitor is *skipped*, invocations only burn down while the
    breaker actually lets the check run — which is exactly what makes the
    OPEN → HALF_OPEN probe → OPEN → … → CLOSED lifecycle observable.
    """

    def __init__(self, entry: RegisteredMonitor, failures: int) -> None:
        if failures < 1:
            raise InjectionError(f"failures must be >= 1, got {failures}")
        self._inner = entry.evaluate
        self.entry = entry
        self.remaining = failures
        self.raised = 0
        entry.evaluate = self  # type: ignore[method-assign]

    def __call__(self, capture) -> list[FaultReport]:
        if self.remaining > 0:
            self.remaining -= 1
            self.raised += 1
            raise ChaosError(
                f"injected rule-evaluator failure in {self.entry.label!r} "
                f"({self.remaining} left)"
            )
        return self._inner(capture)

    @property
    def healed(self) -> bool:
        return self.remaining == 0


def sabotage_entry(entry: RegisteredMonitor, *, failures: int = 3) -> SabotagedCheck:
    """Make ``entry``'s next ``failures`` checks raise; returns the wrapper."""
    return SabotagedCheck(entry, failures)


class ChaosInjector:
    """Seeded source of detector-environment faults for one campaign.

    ``arm`` wraps the engine's checkpoint so a round marked unlucky fails
    its *first* attempt (the supervisor's retry then succeeds — transient,
    as advertised).  ``round_prelude`` is spliced into
    :func:`~repro.detection.supervision.supervisor_process` before each
    round and performs the delay / drop-burst draws.
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.failures_injected = 0
        self.delays_injected = 0
        self.delay_seconds_injected = 0.0
        self.bursts_injected = 0
        self.events_dropped = 0
        self._engine: Optional[DetectionEngine] = None
        self._sinks: tuple[BoundedHistory, ...] = ()
        self._fail_next_attempt = False

    def arm(
        self,
        engine: DetectionEngine,
        sinks: tuple[BoundedHistory, ...],
    ) -> None:
        """Attach to the engine and the fleet's bounded sinks."""
        self._engine = engine
        self._sinks = sinks
        inner = engine.checkpoint

        def flaky_checkpoint() -> list[FaultReport]:
            if self._fail_next_attempt:
                self._fail_next_attempt = False
                self.failures_injected += 1
                raise ChaosError("injected transient checkpoint failure")
            return inner()

        engine.checkpoint = flaky_checkpoint  # type: ignore[method-assign]

    def round_prelude(self) -> Iterator[Syscall]:
        """One round's worth of injections (generator, spliced before the
        round's first checkpoint attempt)."""
        if self._engine is None:
            raise InjectionError("round_prelude() before arm()")
        config = self.config
        if self.rng.random() < config.delay_rate:
            delay = self.rng.uniform(config.max_delay / 2, config.max_delay)
            self.delays_injected += 1
            self.delay_seconds_injected += delay
            yield Delay(delay)
        if self.rng.random() < config.drop_burst_rate:
            self.bursts_injected += 1
            for sink in self._sinks:
                self.events_dropped += sink.force_drop(config.burst_size)
        self._fail_next_attempt = (
            self.rng.random() < config.checkpoint_failure_rate
        )


@dataclass(frozen=True)
class ChaosCampaignResult:
    """Everything :func:`run_chaos_campaign` observed, plus the verdict."""

    config: ChaosConfig
    #: Supervised rounds that completed a checkpoint (retries included).
    checkpoints_completed: int
    #: Rounds abandoned after exhausting retries (must be 0 to pass).
    checkpoints_abandoned: int
    retries_performed: int
    stalls_detected: int
    #: Injection tallies — the campaign must actually have injected things.
    failures_injected: int
    delays_injected: int
    bursts_injected: int
    events_dropped: int
    evaluator_failures_raised: int
    #: Detection outcome on the (fault-free) workload.
    confirmed_reports: int
    degraded_reports: int
    degraded_windows: int
    #: Breaker lifecycle of the sabotaged monitor.
    breaker_opened: int
    breaker_reclosed: int
    breaker_final_state: BreakerState
    broken_checkpoints_run: int
    broken_checkpoints_skipped: int
    #: Checkpoints run by each healthy monitor (fleet keeps checking).
    healthy_checkpoints: tuple[int, ...]
    #: Exceptions that escaped to the kernel (must be empty to pass).
    kernel_failures: tuple[str, ...]
    end_time: float

    @property
    def passed(self) -> bool:
        """The acceptance predicate, in one place (see module docstring)."""
        return (
            not self.kernel_failures
            and self.checkpoints_abandoned == 0
            and self.checkpoints_completed >= self.config.rounds
            and self.confirmed_reports == 0
            and self.breaker_opened >= 1
            and self.breaker_reclosed >= 1
            and self.breaker_final_state is BreakerState.CLOSED
            and all(
                count == self.checkpoints_completed
                for count in self.healthy_checkpoints
            )
            and self.failures_injected > 0
            and self.delays_injected > 0
            and self.events_dropped > 0
        )

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return "\n".join(
            [
                f"chaos campaign (seed={self.config.seed}, "
                f"rounds={self.config.rounds}): {verdict}",
                f"  checkpoints: {self.checkpoints_completed} completed, "
                f"{self.checkpoints_abandoned} abandoned, "
                f"{self.retries_performed} retries, "
                f"{self.stalls_detected} stalls flagged",
                f"  injected: {self.failures_injected} checkpoint failures, "
                f"{self.delays_injected} delays, {self.bursts_injected} "
                f"drop bursts ({self.events_dropped} events), "
                f"{self.evaluator_failures_raised} evaluator exceptions",
                f"  reports: {self.confirmed_reports} confirmed / "
                f"{self.degraded_reports} degraded "
                f"({self.degraded_windows} degraded windows)",
                f"  quarantine: opened x{self.breaker_opened}, re-closed "
                f"x{self.breaker_reclosed}, final "
                f"{self.breaker_final_state.value}; broken monitor checked "
                f"{self.broken_checkpoints_run}, skipped "
                f"{self.broken_checkpoints_skipped}",
                f"  healthy fleet checkpoints: "
                f"{list(self.healthy_checkpoints)}",
            ]
        )


def _fleet_workload(
    kernel: SimKernel,
    buffer: BoundedBuffer,
    allocator: SingleResourceAllocator,
    account: SharedAccount,
    broken: SingleResourceAllocator,
    *,
    operations: int,
) -> None:
    """Spawn a healthy, long-running workload over all four monitors."""

    def producer() -> Iterator[Syscall]:
        for item in range(operations):
            yield Delay(0.11)
            yield from buffer.send(item)

    def consumer() -> Iterator[Syscall]:
        for __ in range(operations):
            yield Delay(0.12)
            yield from buffer.receive()

    def alloc_user(index: int, target: SingleResourceAllocator) -> Iterator[Syscall]:
        for __ in range(operations):
            yield Delay(0.13 + 0.04 * index)
            yield from target.request()
            yield Delay(0.05)
            yield from target.release()

    def banker() -> Iterator[Syscall]:
        for __ in range(operations):
            yield Delay(0.17)
            yield from account.deposit(3)

    kernel.spawn(producer(), "producer")
    kernel.spawn(consumer(), "consumer")
    for index in range(2):
        kernel.spawn(alloc_user(index, allocator), f"alloc-user-{index}")
    kernel.spawn(alloc_user(2, broken), "broken-user")
    kernel.spawn(banker(), "banker")


def run_chaos_campaign(
    config: Optional[ChaosConfig] = None, **overrides
) -> ChaosCampaignResult:
    """Run one seeded chaos campaign on the sim kernel.

    Builds a four-monitor fleet (buffer, allocator, account — all healthy —
    plus one allocator whose *checker* is sabotaged), supervises the shared
    engine through :func:`supervisor_process`, injects the full chaos menu,
    and returns the deterministic :class:`ChaosCampaignResult`.

    ``overrides`` are :class:`ChaosConfig` fields for ad-hoc runs:
    ``run_chaos_campaign(seed=7, rounds=80)``.
    """
    if config is None:
        config = ChaosConfig(**overrides)
    elif overrides:
        raise InjectionError("pass either a ChaosConfig or field overrides")

    kernel = SimKernel(RandomPolicy(seed=config.seed), on_deadlock="stop")
    buffer = BoundedBuffer(
        kernel, capacity=3, history=BoundedHistory(capacity=96)
    )
    allocator = SingleResourceAllocator(
        kernel, history=BoundedHistory(capacity=96), name="allocator"
    )
    account = SharedAccount(
        kernel, 100, history=BoundedHistory(capacity=96)
    )
    broken = SingleResourceAllocator(
        kernel, history=BoundedHistory(capacity=96), name="broken"
    )

    detector_config = DetectorConfig(
        interval=config.interval,
        # Generous behavioural bounds: the workload is healthy, and the
        # campaign's claim is "no false positives", not timeout coverage.
        tmax=60.0,
        tio=60.0,
        tlimit=60.0,
        checkpoint_retries=3,
        retry_backoff=0.02,
        stall_timeout=8.0 * config.interval,
        breaker_failure_threshold=config.breaker_failure_threshold,
        breaker_cooldown=config.breaker_cooldown,
    )
    engine = DetectionEngine(kernel, detector_config)
    healthy_entries = [
        engine.register(target) for target in (buffer, allocator, account)
    ]
    broken_entry = engine.register(broken)
    saboteur = sabotage_entry(
        broken_entry, failures=config.evaluator_failures
    )

    injector = ChaosInjector(config)
    sinks = tuple(
        entry.history
        for entry in (*healthy_entries, broken_entry)
        if isinstance(entry.history, BoundedHistory)
    )
    injector.arm(engine, sinks)

    supervisor = CheckpointSupervisor(engine)
    _fleet_workload(
        kernel,
        buffer,
        allocator,
        account,
        broken,
        # Keep the workload busy for the whole campaign horizon.
        operations=max(20, config.rounds),
    )
    kernel.spawn(
        supervisor_process(
            supervisor, rounds=config.rounds, prelude=injector.round_prelude
        ),
        "chaos-supervisor",
    )

    horizon = config.rounds * (config.interval + config.max_delay) + 30.0
    result = kernel.run(until=horizon, max_steps=50_000_000)

    by_confidence = engine.reports_by_confidence()
    breaker = broken_entry.breaker
    return ChaosCampaignResult(
        config=config,
        checkpoints_completed=supervisor.checkpoints_completed,
        checkpoints_abandoned=supervisor.checkpoints_abandoned,
        retries_performed=supervisor.retries_performed,
        stalls_detected=supervisor.stalls_detected,
        failures_injected=injector.failures_injected,
        delays_injected=injector.delays_injected,
        bursts_injected=injector.bursts_injected,
        events_dropped=injector.events_dropped,
        evaluator_failures_raised=saboteur.raised,
        confirmed_reports=len(by_confidence[Confidence.CONFIRMED]),
        degraded_reports=len(by_confidence[Confidence.DEGRADED]),
        degraded_windows=engine.degraded_windows,
        breaker_opened=breaker.times_opened,
        breaker_reclosed=breaker.times_reclosed,
        breaker_final_state=breaker.state,
        broken_checkpoints_run=broken_entry.checkpoints_run,
        broken_checkpoints_skipped=broken_entry.checkpoints_skipped,
        healthy_checkpoints=tuple(
            entry.checkpoints_run for entry in healthy_entries
        ),
        kernel_failures=tuple(
            f"{type(exc).__name__}: {exc}"
            for exc in kernel.failures().values()
        ),
        end_time=result.end_time,
    )
