"""Chaos injection against the *detector's* environment (not the workload).

The campaign machinery in :mod:`repro.injection.campaigns` injects faults
into the monitored system and asserts the detector finds them.  This
module inverts the direction: the workload is healthy, and the faults are
injected into the detection pipeline itself —

* **rule evaluators that raise** — one registered monitor's ``check()`` is
  sabotaged to throw for its first N invocations, exercising the
  per-monitor circuit breaker (CLOSED → OPEN → HALF_OPEN probe → CLOSED),
* **transient checkpoint failures** — the engine's batched checkpoint
  raises on a seeded subset of rounds (first attempt only), exercising the
  supervisor's retry-with-backoff,
* **delayed checkpoints** — seeded extra delays before a round's first
  attempt, exercising the checkpoint pacing and stall watchdog,
* **event-drop bursts** — seeded ``force_drop`` bursts against the fleet's
  :class:`~repro.history.bounded.BoundedHistory` sinks, exercising
  degraded-mode evaluation (incomplete windows must downgrade, never
  false-positive).

Everything is driven by one ``random.Random(seed)`` on the sim kernel, so
a campaign is exactly reproducible: same seed, same injections, same
counters.  :func:`run_chaos_campaign` is the acceptance harness — a
campaign *passes* when the supervisor completes every round, nothing
crashes the kernel, the healthy fleet stays CONFIRMED-clean, and the
broken monitor's breaker both opens and re-closes.

**Crash injection** (:func:`run_crash_recovery_campaign`) extends the menu
from "the detector misbehaves" to "the detector *dies*": seeded rounds
kill a :class:`~repro.detection.durability.DurableEngine` at one of four
:class:`CrashPoint`\\ s — mid-capture, mid-evaluate, mid-snapshot-write,
mid-WAL-append — then rebuild it from its durable root and
:meth:`~repro.detection.durability.DurableEngine.recover`.  The campaign
passes when the recovered run's delivered fault set equals an
uninterrupted golden run's, with zero duplicate reports.
"""

from __future__ import annotations

import enum
import random
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.apps.bounded_buffer import BoundedBuffer
from repro.apps.resource_allocator import SingleResourceAllocator
from repro.apps.shared_account import SharedAccount
from repro.detection.config import DetectorConfig
from repro.detection.durability import DurableEngine, report_key
from repro.detection.engine import DetectionEngine, RegisteredMonitor
from repro.detection.reports import Confidence, FaultReport
from repro.detection.supervision import (
    BreakerState,
    CheckpointSupervisor,
    supervisor_process,
)
from repro.errors import InjectionError
from repro.history.bounded import BoundedHistory
from repro.history.wal import WriteAheadLog
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.threads import ThreadKernel
from repro.kernel.syscalls import Delay, Syscall
from repro.monitor.construct import MonitorBase

__all__ = [
    "ChaosError",
    "ChaosConfig",
    "SabotagedCheck",
    "sabotage_entry",
    "ChaosInjector",
    "ChaosCampaignResult",
    "run_chaos_campaign",
    "CrashPoint",
    "SimulatedCrash",
    "CrashRecoveryConfig",
    "CrashRecoveryResult",
    "run_crash_recovery_campaign",
]


class ChaosError(InjectionError):
    """The exception type every injected detector-environment fault raises."""


@dataclass(frozen=True)
class ChaosConfig:
    """Tunables of one chaos campaign (all draws from one seeded RNG)."""

    seed: int = 0
    #: Supervised checkpoint rounds to run.
    rounds: int = 60
    #: Checking interval of the supervised engine (virtual seconds).
    interval: float = 0.25
    #: Probability a round's first checkpoint attempt raises.
    checkpoint_failure_rate: float = 0.2
    #: Probability a round starts with an injected extra delay.
    delay_rate: float = 0.25
    #: Upper bound of an injected delay (virtual seconds).
    max_delay: float = 0.3
    #: Probability a round opens with an event-drop burst.
    drop_burst_rate: float = 0.25
    #: Events force-dropped from every bounded sink per burst.
    burst_size: int = 6
    #: How many times the sabotaged monitor's check raises before healing.
    evaluator_failures: int = 3
    #: Breaker tuning for the fleet (kept tight so the lifecycle completes
    #: well inside the campaign).
    breaker_failure_threshold: int = 2
    breaker_cooldown: float = 0.6

    def __post_init__(self) -> None:
        for name in (
            "rounds", "burst_size", "evaluator_failures",
            "breaker_failure_threshold",
        ):
            if getattr(self, name) < 1:
                raise InjectionError(
                    f"{name} must be >= 1, got {getattr(self, name)!r}"
                )
        for name in ("interval", "breaker_cooldown"):
            if getattr(self, name) <= 0.0:
                raise InjectionError(
                    f"{name} must be > 0, got {getattr(self, name)!r}"
                )
        if self.max_delay < 0.0:
            raise InjectionError(
                f"max_delay must be >= 0, got {self.max_delay!r}"
            )
        for name in ("checkpoint_failure_rate", "delay_rate", "drop_burst_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise InjectionError(
                    f"{name} must be within [0, 1], got {value!r}"
                )


class SabotagedCheck:
    """Wraps one registered monitor's ``evaluate`` to raise N times, then heal.

    Installed with :func:`sabotage_entry`; deterministic by construction
    (the first ``failures`` invocations raise :class:`ChaosError`, every
    later one delegates to the original evaluator).  Wrapping ``evaluate``
    sabotages the *phase-2* rule evaluation of the two-phase checkpoint —
    the phase-1 snapshot/cut still succeeds, so this exercises exactly the
    "checker throws off the critical path, breaker must still open" seam.
    ``entry.check()`` goes through the same wrapper.  Because a
    quarantined monitor is *skipped*, invocations only burn down while the
    breaker actually lets the check run — which is exactly what makes the
    OPEN → HALF_OPEN probe → OPEN → … → CLOSED lifecycle observable.
    """

    def __init__(self, entry: RegisteredMonitor, failures: int) -> None:
        if failures < 1:
            raise InjectionError(f"failures must be >= 1, got {failures}")
        self._inner = entry.evaluate
        self.entry = entry
        self.remaining = failures
        self.raised = 0
        entry.evaluate = self  # type: ignore[method-assign]

    def __call__(self, capture) -> list[FaultReport]:
        if self.remaining > 0:
            self.remaining -= 1
            self.raised += 1
            raise ChaosError(
                f"injected rule-evaluator failure in {self.entry.label!r} "
                f"({self.remaining} left)"
            )
        return self._inner(capture)

    @property
    def healed(self) -> bool:
        return self.remaining == 0


def sabotage_entry(entry: RegisteredMonitor, *, failures: int = 3) -> SabotagedCheck:
    """Make ``entry``'s next ``failures`` checks raise; returns the wrapper."""
    return SabotagedCheck(entry, failures)


class ChaosInjector:
    """Seeded source of detector-environment faults for one campaign.

    ``arm`` wraps the engine's checkpoint so a round marked unlucky fails
    its *first* attempt (the supervisor's retry then succeeds — transient,
    as advertised).  ``round_prelude`` is spliced into
    :func:`~repro.detection.supervision.supervisor_process` before each
    round and performs the delay / drop-burst draws.
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.failures_injected = 0
        self.delays_injected = 0
        self.delay_seconds_injected = 0.0
        self.bursts_injected = 0
        self.events_dropped = 0
        self._engine: Optional[DetectionEngine] = None
        self._sinks: tuple[BoundedHistory, ...] = ()
        self._fail_next_attempt = False

    def arm(
        self,
        engine: DetectionEngine,
        sinks: tuple[BoundedHistory, ...],
    ) -> None:
        """Attach to the engine and the fleet's bounded sinks."""
        self._engine = engine
        self._sinks = sinks
        inner = engine.checkpoint

        def flaky_checkpoint() -> list[FaultReport]:
            if self._fail_next_attempt:
                self._fail_next_attempt = False
                self.failures_injected += 1
                raise ChaosError("injected transient checkpoint failure")
            return inner()

        engine.checkpoint = flaky_checkpoint  # type: ignore[method-assign]

    def round_prelude(self) -> Iterator[Syscall]:
        """One round's worth of injections (generator, spliced before the
        round's first checkpoint attempt)."""
        if self._engine is None:
            raise InjectionError("round_prelude() before arm()")
        config = self.config
        if self.rng.random() < config.delay_rate:
            delay = self.rng.uniform(config.max_delay / 2, config.max_delay)
            self.delays_injected += 1
            self.delay_seconds_injected += delay
            yield Delay(delay)
        if self.rng.random() < config.drop_burst_rate:
            self.bursts_injected += 1
            for sink in self._sinks:
                self.events_dropped += sink.force_drop(config.burst_size)
        self._fail_next_attempt = (
            self.rng.random() < config.checkpoint_failure_rate
        )


@dataclass(frozen=True)
class ChaosCampaignResult:
    """Everything :func:`run_chaos_campaign` observed, plus the verdict."""

    config: ChaosConfig
    #: Supervised rounds that completed a checkpoint (retries included).
    checkpoints_completed: int
    #: Rounds abandoned after exhausting retries (must be 0 to pass).
    checkpoints_abandoned: int
    retries_performed: int
    stalls_detected: int
    #: Injection tallies — the campaign must actually have injected things.
    failures_injected: int
    delays_injected: int
    bursts_injected: int
    events_dropped: int
    evaluator_failures_raised: int
    #: Detection outcome on the (fault-free) workload.
    confirmed_reports: int
    degraded_reports: int
    degraded_windows: int
    #: Breaker lifecycle of the sabotaged monitor.
    breaker_opened: int
    breaker_reclosed: int
    breaker_final_state: BreakerState
    broken_checkpoints_run: int
    broken_checkpoints_skipped: int
    #: Checkpoints run by each healthy monitor (fleet keeps checking).
    healthy_checkpoints: tuple[int, ...]
    #: Exceptions that escaped to the kernel (must be empty to pass).
    kernel_failures: tuple[str, ...]
    end_time: float

    @property
    def passed(self) -> bool:
        """The acceptance predicate, in one place (see module docstring)."""
        return (
            not self.kernel_failures
            and self.checkpoints_abandoned == 0
            and self.checkpoints_completed >= self.config.rounds
            and self.confirmed_reports == 0
            and self.breaker_opened >= 1
            and self.breaker_reclosed >= 1
            and self.breaker_final_state is BreakerState.CLOSED
            and all(
                count == self.checkpoints_completed
                for count in self.healthy_checkpoints
            )
            and self.failures_injected > 0
            and self.delays_injected > 0
            and self.events_dropped > 0
        )

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return "\n".join(
            [
                f"chaos campaign (seed={self.config.seed}, "
                f"rounds={self.config.rounds}): {verdict}",
                f"  checkpoints: {self.checkpoints_completed} completed, "
                f"{self.checkpoints_abandoned} abandoned, "
                f"{self.retries_performed} retries, "
                f"{self.stalls_detected} stalls flagged",
                f"  injected: {self.failures_injected} checkpoint failures, "
                f"{self.delays_injected} delays, {self.bursts_injected} "
                f"drop bursts ({self.events_dropped} events), "
                f"{self.evaluator_failures_raised} evaluator exceptions",
                f"  reports: {self.confirmed_reports} confirmed / "
                f"{self.degraded_reports} degraded "
                f"({self.degraded_windows} degraded windows)",
                f"  quarantine: opened x{self.breaker_opened}, re-closed "
                f"x{self.breaker_reclosed}, final "
                f"{self.breaker_final_state.value}; broken monitor checked "
                f"{self.broken_checkpoints_run}, skipped "
                f"{self.broken_checkpoints_skipped}",
                f"  healthy fleet checkpoints: "
                f"{list(self.healthy_checkpoints)}",
            ]
        )


def _fleet_workload(
    kernel: SimKernel,
    buffer: BoundedBuffer,
    allocator: SingleResourceAllocator,
    account: SharedAccount,
    broken: SingleResourceAllocator,
    *,
    operations: int,
) -> None:
    """Spawn a healthy, long-running workload over all four monitors."""

    def producer() -> Iterator[Syscall]:
        for item in range(operations):
            yield Delay(0.11)
            yield from buffer.send(item)

    def consumer() -> Iterator[Syscall]:
        for __ in range(operations):
            yield Delay(0.12)
            yield from buffer.receive()

    def alloc_user(index: int, target: SingleResourceAllocator) -> Iterator[Syscall]:
        for __ in range(operations):
            yield Delay(0.13 + 0.04 * index)
            yield from target.request()
            yield Delay(0.05)
            yield from target.release()

    def banker() -> Iterator[Syscall]:
        for __ in range(operations):
            yield Delay(0.17)
            yield from account.deposit(3)

    kernel.spawn(producer(), "producer")
    kernel.spawn(consumer(), "consumer")
    for index in range(2):
        kernel.spawn(alloc_user(index, allocator), f"alloc-user-{index}")
    kernel.spawn(alloc_user(2, broken), "broken-user")
    kernel.spawn(banker(), "banker")


def run_chaos_campaign(
    config: Optional[ChaosConfig] = None, **overrides
) -> ChaosCampaignResult:
    """Run one seeded chaos campaign on the sim kernel.

    Builds a four-monitor fleet (buffer, allocator, account — all healthy —
    plus one allocator whose *checker* is sabotaged), supervises the shared
    engine through :func:`supervisor_process`, injects the full chaos menu,
    and returns the deterministic :class:`ChaosCampaignResult`.

    ``overrides`` are :class:`ChaosConfig` fields for ad-hoc runs:
    ``run_chaos_campaign(seed=7, rounds=80)``.
    """
    if config is None:
        config = ChaosConfig(**overrides)
    elif overrides:
        raise InjectionError("pass either a ChaosConfig or field overrides")

    kernel = SimKernel(RandomPolicy(seed=config.seed), on_deadlock="stop")
    buffer = BoundedBuffer(
        kernel, capacity=3, history=BoundedHistory(capacity=96)
    )
    allocator = SingleResourceAllocator(
        kernel, history=BoundedHistory(capacity=96), name="allocator"
    )
    account = SharedAccount(
        kernel, 100, history=BoundedHistory(capacity=96)
    )
    broken = SingleResourceAllocator(
        kernel, history=BoundedHistory(capacity=96), name="broken"
    )

    detector_config = DetectorConfig(
        interval=config.interval,
        # Generous behavioural bounds: the workload is healthy, and the
        # campaign's claim is "no false positives", not timeout coverage.
        tmax=60.0,
        tio=60.0,
        tlimit=60.0,
        checkpoint_retries=3,
        retry_backoff=0.02,
        stall_timeout=8.0 * config.interval,
        breaker_failure_threshold=config.breaker_failure_threshold,
        breaker_cooldown=config.breaker_cooldown,
    )
    engine = DetectionEngine(kernel, detector_config)
    healthy_entries = [
        engine.register(target) for target in (buffer, allocator, account)
    ]
    broken_entry = engine.register(broken)
    saboteur = sabotage_entry(
        broken_entry, failures=config.evaluator_failures
    )

    injector = ChaosInjector(config)
    sinks = tuple(
        entry.history
        for entry in (*healthy_entries, broken_entry)
        if isinstance(entry.history, BoundedHistory)
    )
    injector.arm(engine, sinks)

    supervisor = CheckpointSupervisor(engine)
    _fleet_workload(
        kernel,
        buffer,
        allocator,
        account,
        broken,
        # Keep the workload busy for the whole campaign horizon.
        operations=max(20, config.rounds),
    )
    kernel.spawn(
        supervisor_process(
            supervisor, rounds=config.rounds, prelude=injector.round_prelude
        ),
        "chaos-supervisor",
    )

    horizon = config.rounds * (config.interval + config.max_delay) + 30.0
    result = kernel.run(until=horizon, max_steps=50_000_000)

    by_confidence = engine.reports_by_confidence()
    breaker = broken_entry.breaker
    return ChaosCampaignResult(
        config=config,
        checkpoints_completed=supervisor.checkpoints_completed,
        checkpoints_abandoned=supervisor.checkpoints_abandoned,
        retries_performed=supervisor.retries_performed,
        stalls_detected=supervisor.stalls_detected,
        failures_injected=injector.failures_injected,
        delays_injected=injector.delays_injected,
        bursts_injected=injector.bursts_injected,
        events_dropped=injector.events_dropped,
        evaluator_failures_raised=saboteur.raised,
        confirmed_reports=len(by_confidence[Confidence.CONFIRMED]),
        degraded_reports=len(by_confidence[Confidence.DEGRADED]),
        degraded_windows=engine.degraded_windows,
        breaker_opened=breaker.times_opened,
        breaker_reclosed=breaker.times_reclosed,
        breaker_final_state=breaker.state,
        broken_checkpoints_run=broken_entry.checkpoints_run,
        broken_checkpoints_skipped=broken_entry.checkpoints_skipped,
        healthy_checkpoints=tuple(
            entry.checkpoints_run for entry in healthy_entries
        ),
        kernel_failures=tuple(
            f"{type(exc).__name__}: {exc}"
            for exc in kernel.failures().values()
        ),
        end_time=result.end_time,
    )


# ------------------------------------------------------------ crash injection


class CrashPoint(enum.Enum):
    """Where inside a durable checkpoint the simulated crash strikes."""

    #: Die partway through the phase-1 capture sweep: some monitors' sinks
    #: are cut, others are not, and nothing was snapshotted.
    MID_CAPTURE = "mid-capture"
    #: Die partway through the phase-2 drain: some captures evaluated (and
    #: their reports produced in memory), the rest lost un-evaluated.
    MID_EVALUATE = "mid-evaluate"
    #: Die after the snapshot temp file is written but before the rename:
    #: the previous snapshot stays the latest.
    MID_SNAPSHOT_WRITE = "mid-snapshot-write"
    #: Die halfway through a WAL append, leaving a torn final line.
    MID_WAL_APPEND = "mid-wal-append"


class SimulatedCrash(ChaosError):
    """Raised at a :class:`CrashPoint` to kill the detector incarnation."""


@dataclass(frozen=True)
class CrashRecoveryConfig:
    """Tunables of one crash/restart campaign."""

    seed: int = 0
    #: Checkpoint rounds the driver runs (golden and crashed alike).
    rounds: int = 40
    #: Checking interval (virtual seconds).
    interval: float = 0.25
    #: Crashes injected over the run (each at a seeded round and point).
    crashes: int = 4
    #: ``"sim"`` (strict report equality, timestamps included) or
    #: ``"threads"`` (relaxed: rule/monitor/pids — wall-clock timestamps
    #: are not reproducible across two real-time runs).
    backend: str = "sim"
    #: WAL fsync policy of the durable engine under test.
    fsync: str = "interval"
    #: Crash points to sample from (None = all four).
    crash_points: Optional[tuple[CrashPoint, ...]] = None
    #: Operations per workload process.
    operations: int = 30
    #: Root directory for the two durable roots (None = fresh temp dir,
    #: removed afterwards).
    root: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rounds < 4:
            raise InjectionError(f"rounds must be >= 4, got {self.rounds}")
        if not 1 <= self.crashes <= self.rounds - 2:
            raise InjectionError(
                f"crashes must be within [1, rounds - 2], got {self.crashes}"
            )
        if self.interval <= 0:
            raise InjectionError(
                f"interval must be > 0, got {self.interval!r}"
            )
        if self.backend not in ("sim", "threads"):
            raise InjectionError(
                f"backend must be 'sim' or 'threads', got {self.backend!r}"
            )
        if self.operations < 1:
            raise InjectionError(
                f"operations must be >= 1, got {self.operations}"
            )
        if self.crash_points is not None and not self.crash_points:
            raise InjectionError("crash_points must not be empty")

    @property
    def strict(self) -> bool:
        """Strict (timestamped) report comparison — sim backend only."""
        return self.backend == "sim"


def _relaxed_key(report: FaultReport) -> str:
    """Backend-portable report identity: rule, monitor, implicated pids."""
    pids = ",".join(str(pid) for pid in report.pids)
    return f"{report.rule_id}|{report.monitor}|{pids}"


def _comparison_keys(reports, strict: bool) -> tuple[str, ...]:
    """Keys compared between the golden and the recovered run.

    Sim runs replay deterministically, so every report compares, with its
    timestamp.  Thread runs cannot reproduce wall-clock timing: only
    event-triggered reports (``event_seq`` set) are deterministic there —
    checkpoint-derived timer sweeps (ST-5/ST-8c) fire once per interval a
    condition persists, and scheduling jitter changes how many intervals
    that is.  Exactly-once delivery is still enforced for *all* reports on
    both backends via strict-key uniqueness of the recovered stream.
    """
    if strict:
        return tuple(report_key(report) for report in reports)
    return tuple(
        _relaxed_key(report)
        for report in reports
        if report.event_seq is not None
    )


class _CrashContext:
    """One run's durable engine plus the kill/rebuild machinery."""

    def __init__(
        self,
        kernel,
        root: Path,
        targets: list[tuple[MonitorBase, str]],
        detector_config: DetectorConfig,
        *,
        fsync: str,
        rng: random.Random,
    ) -> None:
        self.kernel = kernel
        self.root = root
        self.targets = targets
        self.detector_config = detector_config
        self.fsync = fsync
        self.rng = rng
        self.crashes: list[tuple[int, str]] = []
        self.recoveries = 0
        self.events_replayed = 0
        self.torn_tails = 0
        self.snapshot_fallbacks = 0
        self.durable = self._build()
        self.durable.baseline()

    def _build(self) -> DurableEngine:
        engine = DetectionEngine(self.kernel, self.detector_config)
        durable = DurableEngine(engine, self.root, fsync=self.fsync)
        for target, label in self.targets:
            durable.register(target, label=label)
        return durable

    def wals(self) -> list[WriteAheadLog]:
        return [wal for __, wal in self.durable._wal_entries()]

    def trigger(self, point: CrashPoint) -> None:
        """Arm (or immediately take) one crash at ``point``.

        ``MID_WAL_APPEND`` dies on the spot, leaving a torn tail on one
        seeded sink.  The other points install one-shot wrappers that blow
        up partway through the next checkpoint.
        """
        engine = self.durable.engine
        if point is CrashPoint.MID_WAL_APPEND:
            self.rng.choice(self.wals()).simulate_torn_append()
            raise SimulatedCrash("died mid-WAL-append (torn tail left)")
        if point is CrashPoint.MID_SNAPSHOT_WRITE:
            store = self.durable.snapshots

            def die_before_rename() -> None:
                store.before_rename = None
                raise SimulatedCrash("died mid-snapshot-write (temp only)")

            store.before_rename = die_before_rename
            return
        if point is CrashPoint.MID_CAPTURE:
            original = engine.capture_phase

            def crashing_capture() -> int:
                entries = engine._entries
                keep = self.rng.randrange(len(entries) + 1) if entries else 0
                engine._entries = entries[:keep]
                try:
                    original()
                finally:
                    engine._entries = entries
                raise SimulatedCrash(
                    f"died mid-capture ({keep}/{len(entries)} cut)"
                )

            engine.capture_phase = crashing_capture  # type: ignore[method-assign]
            return
        assert point is CrashPoint.MID_EVALUATE
        original_evaluate = engine.evaluate_phase

        def crashing_evaluate() -> list[FaultReport]:
            pending = engine._pending_captures
            keep = self.rng.randrange(len(pending) + 1) if pending else 0
            engine._pending_captures = pending[:keep]
            original_evaluate()
            raise SimulatedCrash(
                f"died mid-evaluate ({keep}/{len(pending)} evaluated)"
            )

        engine.evaluate_phase = crashing_evaluate  # type: ignore[method-assign]

    def rebuild(self) -> None:
        """The restart: fresh engine over the same durable root, recover."""
        self.durable.close()
        self.durable = self._build()
        summary = self.durable.recover()
        self.recoveries += 1
        self.events_replayed += summary.events_replayed
        self.torn_tails += sum(
            wal.torn_tails_truncated for wal in self.wals()
        )
        self.snapshot_fallbacks = self.durable.snapshots.corrupt_skipped


def _crash_driver(
    context: _CrashContext, config: CrashRecoveryConfig, plan: dict
) -> Iterator[Syscall]:
    """Kernel process pacing the durable checkpoints and taking the kills.

    A crashed round is *re-run after recovery at the same virtual time* —
    the restarted detector's first act is to redo the interrupted
    checkpoint, whose re-derived reports the journal deduplicates.
    """
    for round_index in range(config.rounds):
        yield Delay(config.interval)
        point = plan.get(round_index)
        while True:
            try:
                if point is not None:
                    pending, point = point, None
                    context.trigger(pending)
                context.durable.checkpoint()
                break
            except SimulatedCrash as crash:
                context.crashes.append((round_index, str(crash)))
                context.rebuild()
    context.durable.flush()


def _spawn_crash_workload(
    kernel,
    buffer: BoundedBuffer,
    allocator: SingleResourceAllocator,
    config: CrashRecoveryConfig,
) -> None:
    """A workload with deterministic faults on both sides of every crash.

    The misuser produces two real-time violations (Release without Request
    — ST-8b/ST-PX — once early, once via the rogue "rescuer"), a duplicate
    Request (ST-8a) mid-run, and then holds the resource long enough that
    the periodic Request-List sweep reports ST-8c at several checkpoints —
    so the campaign exercises both event-triggered and checkpoint-derived
    reports across restarts.
    """
    span = config.rounds * config.interval
    phase = span * 0.45

    def producer() -> Iterator[Syscall]:
        for item in range(config.operations):
            yield Delay(0.11)
            yield from buffer.send(item)

    def consumer() -> Iterator[Syscall]:
        for __ in range(config.operations):
            yield Delay(0.12)
            yield from buffer.receive()

    def good_user() -> Iterator[Syscall]:
        for __ in range(config.operations):
            yield Delay(0.21)
            yield from allocator.request()
            yield Delay(0.03)
            yield from allocator.release()

    def misuser() -> Iterator[Syscall]:
        yield Delay(0.35)
        yield from allocator.release()  # ST-8b + ST-PX (no Request)
        yield Delay(phase)
        yield from allocator.request()  # legitimate
        yield Delay(0.07)
        yield from allocator.request()  # ST-8a duplicate; blocks on itself
        # ...until the rescuer's rogue release wakes it.  Hold a little
        # longer so the Tlimit sweep sees the aged Request-List entry.
        yield Delay(3.1 * config.interval)
        yield from allocator.release()

    def rescuer() -> Iterator[Syscall]:
        # A second rogue release (ST-8b) that also un-wedges the misuser.
        yield Delay(0.35 + phase + 0.6)
        yield from allocator.release()

    kernel.spawn(producer(), "producer")
    kernel.spawn(consumer(), "consumer")
    kernel.spawn(good_user(), "good-user")
    kernel.spawn(misuser(), "misuser")
    kernel.spawn(rescuer(), "rescuer")


@dataclass(frozen=True)
class _CrashRunOutcome:
    keys: tuple[str, ...]
    strict_keys: tuple[str, ...]
    reports: int
    crashes: tuple[tuple[int, str], ...]
    recoveries: int
    events_replayed: int
    torn_tails: int
    snapshot_fallbacks: int
    durability_counters: dict
    kernel_failures: tuple[str, ...]
    end_time: float


def _run_crash_instance(
    config: CrashRecoveryConfig, root: Path, plan: dict
) -> _CrashRunOutcome:
    """One full kernel run (golden when ``plan`` is empty)."""
    if config.backend == "sim":
        kernel = SimKernel(RandomPolicy(seed=config.seed), on_deadlock="stop")
    else:
        kernel = ThreadKernel(time_scale=0.002)
    buffer = BoundedBuffer(kernel, capacity=3)
    allocator = SingleResourceAllocator(kernel, name="allocator")
    detector_config = DetectorConfig(
        interval=config.interval,
        tmax=60.0,
        tio=60.0,
        # Small enough that the misuser's long hold trips the periodic
        # ST-8c sweep; large enough that a brief good-user wait does not.
        tlimit=2.0 * config.interval,
    )
    rng = random.Random((config.seed << 8) ^ 0xC4A54)
    context = _CrashContext(
        kernel,
        root,
        [(buffer, "buffer"), (allocator, "allocator")],
        detector_config,
        fsync=config.fsync,
        rng=rng,
    )
    _spawn_crash_workload(kernel, buffer, allocator, config)
    kernel.spawn(_crash_driver(context, config, plan), "crash-driver")
    horizon = config.rounds * config.interval + 30.0
    result = kernel.run(until=horizon, max_steps=50_000_000)
    context.durable.close()
    return _CrashRunOutcome(
        keys=_comparison_keys(context.durable.reports, config.strict),
        strict_keys=tuple(
            report_key(report) for report in context.durable.reports
        ),
        reports=len(context.durable.reports),
        crashes=tuple(context.crashes),
        recoveries=context.recoveries,
        events_replayed=context.events_replayed,
        torn_tails=context.torn_tails,
        snapshot_fallbacks=context.snapshot_fallbacks,
        durability_counters=context.durable.durability_counters,
        kernel_failures=tuple(
            f"{type(exc).__name__}: {exc}"
            for exc in kernel.failures().values()
        ),
        end_time=result.end_time,
    )


@dataclass(frozen=True)
class CrashRecoveryResult:
    """Golden-vs-recovered comparison of one crash campaign."""

    config: CrashRecoveryConfig
    #: ``(round, description)`` of every injected crash.
    crashes_injected: tuple[tuple[int, str], ...]
    recoveries: int
    events_replayed: int
    torn_tails_truncated: int
    snapshot_fallbacks: int
    golden_reports: int
    recovered_reports: int
    #: Golden keys the recovered run never delivered (must be empty).
    missing_keys: tuple[str, ...]
    #: Recovered keys absent from the golden run (must be empty).
    extra_keys: tuple[str, ...]
    #: Strict report keys the recovered run delivered more than once
    #: (must be empty — this is the exactly-once claim).
    duplicate_keys: tuple[str, ...]
    durability_counters: dict
    kernel_failures: tuple[str, ...]
    end_time: float

    @property
    def passed(self) -> bool:
        return (
            not self.kernel_failures
            and len(self.crashes_injected) == self.config.crashes
            and self.recoveries == self.config.crashes
            and self.golden_reports > 0
            and not self.missing_keys
            and not self.extra_keys
            and not self.duplicate_keys
        )

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        mode = "strict" if self.config.strict else "relaxed"
        lines = [
            f"crash-recovery campaign (seed={self.config.seed}, "
            f"backend={self.config.backend}, rounds={self.config.rounds}, "
            f"crashes={self.config.crashes}, fsync={self.config.fsync}): "
            f"{verdict}",
            f"  crashes: "
            + (
                "; ".join(
                    f"round {index}: {desc}"
                    for index, desc in self.crashes_injected
                )
                or "none"
            ),
            f"  recovery: {self.recoveries} recoveries, "
            f"{self.events_replayed} WAL events replayed, "
            f"{self.torn_tails_truncated} torn tails truncated, "
            f"{self.snapshot_fallbacks} corrupt snapshots skipped",
            f"  reports ({mode} keys): golden {self.golden_reports}, "
            f"recovered {self.recovered_reports}; "
            f"missing {len(self.missing_keys)}, extra {len(self.extra_keys)}, "
            f"duplicated {len(self.duplicate_keys)}",
            f"  durability: {self.durability_counters}",
        ]
        if self.kernel_failures:
            lines.append(f"  kernel failures: {list(self.kernel_failures)}")
        return "\n".join(lines)


def run_crash_recovery_campaign(
    config: Optional[CrashRecoveryConfig] = None, **overrides
) -> CrashRecoveryResult:
    """Kill the detector N times and prove recovery changed nothing.

    Runs the same seeded workload twice: a *golden* run whose durable
    checkpoints are never interrupted, and a *crashed* run where seeded
    rounds die at seeded :class:`CrashPoint`\\ s and restart through
    :meth:`~repro.detection.durability.DurableEngine.recover`.  Passes
    when both runs deliver the same fault set with zero duplicates (see
    :attr:`CrashRecoveryResult.passed`).

    ``overrides`` are :class:`CrashRecoveryConfig` fields:
    ``run_crash_recovery_campaign(seed=7, crashes=2, backend="threads")``.
    """
    if config is None:
        config = CrashRecoveryConfig(**overrides)
    elif overrides:
        raise InjectionError(
            "pass either a CrashRecoveryConfig or field overrides"
        )

    planner = random.Random(config.seed)
    candidate_rounds = list(range(1, config.rounds - 1))
    rounds = sorted(planner.sample(candidate_rounds, config.crashes))
    points = (
        list(config.crash_points)
        if config.crash_points is not None
        else list(CrashPoint)
    )
    plan = {index: planner.choice(points) for index in rounds}

    base = Path(config.root) if config.root else Path(tempfile.mkdtemp())
    cleanup = config.root is None
    try:
        golden = _run_crash_instance(config, base / "golden", {})
        crashed = _run_crash_instance(config, base / "crashed", plan)
    finally:
        if cleanup:
            shutil.rmtree(base, ignore_errors=True)

    golden_keys = set(golden.keys)
    recovered_keys = set(crashed.keys)
    from collections import Counter

    strict_counts = Counter(crashed.strict_keys)
    duplicates = tuple(
        sorted(key for key, count in strict_counts.items() if count > 1)
    )
    return CrashRecoveryResult(
        config=config,
        crashes_injected=crashed.crashes,
        recoveries=crashed.recoveries,
        events_replayed=crashed.events_replayed,
        torn_tails_truncated=crashed.torn_tails,
        snapshot_fallbacks=crashed.snapshot_fallbacks,
        golden_reports=golden.reports,
        recovered_reports=crashed.reports,
        missing_keys=tuple(sorted(golden_keys - recovered_keys)),
        extra_keys=tuple(sorted(recovered_keys - golden_keys)),
        duplicate_keys=duplicates,
        durability_counters=crashed.durability_counters,
        kernel_failures=golden.kernel_failures + crashed.kernel_failures,
        end_time=crashed.end_time,
    )
