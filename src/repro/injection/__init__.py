"""Fault injection — the robustness experiment's machinery (Section 4).

The paper evaluates robustness by injecting "faults of different kinds as
classified in Section 3.2" and reports that all injected faults are
detected.  This package makes that experiment reproducible:

* :class:`~repro.injection.hooks.TriggeredHooks` — a configurable
  :class:`~repro.monitor.hooks.CoreHooks` that fires one named perturbation
  on its n-th opportunity,
* :mod:`repro.injection.campaigns` — one campaign per taxonomy entry
  (21 total): each builds a deterministic workload, injects exactly one
  fault, runs the detector, and scores whether any report implicates the
  injected fault class.
* :mod:`repro.injection.chaos` — the inverse experiment: a *healthy*
  workload with faults injected into the detection pipeline itself
  (raising rule evaluators, transient checkpoint failures, delays,
  event-drop bursts), asserting the supervised engine degrades instead of
  crashing or false-positiving — plus the crash-durability campaign
  (:func:`~repro.injection.chaos.run_crash_recovery_campaign`) that kills
  and restarts a :class:`~repro.detection.durability.DurableEngine` at
  seeded :class:`~repro.injection.chaos.CrashPoint`\\ s.
"""

from repro.injection.campaigns import (
    CAMPAIGNS,
    CampaignOutcome,
    run_all_campaigns,
    run_campaign,
)
from repro.injection.chaos import (
    ChaosCampaignResult,
    ChaosConfig,
    ChaosError,
    ChaosInjector,
    CrashPoint,
    CrashRecoveryConfig,
    CrashRecoveryResult,
    SabotagedCheck,
    SimulatedCrash,
    run_chaos_campaign,
    run_crash_recovery_campaign,
    sabotage_entry,
)
from repro.injection.hooks import TriggeredHooks

__all__ = [
    "TriggeredHooks",
    "CampaignOutcome",
    "CAMPAIGNS",
    "run_campaign",
    "run_all_campaigns",
    "ChaosError",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosCampaignResult",
    "SabotagedCheck",
    "sabotage_entry",
    "run_chaos_campaign",
    "CrashPoint",
    "SimulatedCrash",
    "CrashRecoveryConfig",
    "CrashRecoveryResult",
    "run_crash_recovery_campaign",
]
