"""Configurable perturbation hooks for fault injection.

``TriggeredHooks`` implements every perturbation point of
:class:`~repro.monitor.hooks.CoreHooks`, armed with exactly one named
perturbation.  The perturbation fires on its ``fire_at``-th *opportunity* —
an opportunity being a call to the corresponding hook in a context where
misbehaving is actually possible (e.g. suppressing admission only counts
when somebody is waiting to be admitted).  Counting opportunities rather
than raw calls makes campaigns deterministic across workload tweaks.

Perturbation names
------------------
=========================  ====================================  ==========
name                       effect                                fault
=========================  ====================================  ==========
``enter_despite_owner``    admit while occupied                  I.a.1
``drop_enter``             lose a blocked enterer                I.a.2
``suppress_admission``     release resumes nobody                I.a.3/I.b.3
``suppress_enter_record``  admit without recording Enter         I.a.4
``wait_no_block``          Wait does not block                   I.b.1
``wait_lose_caller``       waiter vanishes                       I.b.2
``starve_victim``          skip one pid at every admission       I.b.4
``admit_extra``            admit a second process                I.b.5/I.c.3
``wait_hold_monitor``      Wait keeps the lock                   I.b.6
``fake_resume``            Signal-Exit claims a resume           I.c.1
``hold_monitor_on_exit``   exit keeps the Running slot           I.c.2
=========================  ====================================  ==========
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.errors import InjectionError
from repro.history.events import EventKind, SchedulingEvent
from repro.ids import Cond, Pid, Pname
from repro.monitor.hooks import CoreHooks

__all__ = ["TriggeredHooks", "PERTURBATIONS"]

PERTURBATIONS = frozenset(
    {
        "enter_despite_owner",
        "drop_enter",
        "suppress_admission",
        "suppress_enter_record",
        "wait_no_block",
        "wait_lose_caller",
        "starve_victim",
        "admit_extra",
        "wait_hold_monitor",
        "fake_resume",
        "hold_monitor_on_exit",
    }
)


class TriggeredHooks(CoreHooks):
    """Fire one named perturbation on its n-th opportunity.

    Parameters
    ----------
    perturbation:
        One of :data:`PERTURBATIONS`.
    fire_at:
        Which opportunity triggers the misbehaviour (1 = first).  Ignored
        by ``starve_victim``, which misbehaves persistently.
    victim:
        Target pid for ``starve_victim``.
    origin:
        For ``suppress_admission`` / ``admit_extra``: restrict to
        admissions caused by ``"wait"``, ``"signal-exit"`` or
        ``"signal-exit-handoff"``; None fires on any origin.
    """

    def __init__(
        self,
        perturbation: str,
        *,
        fire_at: int = 1,
        victim: Optional[Pid] = None,
        origin: Optional[str] = None,
    ) -> None:
        if perturbation not in PERTURBATIONS:
            raise InjectionError(
                f"unknown perturbation {perturbation!r}; "
                f"choose from {sorted(PERTURBATIONS)}"
            )
        if perturbation == "starve_victim" and victim is None:
            raise InjectionError("starve_victim requires a victim pid")
        self._perturbation = perturbation
        self._fire_at = fire_at
        self._victim = victim
        self._origin = origin
        self._opportunities: dict[str, int] = defaultdict(int)
        #: Number of times the perturbation actually fired.
        self.fired = 0
        #: Pids affected by fired perturbations (for campaign assertions).
        self.affected: list[Pid] = []
        #: Optional back-reference to the MonitorCore, wired by campaigns.
        #: The admission perturbations use it to count only *real*
        #: opportunities (someone is actually waiting to be admitted).
        self.core = None

    def _trigger(self, name: str, pid: Optional[Pid] = None) -> bool:
        if name != self._perturbation:
            return False
        self._opportunities[name] += 1
        if self._opportunities[name] != self._fire_at:
            return False
        self.fired += 1
        if pid is not None:
            self.affected.append(pid)
        return True

    def _origin_matches(self, origin: str) -> bool:
        return self._origin is None or self._origin == origin

    # ------------------------------------------------------------- recording

    def should_record(self, event: SchedulingEvent) -> bool:
        if (
            self._perturbation == "suppress_enter_record"
            and event.kind is EventKind.ENTER
            and event.flag == 1
        ):
            return not self._trigger("suppress_enter_record", event.pid)
        return True

    # ----------------------------------------------------------------- enter

    def enter_admit_despite_owner(self, pid: Pid, pname: Pname) -> bool:
        return self._trigger("enter_despite_owner", pid)

    def enter_drop_request(self, pid: Pid, pname: Pname) -> bool:
        return self._trigger("drop_enter", pid)

    # ------------------------------------------------------------- admission

    def _someone_is_waiting(self) -> bool:
        return self.core is None or bool(self.core.entry_pids)

    def admission_suppressed(self, origin: str) -> bool:
        if not self._origin_matches(origin) or not self._someone_is_waiting():
            return False
        return self._trigger("suppress_admission")

    def admission_skip_victim(self, pid: Pid) -> bool:
        if self._perturbation != "starve_victim":
            return False
        if pid == self._victim:
            self.fired += 1
            if pid not in self.affected:
                self.affected.append(pid)
            return True
        return False

    def admission_admit_extra(self, origin: str) -> bool:
        if not self._origin_matches(origin) or not self._someone_is_waiting():
            return False
        return self._trigger("admit_extra")

    # ------------------------------------------------------------------ wait

    def wait_no_block(self, pid: Pid, cond: Cond) -> bool:
        return self._trigger("wait_no_block", pid)

    def wait_lose_caller(self, pid: Pid, cond: Cond) -> bool:
        return self._trigger("wait_lose_caller", pid)

    def wait_hold_monitor(self, pid: Pid, cond: Cond) -> bool:
        return self._trigger("wait_hold_monitor", pid)

    # ----------------------------------------------------------- signal-exit

    def sigexit_fake_resume(self, pid: Pid, cond: Optional[Cond]) -> bool:
        return self._trigger("fake_resume", pid)

    def sigexit_hold_monitor(self, pid: Pid) -> bool:
        return self._trigger("hold_monitor_on_exit", pid)
