"""Seeded network-chaos campaign for the detection service.

Runs N clients against one :class:`~repro.service.server.DetectionServer`
over a :class:`~repro.service.transport.SimNetwork`, with a deterministic
fault driver injecting the service's whole failure menu — connection
drops, partial frames, slow-consumer stalls, and a full server
crash/restart over a durable journal — then asserts the robustness
contract end to end:

* **zero client-side exceptions**: every client's ``errors`` list is
  empty — disconnects, stalls and the server outage were absorbed by
  buffering and reconnect, never raised into the workload;
* **loss is never silent**: every window that arrived lossy (ring drops,
  shed replay windows, sequence gaps, post-restart resync) was evaluated
  in degraded mode — reports from such windows carry
  :attr:`~repro.detection.reports.Confidence.DEGRADED`, not CONFIRMED;
* **exactly-once delivery**: after the crash and recovery, the journal
  holds no duplicate reports (confidence-blind keys are unique);
* the faults actually happened: reconnects observed, windows replayed,
  at least one report delivered.

Everything is driven by one seed: the kernel scheduling policy, the
fault schedule and the client backoff jitter all derive from it, so a
failing campaign replays bit-for-bit.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.apps.bounded_buffer import BoundedBuffer
from repro.apps.resource_allocator import SingleResourceAllocator
from repro.detection.config import DetectorConfig
from repro.detection.reports import Confidence
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.syscalls import Delay, Syscall
from repro.service.client import DetectionClient, client_process
from repro.service.server import DetectionServer, service_report_key
from repro.service.transport import SimNetwork, network_process

__all__ = [
    "NetworkChaosConfig",
    "NetworkChaosResult",
    "run_network_chaos_campaign",
]


@dataclass(frozen=True)
class NetworkChaosConfig:
    """One seeded network-chaos campaign.

    Fault rates are per driver round (one round per checkpoint
    interval).  ``crash_round`` picks when the server dies ungracefully;
    after ``crash_outage`` virtual seconds a new incarnation recovers
    from the same durable journal and the network starts accepting
    again.  ``None`` disables the crash.
    """

    seed: int = 0
    clients: int = 3
    rounds: int = 36
    interval: float = 5.0
    replay_limit: int = 12
    operations: int = 40
    drop_rate: float = 0.12
    truncate_rate: float = 0.08
    stall_rate: float = 0.10
    stall_pumps: int = 4
    crash_round: Optional[int] = 14
    crash_outage: float = 12.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients!r}")
        if self.rounds < 4:
            raise ValueError(f"rounds must be >= 4, got {self.rounds!r}")
        if self.interval <= 0:
            raise ValueError(
                f"interval must be positive, got {self.interval!r}"
            )
        for name in ("drop_rate", "truncate_rate", "stall_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.crash_round is not None and not (
            1 <= self.crash_round < self.rounds
        ):
            raise ValueError(
                f"crash_round must be in [1, rounds), got {self.crash_round!r}"
            )


@dataclass(frozen=True)
class NetworkChaosResult:
    """Outcome of one campaign, with the pass/fail contract attached."""

    config: NetworkChaosConfig
    faults_injected: tuple[tuple[float, str], ...]
    server_crashes: int
    connections_cut: int
    frames_truncated: int
    pumps_stalled: int
    reconnects: int
    windows_accepted: int
    windows_duplicate: int
    windows_evicted: int
    events_lost: int
    lossy_windows: int
    degraded_windows: int
    resync_windows: int
    delivered_reports: int
    degraded_reports: int
    confirmed_from_lossy: int
    duplicate_journal_keys: int
    journal_deduplicated: int
    client_errors: tuple[str, ...]
    kernel_failures: tuple[str, ...]
    end_time: float

    @property
    def passed(self) -> bool:
        checks = [
            not self.kernel_failures,
            not self.client_errors,
            self.duplicate_journal_keys == 0,
            # Every lossy window took the degraded evaluation path...
            self.degraded_windows == self.lossy_windows,
            # ...and no report born from one claims full confidence.
            self.confirmed_from_lossy == 0,
            self.delivered_reports > 0,
            self.windows_accepted > 0,
        ]
        if self.config.drop_rate > 0 or self.config.crash_round is not None:
            checks.append(self.reconnects > 0)
        if self.config.crash_round is not None:
            checks.append(self.server_crashes >= 1)
        return all(checks)

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"network chaos [{verdict}] seed={self.config.seed} "
            f"clients={self.config.clients}: "
            f"{self.windows_accepted} windows "
            f"({self.windows_duplicate} dup-skipped, "
            f"{self.lossy_windows} lossy -> {self.degraded_windows} "
            f"degraded), {self.delivered_reports} reports "
            f"({self.degraded_reports} degraded, 0 dups expected: "
            f"{self.duplicate_journal_keys}), "
            f"faults: {self.connections_cut} cuts, "
            f"{self.frames_truncated} truncations, "
            f"{self.pumps_stalled} stalled pumps, "
            f"{self.server_crashes} crash(es); "
            f"{self.reconnects} reconnects, "
            f"{self.client_errors and 'CLIENT ERRORS' or 'no client errors'}"
        )


def _spawn_client_workload(
    kernel: SimKernel,
    buffer: BoundedBuffer,
    allocator: SingleResourceAllocator,
    config: NetworkChaosConfig,
    index: int,
) -> None:
    """Per-client workload with deterministic misuse (same shape as the
    crash-recovery campaign's): rogue releases (ST-8b/ST-PX), a duplicate
    request (ST-8a) and a hold long enough to trip the ST-8c sweep."""
    span = config.rounds * config.interval
    phase = span * 0.4 + 0.13 * index

    def producer() -> Iterator[Syscall]:
        for item in range(config.operations):
            yield Delay(0.11)
            yield from buffer.send(item)

    def consumer() -> Iterator[Syscall]:
        for __ in range(config.operations):
            yield Delay(0.12)
            yield from buffer.receive()

    def misuser() -> Iterator[Syscall]:
        yield Delay(0.35 + 0.07 * index)
        yield from allocator.release()  # ST-8b + ST-PX
        yield Delay(phase)
        yield from allocator.request()
        yield Delay(0.07)
        yield from allocator.request()  # ST-8a; blocks on itself
        yield Delay(3.1 * config.interval)
        yield from allocator.release()

    def rescuer() -> Iterator[Syscall]:
        yield Delay(0.35 + 0.07 * index + phase + 0.6)
        yield from allocator.release()  # ST-8b; un-wedges the misuser

    kernel.spawn(producer(), f"producer-{index}")
    kernel.spawn(consumer(), f"consumer-{index}")
    kernel.spawn(misuser(), f"misuser-{index}")
    kernel.spawn(rescuer(), f"rescuer-{index}")


def _fault_driver(
    kernel: SimKernel,
    net: SimNetwork,
    config: NetworkChaosConfig,
    detector_config: DetectorConfig,
    durable_root: Path,
    rng: random.Random,
    incarnations: list[DetectionServer],
    faults: list[tuple[float, str]],
) -> Iterator[Syscall]:
    """Deterministic fault schedule, one decision per checkpoint round."""
    for round_index in range(config.rounds):
        yield Delay(config.interval)
        now = kernel.now()
        if config.crash_round is not None and round_index == config.crash_round:
            net.crash_server()
            faults.append((now, "server-crash"))
            yield Delay(config.crash_outage)
            replacement = DetectionServer(
                kernel, config=detector_config, durable_dir=durable_root
            )
            replacement.recover()
            incarnations.append(replacement)
            net.restart_server(replacement)
            faults.append((kernel.now(), "server-restart"))
            continue
        roll = rng.random()
        live = sorted(net.conns)
        if roll < config.drop_rate and live:
            victim = live[rng.randrange(len(live))]
            net.cut(victim)
            faults.append((now, f"cut-{victim}"))
        elif roll < config.drop_rate + config.truncate_rate and live:
            victim = live[rng.randrange(len(live))]
            net.truncate_next(victim, drop=1 + rng.randrange(9))
            faults.append((now, f"truncate-{victim}"))
        elif (
            roll < config.drop_rate + config.truncate_rate + config.stall_rate
        ):
            net.stall(config.stall_pumps)
            faults.append((now, f"stall-{config.stall_pumps}"))


def run_network_chaos_campaign(
    config: NetworkChaosConfig,
    *,
    durable_root: Optional[Path] = None,
) -> NetworkChaosResult:
    """Run one seeded campaign; see the module docstring for the contract."""
    owns_root = durable_root is None
    root = (
        Path(tempfile.mkdtemp(prefix="repro-netchaos-"))
        if owns_root
        else Path(durable_root)
    )
    try:
        return _run(config, root)
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)


def _run(config: NetworkChaosConfig, root: Path) -> NetworkChaosResult:
    kernel = SimKernel(RandomPolicy(seed=config.seed), on_deadlock="stop")
    detector_config = DetectorConfig(
        interval=config.interval,
        tmax=60.0,
        tio=60.0,
        tlimit=2.0 * config.interval,
    )
    server = DetectionServer(
        kernel, config=detector_config, durable_dir=root
    )
    server.recover()
    incarnations = [server]
    net = SimNetwork(server)
    clients: list[DetectionClient] = []
    for index in range(config.clients):
        buffer = BoundedBuffer(kernel, capacity=3)
        allocator = SingleResourceAllocator(kernel, name=f"alloc-{index}")
        client = DetectionClient(
            kernel,
            net.connect,
            name=f"client-{index}",
            interval=config.interval,
            replay_limit=config.replay_limit,
            backoff_base=0.5,
            backoff_max=2.0 * config.interval,
            seed=(config.seed << 4) ^ index,
        )
        client.attach(buffer, label="buffer")
        client.attach(allocator, label="allocator")
        clients.append(client)
        _spawn_client_workload(kernel, buffer, allocator, config, index)
        kernel.spawn(
            client_process(client, rounds=config.rounds, drain_rounds=30),
            f"client-{index}",
        )
    kernel.spawn(
        network_process(net, interval=config.interval / 2.0), "network"
    )
    faults: list[tuple[float, str]] = []
    fault_rng = random.Random((config.seed << 8) ^ 0x5E21CE)
    kernel.spawn(
        _fault_driver(
            kernel,
            net,
            config,
            detector_config,
            root,
            fault_rng,
            incarnations,
            faults,
        ),
        "fault-driver",
    )
    horizon = (config.rounds + 35) * config.interval + config.crash_outage
    result = kernel.run(until=horizon, max_steps=50_000_000)
    final = incarnations[-1]
    final.close()
    # ------------------------------------------------------------ verdicts
    keys = [service_report_key(r) for r in final.journal.reports]
    duplicate_journal_keys = len(keys) - len(set(keys))
    degraded_reports = sum(
        1
        for report in final.journal.reports
        if report.confidence is Confidence.DEGRADED
    )
    # A CONFIRMED report produced while evaluating a lossy window would be
    # a silent-loss bug.  Reports don't record their window's loss, but
    # the engine invariant does: every lossy window bumps
    # ``degraded_windows`` and its surviving reports are downgraded, so
    # lossy windows minus degraded evaluations exposes any leak.  Lossy
    # windows accepted but never evaluated (pending in a crashed
    # incarnation — the client replays them to the next one) are excluded.
    lossy = sum(s.lossy_windows for s in incarnations)
    unevaluated_lossy = sum(
        1
        for s in incarnations
        for capture in s.engine._pending_captures
        if capture.segment.dropped
    )
    lossy -= unevaluated_lossy
    degraded = sum(s.engine.degraded_windows for s in incarnations)
    return NetworkChaosResult(
        config=config,
        faults_injected=tuple(faults),
        server_crashes=net.server_crashes,
        connections_cut=net.connections_cut,
        frames_truncated=net.frames_truncated,
        pumps_stalled=net.pumps_stalled,
        reconnects=sum(c.disconnects for c in clients),
        windows_accepted=sum(s.windows_accepted for s in incarnations),
        windows_duplicate=sum(s.windows_duplicate for s in incarnations),
        windows_evicted=sum(
            c.stats()["windows_evicted"] for c in clients
        ),
        events_lost=sum(c.stats()["events_lost"] for c in clients),
        lossy_windows=lossy,
        degraded_windows=degraded,
        resync_windows=sum(s.resync_windows for s in incarnations),
        delivered_reports=len(final.journal.reports),
        degraded_reports=degraded_reports,
        confirmed_from_lossy=max(0, lossy - degraded),
        duplicate_journal_keys=duplicate_journal_keys,
        journal_deduplicated=sum(
            s.journal.deduplicated for s in incarnations
        ),
        client_errors=tuple(
            f"{client.name}: {error}"
            for client in clients
            for error in client.errors
        ),
        kernel_failures=tuple(
            f"{type(exc).__name__}: {exc}"
            for exc in kernel.failures().values()
        ),
        end_time=result.end_time,
    )
