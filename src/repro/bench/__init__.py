"""Benchmark harnesses regenerating the paper's evaluation artefacts.

* :mod:`repro.bench.overhead` — experiment E1: Table 1, the overhead ratio
  of the augmented monitor versus the plain construct as a function of the
  checking interval, across the three monitor types.  Run standalone with
  ``python -m repro.bench.overhead``.
* :mod:`repro.bench.coverage` — experiment E2: the robustness result
  ("all injected faults are detected"), one row per taxonomy entry.  Run
  standalone with ``python -m repro.bench.coverage``.
* :mod:`repro.bench.engine_scaling` — experiment E3: batched-engine
  checkpoint cost versus per-monitor detectors at fleet sizes 1/4/16.
  Run standalone with ``python -m repro.bench.engine_scaling``.
* :mod:`repro.bench.tables` — plain-text table rendering shared by both.
"""

from repro.bench.coverage import coverage_table, run_coverage
from repro.bench.engine_scaling import (
    ScalingRow,
    measure_scaling,
    scaling_table,
)
from repro.bench.overhead import OverheadRow, measure_overhead, overhead_table
from repro.bench.tables import render_table

__all__ = [
    "OverheadRow",
    "measure_overhead",
    "overhead_table",
    "run_coverage",
    "ScalingRow",
    "measure_scaling",
    "scaling_table",
    "coverage_table",
    "render_table",
]
