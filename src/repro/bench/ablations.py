"""Standalone ablation harness (experiments A1, A2, A3 of DESIGN.md).

``python -m repro.bench.ablations`` runs all three and prints their
tables; the asserted versions live in ``benchmarks/test_ablation_*.py``.

* **A1 — ST vs FD checking:** verdict agreement between the windowed
  checkpoint checker and the offline full-trace checker, plus the memory
  saving of pruning.
* **A2 — interval vs accuracy:** detection latency of a known-time fault
  as a function of the checking period T.
* **A3 — pruning:** live-window memory stays flat as the run grows.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Sequence

from repro._tables import render_table
from repro.apps.bounded_buffer import BoundedBuffer
from repro.detection.detector import DetectorConfig, FaultDetector, detector_process
from repro.detection.fd_rules import check_full_trace
from repro.history.database import HistoryDatabase
from repro.injection.hooks import TriggeredHooks
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.syscalls import Delay

__all__ = [
    "ablation_st_vs_fd",
    "ablation_interval_accuracy",
    "ablation_pruning",
    "main",
]


def _buffer_run(
    *,
    hooks: Optional[TriggeredHooks] = None,
    items: int = 60,
    interval: float = 0.5,
    retain: bool = True,
    seed: int = 0,
):
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    history = HistoryDatabase(retain_full_trace=retain)
    buffer = BoundedBuffer(
        kernel, capacity=3, history=history, hooks=hooks, service_time=0.02
    )
    if hooks is not None:
        hooks.core = buffer.monitor.core
    detector = FaultDetector(
        buffer, DetectorConfig(interval=interval, tmax=100.0, tio=100.0)
    )

    def producer():
        for item in range(items):
            yield Delay(0.03)
            yield from buffer.send(item)

    def consumer():
        for __ in range(items):
            yield Delay(0.03)
            yield from buffer.receive()

    for __ in range(2):
        kernel.spawn(producer())
        kernel.spawn(consumer())
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=500, max_steps=5_000_000)
    return buffer, history, detector


# ----------------------------------------------------------------------- A1


def ablation_st_vs_fd() -> str:
    rows = []
    for label, hooks in (
        ("clean", None),
        ("faulty (I.a.1)", TriggeredHooks("enter_despite_owner", fire_at=2)),
    ):
        buffer, history, detector = _buffer_run(hooks=hooks)
        fd_reports = check_full_trace(
            buffer.declaration,
            history.full_trace,
            final_state=buffer.snapshot(),
            tmax=100.0,
            tio=100.0,
        )
        rows.append(
            [
                label,
                len(detector.reports),
                len(fd_reports),
                "yes" if bool(detector.reports) == bool(fd_reports) else "NO",
                history.peak_live_events,
                history.total_recorded,
            ]
        )
    return render_table(
        ["run", "ST reports", "FD reports", "verdicts agree",
         "window peak", "total events"],
        rows,
        title="A1: windowed ST checking vs offline FD checking",
    )


# ----------------------------------------------------------------------- A2

_INJECTION_TIME = 1.0
_TMAX = 0.5


def _detection_latency(interval: float) -> float:
    kernel = SimKernel(RandomPolicy(seed=0), on_deadlock="stop")
    buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
    detector = FaultDetector(
        buffer, DetectorConfig(interval=interval, tmax=_TMAX, tio=100.0)
    )

    def saboteur():
        yield Delay(_INJECTION_TIME)
        yield from buffer.monitor.enter("Send")
        # terminates inside (fault I.c.4)

    def ticker():
        yield Delay(60.0)

    kernel.spawn(saboteur(), "saboteur")
    kernel.spawn(ticker(), "ticker")
    kernel.spawn(detector_process(detector), "detector")
    kernel.run(until=40.0)
    if not detector.reports:
        return float("nan")
    first = min(report.detected_at for report in detector.reports)
    return first - (_INJECTION_TIME + _TMAX)


def ablation_interval_accuracy(
    intervals: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> str:
    rows = [
        [f"{interval:g}", f"{_detection_latency(interval):.3f}"]
        for interval in intervals
    ]
    return render_table(
        ["checking interval T", "detection latency past earliest"],
        rows,
        title="A2: checking interval vs detection latency (fault I.c.4)",
    )


# ----------------------------------------------------------------------- A3


def ablation_pruning(sizes: Sequence[int] = (50, 100, 200)) -> str:
    rows = []
    for items in sizes:
        __, pruned, __d = _buffer_run(items=items, retain=False)
        __, retained, __d = _buffer_run(items=items, retain=True)
        rows.append(
            [
                items,
                pruned.total_recorded,
                pruned.peak_live_events,
                len(retained.full_trace),
            ]
        )
    return render_table(
        ["items/process", "events recorded", "pruned window peak",
         "retained trace size"],
        rows,
        title="A3: pruning keeps live memory flat as the run grows",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only", choices=("a1", "a2", "a3"), default=None,
        help="run a single ablation",
    )
    args = parser.parse_args(argv)
    blocks = {
        "a1": ablation_st_vs_fd,
        "a2": ablation_interval_accuracy,
        "a3": ablation_pruning,
    }
    selected = [args.only] if args.only else ["a1", "a2", "a3"]
    for key in selected:
        print(blocks[key]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
