"""Experiment E2 — the robustness result of Section 4.

The paper: "Faults of different kinds as classified in Section 3.2 are
injected randomly for evaluating the coverage of the fault detection
algorithms.  The results show that all injected faults are detected."

This harness runs the full campaign table (one deterministic campaign per
taxonomy entry, 21 total) and renders the per-class outcome.  Run
standalone with ``python -m repro.bench.coverage``.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from repro.bench.tables import render_table
from repro.detection.faults import FaultClass
from repro.injection.campaigns import CAMPAIGNS, CampaignOutcome, run_all_campaigns

__all__ = ["run_coverage", "coverage_table", "outcomes_to_json", "main"]


def run_coverage(seed: int = 0) -> dict[FaultClass, CampaignOutcome]:
    """Run all 21 campaigns; returns per-fault outcomes."""
    return run_all_campaigns(seed=seed)


def coverage_table(outcomes: dict[FaultClass, CampaignOutcome]) -> str:
    """Render the robustness table (one row per fault class)."""
    rows = []
    detected = 0
    for fault in FaultClass:
        outcome = outcomes[fault]
        if outcome.detected:
            detected += 1
        rows.append(
            [
                fault.label,
                CAMPAIGNS[fault].description[:58],
                "yes" if outcome.activated else "NO",
                "yes" if outcome.detected else "NO",
                ",".join(outcome.rules[:4]) or "-",
                len(outcome.reports),
            ]
        )
    table = render_table(
        ["fault", "campaign", "activated", "detected", "rules", "reports"],
        rows,
        title="Robustness (reproduced): fault-injection coverage",
    )
    return f"{table}\n\ndetected {detected}/{len(FaultClass)} injected fault classes"


def outcomes_to_json(outcomes: dict[FaultClass, CampaignOutcome]) -> dict:
    """Machine-readable coverage results (the ``--json`` payload)."""
    return {
        "bench": "coverage",
        "detected": sum(1 for o in outcomes.values() if o.detected),
        "total": len(outcomes),
        "faults": [
            {
                "fault": fault.label,
                "level": fault.level.value,
                "activated": outcome.activated,
                "detected": outcome.detected,
                "rules": list(outcome.rules),
                "reports": len(outcome.reports),
            }
            for fault, outcome in outcomes.items()
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the outcomes as JSON to PATH ('-' for stdout)",
    )
    args = parser.parse_args(argv)
    outcomes = run_coverage(seed=args.seed)
    print(coverage_table(outcomes))
    if args.json is not None:
        payload = json.dumps(
            {
                "command": "coverage",
                "seed": args.seed,
                "results": outcomes_to_json(outcomes),
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"json written to {args.json}")
    return 0 if all(o.detected for o in outcomes.values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
