"""Experiment E1 — Table 1: detection overhead versus checking interval.

The paper's Table 1 reports, for checking intervals from 0.5 s to 3.0 s,
"the overhead calculated as the average ratio between the time spent on
executing monitor operations with the extension and that without the
extension", observing ratios near 7 at T = 0.5 s falling toward 4 at
T = 3.0 s.  The reproduced quantity is the same ratio::

    ratio(T) = (monitor-op seconds with recording  +  checking seconds at T)
               -----------------------------------------------------------
                      monitor-op seconds of the plain construct

measured over an identical deterministic workload.  Absolute magnitudes
differ from a 2001 JVM; the *shape* — ratio > 1, monotonically
non-increasing in T, similar across the three monitor types — is the
reproduction target (see EXPERIMENTS.md).

Both kernels are supported: the simulation kernel measures pure CPU cost
deterministically (default; used by the pytest benchmarks), the thread
kernel adds real lock contention (``backend="threads"``).
"""

from __future__ import annotations

import argparse
import gc
import json
import shutil
import statistics
import tempfile
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.bench.tables import render_table
from repro.detection.detector import DetectorConfig, FaultDetector, detector_process
from repro.detection.engine import DetectionEngine, engine_process
from repro.history.bounded import BoundedHistory
from repro.history.database import HistoryDatabase
from repro.history.wal import FSYNC_POLICIES, WriteAheadLog
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.threads import ThreadKernel
from repro.observability.export import to_json_dict
from repro.observability.registry import MetricsRegistry
from repro.workloads.scenarios import WorkloadSpec, build_fleet, build_scenario

__all__ = [
    "OverheadRow",
    "measure_overhead",
    "overhead_table",
    "render_overhead_table",
    "rows_to_json",
    "WalOverheadRow",
    "measure_wal_overhead",
    "wal_overhead_table",
    "render_wal_table",
    "wal_rows_to_json",
    "FleetOverheadRow",
    "measure_fleet_overhead",
    "render_fleet_table",
    "fleet_rows_to_json",
    "main",
]

#: The paper's Table 1 grid.
PAPER_INTERVALS: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
PAPER_SCENARIOS: tuple[str, ...] = ("coordinator", "allocator", "manager")

#: Default workload: long enough (about 30 virtual seconds) that even
#: T = 3 s sees ten checkpoints, so the interval sweep is meaningful.
BENCH_SPEC = WorkloadSpec(processes=6, operations=300, think_time=0.1)


@dataclass(frozen=True)
class OverheadRow:
    """One cell of the reproduced Table 1."""

    scenario: str
    interval: float
    base_seconds: float
    extended_seconds: float
    checking_seconds: float
    ratio: float
    events: int
    checkpoints: int
    #: Events the sink discarded (nonzero only with ``--bounded``).
    dropped: int = 0
    #: Phase-1 (atomic snapshot/cut) share of ``checking_seconds`` — the
    #: only part the workload is actually stopped for.
    worldstop_seconds: float = 0.0
    #: Phase-2 (off-critical-path rule evaluation) share.
    evaluate_seconds: float = 0.0
    #: Longest single phase-1 section observed.
    worldstop_max: float = 0.0

    @property
    def worldstop_mean(self) -> float:
        """Mean phase-1 world-stop per checkpoint run."""
        if self.checkpoints == 0:
            return 0.0
        return self.worldstop_seconds / self.checkpoints


def _make_kernel(backend: str, seed: int):
    if backend == "sim":
        return SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    if backend == "threads":
        return ThreadKernel(time_scale=0.002)
    raise ValueError(f"unknown backend {backend!r}; use 'sim' or 'threads'")


def _run_once(
    scenario: str,
    backend: str,
    spec: WorkloadSpec,
    interval: Optional[float],
    *,
    use_engine: bool = False,
    bounded: Optional[int] = None,
) -> tuple[float, float, int, int, int, float, float, float]:
    """One workload execution.

    Returns (monitor-op seconds, checking seconds, events recorded,
    checkpoints run, events dropped, world-stop seconds, evaluate
    seconds, world-stop max).  ``interval=None`` runs the plain
    construct (no history, no detector) — the baseline.
    ``use_engine=True`` checks through a shared :class:`DetectionEngine`
    registration instead of a ``FaultDetector`` (the two are
    report-equivalent for one monitor; the flag lets Table 1 be
    regenerated on the engine path).  ``bounded`` caps the recording sink
    at that many live events (a :class:`BoundedHistory` ring buffer), so
    the row also measures what drop-mode recording costs and sheds.
    """
    kernel = _make_kernel(backend, spec.seed)
    history: Optional[Union[HistoryDatabase, BoundedHistory]]
    if interval is None:
        history = None
    elif bounded is not None:
        history = BoundedHistory(capacity=bounded)
    else:
        history = HistoryDatabase()
    run = build_scenario(scenario, kernel, history, spec)
    checker: Optional[Union[FaultDetector, DetectionEngine]] = None
    if interval is not None:
        # Generous bounds: the workload is healthy; the sweeps are
        # enabled because their cost is part of what Table 1 measures.
        config = DetectorConfig(
            interval=interval, tmax=120.0, tio=120.0, tlimit=120.0
        )
        if use_engine:
            checker = DetectionEngine(kernel, config)
            checker.register(run.monitor)
        else:
            checker = FaultDetector(run.monitor, config)

    # Stop the checker once the last workload process finishes, so small
    # checking intervals are not charged for checkpoints over an idle
    # monitor after the workload has drained.
    remaining = {"count": len(run.bodies)}

    def finishing(body):
        result = yield from body
        remaining["count"] -= 1
        if remaining["count"] == 0 and checker is not None:
            checker.stop()
        return result

    for index, body in enumerate(run.bodies):
        kernel.spawn(finishing(body), f"{run.name}-{index}")
    if isinstance(checker, DetectionEngine):
        kernel.spawn(engine_process(checker), "detection-engine")
    elif checker is not None:
        kernel.spawn(detector_process(checker), "detector")
    horizon = spec.operations * spec.think_time * 40 + 60
    # Collector pauses are the dominant noise source at millisecond op
    # timings; keep them out of the measured window.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        kernel.run(until=horizon, max_steps=20_000_000)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    kernel.raise_failures()
    monitor = run.monitor.monitor
    engine = (
        checker
        if isinstance(checker, DetectionEngine)
        else (checker.engine if checker is not None else None)
    )
    checking = engine.checking_seconds if engine is not None else 0.0
    worldstop = engine.worldstop_seconds if engine is not None else 0.0
    evaluate = engine.evaluate_seconds if engine is not None else 0.0
    worldstop_max = engine.worldstop_max if engine is not None else 0.0
    events = history.total_recorded if history is not None else 0
    checkpoints = checker.checkpoints_run if checker is not None else 0
    dropped = history.dropped_events if history is not None else 0
    return (
        monitor.op_seconds,
        checking,
        events,
        checkpoints,
        dropped,
        worldstop,
        evaluate,
        worldstop_max,
    )


def measure_overhead(
    scenario: str,
    interval: float,
    *,
    backend: str = "sim",
    spec: Optional[WorkloadSpec] = None,
    repeats: int = 3,
    use_engine: bool = False,
    bounded: Optional[int] = None,
) -> OverheadRow:
    """Measure one Table-1 cell: scenario x checking interval.

    ``repeats`` controls how many paired runs are taken; the minimum of
    each timing is reported — the standard low-noise estimator for
    benchmarks, since scheduler and allocator noise only ever adds time.
    """
    spec = spec or BENCH_SPEC
    base_samples: list[float] = []
    ext_samples: list[tuple[float, float, int, int, int, float, float, float]] = []
    for __ in range(repeats):
        base_ops = _run_once(scenario, backend, spec, None)[0]
        base_samples.append(base_ops)
        ext_samples.append(
            _run_once(
                scenario,
                backend,
                spec,
                interval,
                use_engine=use_engine,
                bounded=bounded,
            )
        )
    base = min(base_samples)
    ext_ops = min(sample[0] for sample in ext_samples)
    checking = min(sample[1] for sample in ext_samples)
    events = ext_samples[-1][2]
    checkpoints = ext_samples[-1][3]
    dropped = ext_samples[-1][4]
    worldstop = min(sample[5] for sample in ext_samples)
    evaluate = min(sample[6] for sample in ext_samples)
    worldstop_max = min(sample[7] for sample in ext_samples)
    ratio = (ext_ops + checking) / base if base > 0 else float("nan")
    return OverheadRow(
        scenario=scenario,
        interval=interval,
        base_seconds=base,
        extended_seconds=ext_ops,
        checking_seconds=checking,
        ratio=ratio,
        events=events,
        checkpoints=checkpoints,
        dropped=dropped,
        worldstop_seconds=worldstop,
        evaluate_seconds=evaluate,
        worldstop_max=worldstop_max,
    )


def overhead_table(
    *,
    intervals: Sequence[float] = PAPER_INTERVALS,
    scenarios: Sequence[str] = PAPER_SCENARIOS,
    backend: str = "sim",
    spec: Optional[WorkloadSpec] = None,
    repeats: int = 3,
    use_engine: bool = False,
    bounded: Optional[int] = None,
) -> list[OverheadRow]:
    """Regenerate the full Table-1 grid."""
    rows: list[OverheadRow] = []
    for scenario in scenarios:
        for interval in intervals:
            rows.append(
                measure_overhead(
                    scenario,
                    interval,
                    backend=backend,
                    spec=spec,
                    repeats=repeats,
                    use_engine=use_engine,
                    bounded=bounded,
                )
            )
    return rows


def render_overhead_table(rows: Sequence[OverheadRow]) -> str:
    """Print the grid in the paper's layout (one row per scenario)."""
    intervals = sorted({row.interval for row in rows})
    headers = ["monitor type"] + [f"T={interval:g}s" for interval in intervals]
    by_scenario: dict[str, dict[float, float]] = {}
    for row in rows:
        by_scenario.setdefault(row.scenario, {})[row.interval] = row.ratio
    table_rows = [
        [scenario]
        + [f"{cells.get(interval, float('nan')):.3f}" for interval in intervals]
        for scenario, cells in by_scenario.items()
    ]
    return render_table(
        headers,
        table_rows,
        title="Table 1 (reproduced): overhead ratio vs checking interval",
    )


def _fill_gauges(
    registry: MetricsRegistry,
    labelnames: Sequence[str],
    fields: Sequence[tuple],
    rows: Sequence,
    labels_of,
) -> None:
    """Declare one gauge family per (name, help, getter) and set a child
    per row — the shared shape of every bench registry."""
    for name, help_text, get in fields:
        family = registry.gauge(name, help_text, labelnames)
        for row in rows:
            family.labels(**labels_of(row)).set(float(get(row)))


def _table_metrics(
    rows: Sequence[OverheadRow], *, backend: str
) -> MetricsRegistry:
    """Registry view of the Table-1 grid (one gauge child per cell)."""
    registry = MetricsRegistry()
    registry.gauge(
        "repro_bench_backend_info",
        "Bench backend marker (value is always 1).",
        ("backend",),
    ).labels(backend=backend).set(1.0)
    _fill_gauges(
        registry,
        ("scenario", "interval"),
        [
            ("repro_bench_overhead_ratio",
             "Extended-vs-base overhead ratio (Table 1 cell).",
             lambda r: r.ratio),
            ("repro_bench_base_seconds",
             "Monitor-op seconds of the plain construct.",
             lambda r: r.base_seconds),
            ("repro_bench_extended_seconds",
             "Monitor-op seconds with recording and checking.",
             lambda r: r.extended_seconds),
            ("repro_bench_checking_seconds",
             "Checkpoint seconds at this interval.",
             lambda r: r.checking_seconds),
            ("repro_bench_worldstop_seconds",
             "Phase-1 world-stop share of the checking seconds.",
             lambda r: r.worldstop_seconds),
            ("repro_bench_worldstop_max",
             "Longest single phase-1 section observed.",
             lambda r: r.worldstop_max),
            ("repro_bench_evaluate_seconds",
             "Phase-2 evaluation share of the checking seconds.",
             lambda r: r.evaluate_seconds),
            ("repro_bench_events",
             "Events recorded by the workload.",
             lambda r: r.events),
            ("repro_bench_checkpoints",
             "Checkpoints run.",
             lambda r: r.checkpoints),
            ("repro_bench_dropped_events",
             "Events the bounded sink discarded.",
             lambda r: r.dropped),
        ],
        rows,
        lambda r: {"scenario": r.scenario, "interval": f"{r.interval:g}"},
    )
    return registry


def rows_to_json(rows: Sequence[OverheadRow], *, backend: str) -> dict:
    """Machine-readable grid for ``--json`` (BENCH_*.json trajectories).

    ``metrics`` carries the same cells as a ``repro-metrics/1`` export so
    gate specs and ``repro metrics`` consumers read one schema.
    """
    return {
        "bench": "overhead",
        "backend": backend,
        "rows": [
            {
                **asdict(row),
                "worldstop_mean": row.worldstop_mean,
            }
            for row in rows
        ],
        "metrics": to_json_dict(_table_metrics(rows, backend=backend)),
    }


# ------------------------------------------------------------ WAL overhead


@dataclass(frozen=True)
class WalOverheadRow:
    """One recording-sink measurement: scenario x sink policy.

    ``policy`` is ``"memory"`` (the in-memory :class:`HistoryDatabase`
    baseline) or a WAL fsync policy (``always`` / ``interval`` /
    ``never``).  ``ratio_vs_memory`` is what durability costs the
    monitor-operation path — the CI perf-smoke asserts the ``never``
    policy stays under 2x.
    """

    scenario: str
    policy: str
    op_seconds: float
    events: int
    events_per_second: float
    bytes_written: int
    bytes_per_event: float
    fsyncs: int
    segments: int
    ratio_vs_memory: float


def _run_wal_once(
    scenario: str,
    backend: str,
    spec: WorkloadSpec,
    interval: float,
    policy: Optional[str],
) -> tuple[float, int, int, int, int]:
    """One workload run against one recording sink.

    Returns (monitor-op seconds, events recorded, WAL bytes written, WAL
    fsyncs, WAL segments).  ``policy=None`` records into the in-memory
    :class:`HistoryDatabase` — the baseline the WAL rows are divided by.
    The engine runs at ``interval`` in both cases so the WAL's cut-time
    flush work is part of what gets measured.
    """
    kernel = _make_kernel(backend, spec.seed)
    wal_dir: Optional[Path] = None
    history: Union[HistoryDatabase, WriteAheadLog]
    if policy is None:
        history = HistoryDatabase()
    else:
        wal_dir = Path(tempfile.mkdtemp(prefix="repro-wal-bench-"))
        history = WriteAheadLog(wal_dir, fsync=policy)
    try:
        run = build_scenario(scenario, kernel, history, spec)
        config = DetectorConfig(
            interval=interval, tmax=120.0, tio=120.0, tlimit=120.0
        )
        engine = DetectionEngine(kernel, config)
        engine.register(run.monitor)
        remaining = {"count": len(run.bodies)}

        def finishing(body):
            result = yield from body
            remaining["count"] -= 1
            if remaining["count"] == 0:
                engine.stop()
            return result

        for index, body in enumerate(run.bodies):
            kernel.spawn(finishing(body), f"{run.name}-{index}")
        kernel.spawn(engine_process(engine), "detection-engine")
        horizon = spec.operations * spec.think_time * 40 + 60
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            kernel.run(until=horizon, max_steps=20_000_000)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        kernel.raise_failures()
        ops = run.monitor.monitor.op_seconds
        events = history.total_recorded
        if isinstance(history, WriteAheadLog):
            history.flush(sync=False)
            stats = (
                history.bytes_written,
                history.fsyncs,
                history.segment_count,
            )
            history.close()
        else:
            stats = (0, 0, 0)
        return (ops, events) + stats
    finally:
        if wal_dir is not None:
            shutil.rmtree(wal_dir, ignore_errors=True)


def measure_wal_overhead(
    scenario: str,
    *,
    backend: str = "sim",
    spec: Optional[WorkloadSpec] = None,
    interval: float = 1.0,
    repeats: int = 3,
    policies: Sequence[str] = FSYNC_POLICIES,
) -> list[WalOverheadRow]:
    """Measure WAL recording cost per fsync policy against in-memory.

    Returns one row per policy plus the leading ``memory`` baseline row;
    timings are the minimum over ``repeats`` runs (noise only adds).
    """
    spec = spec or BENCH_SPEC
    rows: list[WalOverheadRow] = []
    base_ops = float("inf")
    for policy in (None, *policies):
        samples = [
            _run_wal_once(scenario, backend, spec, interval, policy)
            for __ in range(repeats)
        ]
        ops = min(sample[0] for sample in samples)
        events, bytes_written, fsyncs, segments = samples[-1][1:]
        if policy is None:
            base_ops = ops
        rows.append(
            WalOverheadRow(
                scenario=scenario,
                policy=policy or "memory",
                op_seconds=ops,
                events=events,
                events_per_second=events / ops if ops > 0 else float("nan"),
                bytes_written=bytes_written,
                bytes_per_event=(
                    bytes_written / events if events else 0.0
                ),
                fsyncs=fsyncs,
                segments=segments,
                ratio_vs_memory=(
                    ops / base_ops if base_ops > 0 else float("nan")
                ),
            )
        )
    return rows


def wal_overhead_table(
    *,
    scenarios: Sequence[str] = PAPER_SCENARIOS,
    backend: str = "sim",
    spec: Optional[WorkloadSpec] = None,
    interval: float = 1.0,
    repeats: int = 3,
) -> list[WalOverheadRow]:
    """WAL grid: every scenario x (memory + the three fsync policies)."""
    rows: list[WalOverheadRow] = []
    for scenario in scenarios:
        rows.extend(
            measure_wal_overhead(
                scenario,
                backend=backend,
                spec=spec,
                interval=interval,
                repeats=repeats,
            )
        )
    return rows


def render_wal_table(rows: Sequence[WalOverheadRow]) -> str:
    headers = [
        "scenario", "sink", "ops (s)", "events", "events/s",
        "bytes", "bytes/event", "fsyncs", "segments", "vs memory",
    ]
    table_rows = [
        [
            row.scenario,
            row.policy,
            f"{row.op_seconds:.4f}",
            row.events,
            f"{row.events_per_second:,.0f}",
            row.bytes_written,
            f"{row.bytes_per_event:.1f}",
            row.fsyncs,
            row.segments,
            f"{row.ratio_vs_memory:.3f}x",
        ]
        for row in rows
    ]
    return render_table(
        headers,
        table_rows,
        title="WAL recording overhead vs in-memory history",
    )


def _wal_metrics(
    rows: Sequence[WalOverheadRow], *, backend: str
) -> MetricsRegistry:
    """Registry view of the WAL grid, plus per-policy worst-case ratios
    (`repro_bench_ratio_vs_memory_worst`) so a gate can bound a policy
    with one selector instead of one per scenario."""
    registry = MetricsRegistry()
    registry.gauge(
        "repro_bench_backend_info",
        "Bench backend marker (value is always 1).",
        ("backend",),
    ).labels(backend=backend).set(1.0)
    _fill_gauges(
        registry,
        ("scenario", "policy"),
        [
            ("repro_bench_ratio_vs_memory",
             "Monitor-op cost of this sink vs the in-memory baseline.",
             lambda r: r.ratio_vs_memory),
            ("repro_bench_op_seconds",
             "Monitor-op seconds against this sink.",
             lambda r: r.op_seconds),
            ("repro_bench_events",
             "Events recorded through this sink.",
             lambda r: r.events),
            ("repro_bench_events_per_second",
             "Recording throughput against this sink.",
             lambda r: r.events_per_second),
            ("repro_bench_wal_bytes_written",
             "Bytes appended to the WAL (0 for the memory baseline).",
             lambda r: r.bytes_written),
            ("repro_bench_wal_bytes_per_event",
             "WAL bytes per recorded event.",
             lambda r: r.bytes_per_event),
            ("repro_bench_wal_fsyncs",
             "fsync calls issued by the WAL.",
             lambda r: r.fsyncs),
            ("repro_bench_wal_segments",
             "WAL segments written.",
             lambda r: r.segments),
        ],
        rows,
        lambda r: {"scenario": r.scenario, "policy": r.policy},
    )
    worst = registry.gauge(
        "repro_bench_ratio_vs_memory_worst",
        "Max ratio_vs_memory across scenarios, per sink policy.",
        ("policy",),
    )
    for policy in sorted({row.policy for row in rows}):
        worst.labels(policy=policy).set(
            max(
                row.ratio_vs_memory for row in rows if row.policy == policy
            )
        )
    return registry


def wal_rows_to_json(rows: Sequence[WalOverheadRow], *, backend: str) -> dict:
    """Machine-readable WAL grid, durability counters included per row."""
    return {
        "bench": "overhead-wal",
        "backend": backend,
        "rows": [
            {
                **asdict(row),
                "durability_counters": {
                    "wal_bytes_written": row.bytes_written,
                    "wal_fsyncs": row.fsyncs,
                    "wal_segments": row.segments,
                },
            }
            for row in rows
        ],
        "metrics": to_json_dict(_wal_metrics(rows, backend=backend)),
    }


# --------------------------------------------------------- fleet hot path


#: Fleet benchmark workload: short busy phase, long idle tail, so both
#: the replay hot path (busy windows) and the zero-event fast path (idle
#: windows) contribute to the measured phase-2 split.
FLEET_SPEC = WorkloadSpec(processes=4, operations=60, think_time=0.05)

#: Checkpoints per fleet run: enough busy rounds to drain the workload
#: (~3 virtual seconds at 0.25 s intervals) plus a long idle tail.
FLEET_INTERVAL = 0.25
FLEET_ROUNDS = 240


@dataclass(frozen=True)
class FleetOverheadRow:
    """One fleet-sized phase-2 measurement: incremental vs full re-walk.

    Both modes run the identical seeded workload and checkpoint schedule;
    only :attr:`DetectorConfig.incremental_checking` differs, so
    ``evaluate_seconds`` isolates what the carried checking lists save.
    The CI perf-smoke gate asserts the incremental row's
    ``evaluate_seconds`` is strictly below the full re-walk's.
    """

    mode: str  # "incremental" | "full"
    fleet: int
    events: int
    events_per_second: float
    checkpoints: int
    worldstop_seconds: float
    worldstop_p50: float
    worldstop_p99: float
    evaluate_seconds: float
    incremental_hits: int
    incremental_rebases: int
    incremental_fastpaths: int
    staged_events: int
    staged_flushes: int
    #: Phase-2 evaluation plane ("inline", "threads" or "processes").
    evaluation: str = "inline"


def _run_fleet_once(
    backend: str,
    spec: WorkloadSpec,
    fleet: int,
    *,
    incremental: bool,
    interval: float = FLEET_INTERVAL,
    rounds: int = FLEET_ROUNDS,
    evaluation: Optional[str] = None,
) -> FleetOverheadRow:
    """One fleet execution with a fixed checkpoint count.

    The engine runs exactly ``rounds`` checkpoints rather than stopping
    when the workload drains: the post-workload idle windows are the
    fast-path territory the incremental mode is built for, and a fair
    comparison must charge the full re-walk for them too.
    """
    kernel = _make_kernel(backend, spec.seed)
    config = DetectorConfig(
        interval=interval,
        tmax=120.0,
        tio=120.0,
        tlimit=120.0,
        incremental_checking=incremental,
    )
    runs = build_fleet(kernel, fleet, spec)
    cluster = None
    if evaluation is None:
        engine = DetectionEngine(kernel, config)
        for run in runs:
            engine.register(run.monitor)
            run.spawn_all(kernel)
        kernel.spawn(engine_process(engine, rounds=rounds), "detection-engine")
    else:
        # Route phase 2 through the requested evaluation plane: a
        # 1-shard cluster is a single engine plus the worker pool.
        from repro.detection.cluster import DetectionCluster

        cluster = DetectionCluster(
            kernel, config, shards=1, evaluation=evaluation
        )
        engine = cluster.shards[0].engine
        for run in runs:
            cluster.register(run.monitor)
            run.spawn_all(kernel)
        cluster.spawn_processes(rounds=rounds, supervised=False)
    horizon = rounds * interval + 60
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        kernel.run(until=horizon, max_steps=20_000_000)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    kernel.raise_failures()
    if cluster is not None:
        cluster.stop()
    ops = sum(run.monitor.monitor.op_seconds for run in runs)
    events = sum(
        entry.history.total_recorded for entry in engine.entries
    )
    return FleetOverheadRow(
        mode="incremental" if incremental else "full",
        fleet=fleet,
        events=events,
        events_per_second=events / ops if ops > 0 else float("nan"),
        checkpoints=engine.checkpoints_run,
        worldstop_seconds=engine.worldstop_seconds,
        worldstop_p50=engine.worldstop_percentile(0.5),
        worldstop_p99=engine.worldstop_percentile(0.99),
        evaluate_seconds=engine.evaluate_seconds,
        incremental_hits=engine.incremental_hits,
        incremental_rebases=engine.incremental_rebases,
        incremental_fastpaths=engine.incremental_fastpaths,
        staged_events=engine.staged_events,
        staged_flushes=engine.staged_flushes,
        evaluation=evaluation or "inline",
    )


def measure_fleet_overhead(
    fleet: int,
    *,
    backend: str = "sim",
    spec: Optional[WorkloadSpec] = None,
    repeats: int = 3,
    evaluation: Optional[str] = None,
) -> list[FleetOverheadRow]:
    """Paired fleet measurement: one incremental row, one full-re-walk row.

    Timings are the minimum over ``repeats`` runs per mode (noise only
    adds); the hot-path counters are deterministic across repeats and
    taken from the last sample.
    """
    spec = spec or FLEET_SPEC
    rows: list[FleetOverheadRow] = []
    for incremental in (True, False):
        samples = [
            _run_fleet_once(
                backend,
                spec,
                fleet,
                incremental=incremental,
                evaluation=evaluation,
            )
            for __ in range(repeats)
        ]
        best = min(samples, key=lambda row: row.evaluate_seconds)
        last = samples[-1]
        rows.append(
            replace(
                last,
                worldstop_seconds=min(
                    row.worldstop_seconds for row in samples
                ),
                worldstop_p50=min(row.worldstop_p50 for row in samples),
                worldstop_p99=min(row.worldstop_p99 for row in samples),
                evaluate_seconds=best.evaluate_seconds,
                events_per_second=max(
                    row.events_per_second for row in samples
                ),
            )
        )
    return rows


def render_fleet_table(rows: Sequence[FleetOverheadRow]) -> str:
    headers = [
        "mode", "fleet", "events", "events/s", "checkpoints",
        "world-stop (s)", "stop p50 (s)", "stop p99 (s)", "evaluate (s)",
        "hits", "rebases", "fastpaths", "staged flushes",
    ]
    table_rows = [
        [
            row.mode,
            row.fleet,
            row.events,
            f"{row.events_per_second:,.0f}",
            row.checkpoints,
            f"{row.worldstop_seconds:.4f}",
            f"{row.worldstop_p50:.6f}",
            f"{row.worldstop_p99:.6f}",
            f"{row.evaluate_seconds:.4f}",
            row.incremental_hits,
            row.incremental_rebases,
            row.incremental_fastpaths,
            row.staged_flushes,
        ]
        for row in rows
    ]
    return render_table(
        headers,
        table_rows,
        title="Hot path: incremental checking vs full re-walk",
    )


def _fleet_metrics(
    rows: Sequence[FleetOverheadRow], *, backend: str
) -> MetricsRegistry:
    """Registry view of the incremental-vs-full fleet comparison.

    The CI hot-path gate reads ``repro_bench_evaluate_seconds`` with the
    ``full`` row as its ratio baseline, and asserts the hot-path counters
    actually fired on the incremental row.
    """
    registry = MetricsRegistry()
    registry.gauge(
        "repro_bench_backend_info",
        "Bench backend marker (value is always 1).",
        ("backend",),
    ).labels(backend=backend).set(1.0)
    _fill_gauges(
        registry,
        ("mode", "evaluation"),
        [
            ("repro_bench_evaluate_seconds",
             "Phase-2 evaluation seconds over the fixed checkpoint grid.",
             lambda r: r.evaluate_seconds),
            ("repro_bench_worldstop_seconds",
             "Phase-1 world-stop seconds.",
             lambda r: r.worldstop_seconds),
            ("repro_bench_worldstop_p50",
             "Median phase-1 section.",
             lambda r: r.worldstop_p50),
            ("repro_bench_worldstop_p99",
             "p99 phase-1 section.",
             lambda r: r.worldstop_p99),
            ("repro_bench_events",
             "Events recorded by the fleet workload.",
             lambda r: r.events),
            ("repro_bench_events_per_second",
             "Events recorded per monitor-op second.",
             lambda r: r.events_per_second),
            ("repro_bench_checkpoints",
             "Checkpoints run.",
             lambda r: r.checkpoints),
            ("repro_bench_fleet_size",
             "Monitors in the fleet.",
             lambda r: r.fleet),
            ("repro_bench_incremental_hits",
             "Windows served from a carried checking list.",
             lambda r: r.incremental_hits),
            ("repro_bench_incremental_rebases",
             "Carried checking lists rebased.",
             lambda r: r.incremental_rebases),
            ("repro_bench_incremental_fastpaths",
             "Zero-event windows skipped entirely.",
             lambda r: r.incremental_fastpaths),
            ("repro_bench_staged_events",
             "Events staged through record batching.",
             lambda r: r.staged_events),
            ("repro_bench_staged_flushes",
             "Staged-batch flushes.",
             lambda r: r.staged_flushes),
        ],
        rows,
        lambda r: {"mode": r.mode, "evaluation": r.evaluation},
    )
    return registry


def fleet_rows_to_json(
    rows: Sequence[FleetOverheadRow], *, backend: str
) -> dict:
    """Machine-readable fleet comparison for ``BENCH_overhead.json``."""
    return {
        "bench": "overhead-fleet",
        "backend": backend,
        "rows": [asdict(row) for row in rows],
        "metrics": to_json_dict(_fleet_metrics(rows, backend=backend)),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("sim", "threads"),
        # The paper measured a real runtime; the thread backend includes
        # the world-stop stalls that dominate its overhead figures.
        default="threads",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--seed", type=int, default=None, help="workload RNG seed"
    )
    parser.add_argument(
        "--intervals",
        type=float,
        nargs="*",
        default=list(PAPER_INTERVALS),
    )
    parser.add_argument(
        "--engine",
        action="store_true",
        help="check through a shared DetectionEngine registration instead "
        "of a per-monitor FaultDetector",
    )
    parser.add_argument(
        "--bounded",
        type=int,
        default=None,
        metavar="CAPACITY",
        help="record through a BoundedHistory ring buffer of this capacity "
        "instead of the unbounded database (surfaces dropped events)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the grid as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--wal",
        action="store_true",
        help="measure WAL recording overhead instead of Table 1: "
        "events/sec and bytes/event for each fsync policy "
        "(always/interval/never) against the in-memory sink",
    )
    parser.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="measure the phase-2 hot path on an N-monitor fleet instead "
        "of Table 1: incremental (carried checking lists) vs the full "
        "re-walk, same seeded workload and checkpoint schedule",
    )
    parser.add_argument(
        "--evaluation",
        choices=("threads", "processes"),
        default=None,
        help="with --fleet: route phase 2 through the given evaluation "
        "plane (pooled worker threads, or one evaluator worker process "
        "per shard) instead of in-line evaluation",
    )
    parser.add_argument(
        "--scenarios",
        nargs="*",
        default=list(PAPER_SCENARIOS),
        help="monitor scenarios to measure (default: all three)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="measure detection-service ingest instead of Table 1: replay "
        "a deterministic window-frame corpus through a DetectionServer "
        "(frames/s, events/s, per-frame latency percentiles)",
    )
    args = parser.parse_args(argv)
    spec = BENCH_SPEC
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    if args.service:
        from repro.bench.service_bench import main as service_main

        service_argv = ["--repeats", str(args.repeats)]
        if args.seed is not None:
            service_argv += ["--seed", str(args.seed)]
        if args.json is not None:
            service_argv += ["--json", args.json]
        return service_main(service_argv)
    if args.fleet is not None:
        fleet_spec = FLEET_SPEC
        if args.seed is not None:
            fleet_spec = replace(fleet_spec, seed=args.seed)
        fleet_rows = measure_fleet_overhead(
            args.fleet,
            backend=args.backend,
            spec=fleet_spec,
            repeats=args.repeats,
            evaluation=args.evaluation,
        )
        print(render_fleet_table(fleet_rows))
        if args.json is not None:
            payload = json.dumps(
                {
                    "command": "overhead",
                    "seed": fleet_spec.seed,
                    "results": fleet_rows_to_json(
                        fleet_rows, backend=args.backend
                    ),
                },
                indent=2,
            )
            if args.json == "-":
                print(payload)
            else:
                with open(args.json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
                print(f"json written to {args.json}")
        return 0
    if args.wal:
        interval = args.intervals[0] if args.intervals else 1.0
        wal_rows = wal_overhead_table(
            scenarios=args.scenarios,
            backend=args.backend,
            spec=spec,
            interval=interval,
            repeats=args.repeats,
        )
        print(render_wal_table(wal_rows))
        if args.json is not None:
            payload = json.dumps(
                {
                    "command": "overhead",
                    "seed": spec.seed,
                    "results": wal_rows_to_json(
                        wal_rows, backend=args.backend
                    ),
                },
                indent=2,
            )
            if args.json == "-":
                print(payload)
            else:
                with open(args.json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
                print(f"json written to {args.json}")
        return 0
    rows = overhead_table(
        intervals=args.intervals,
        scenarios=args.scenarios,
        backend=args.backend,
        spec=spec,
        repeats=args.repeats,
        use_engine=args.engine,
        bounded=args.bounded,
    )
    print(render_overhead_table(rows))
    print()
    detail_headers = [
        "scenario", "T", "base ops (s)", "ext ops (s)",
        "world-stop (s)", "stop max (s)", "evaluate (s)",
        "ratio", "events", "checkpoints", "dropped",
    ]
    detail_rows = [
        [
            row.scenario,
            f"{row.interval:g}",
            f"{row.base_seconds:.4f}",
            f"{row.extended_seconds:.4f}",
            f"{row.worldstop_seconds:.4f}",
            f"{row.worldstop_max:.5f}",
            f"{row.evaluate_seconds:.4f}",
            f"{row.ratio:.3f}",
            row.events,
            row.checkpoints,
            row.dropped,
        ]
        for row in rows
    ]
    print(render_table(detail_headers, detail_rows, title="Details"))
    total_dropped = sum(row.dropped for row in rows)
    if total_dropped:
        print(
            f"\n{total_dropped} events dropped by the bounded sink across "
            f"the grid; lossy windows were checked in degraded mode"
        )
    if args.json is not None:
        payload = json.dumps(
            {
                "command": "overhead",
                "seed": spec.seed,
                "results": rows_to_json(rows, backend=args.backend),
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
