"""Experiment E3 — engine scaling: shared engine vs per-monitor detectors.

The paper's architecture pays one suspend-the-world ("all other running
processes are suspended") section per detector per checking interval.
This benchmark quantifies what the batched
:class:`~repro.detection.engine.DetectionEngine` buys: it drives the same
multi-monitor fleet (round-robin over the three scenario types) twice —
once with one ``detector_process`` per monitor, once with a single
``engine_process`` over all of them — at fleet sizes 1, 4 and 16, and
reports:

* ``atomic_sections`` — how many atomic (world-stop) sections checking
  entered.  Per-monitor detectors enter one per monitor per interval
  (linear in fleet size); the engine enters exactly one per interval
  (constant in fleet size) — the headline amortisation.
* ``worldstop_seconds`` vs ``evaluate_seconds`` — the two-phase split of
  the old ``checking_seconds``: phase 1 (snapshot + cut inside the atomic
  section) is the only part that stalls the workload, phase 2 (rule
  evaluation over the frozen captures) runs off the critical path.  The
  per-checkpoint world-stop max/mean makes the "O(snapshot) world-stop"
  claim auditable from the output alone.

``--processes`` switches to the evaluation-plane comparison instead:
the same seeded sim fleet is driven once per phase-2 plane (pooled
worker *threads* vs one evaluator worker *process* per shard), every
checkpoint is drained synchronously so the timed wall clock covers the
full capture→evaluate round trip, and the merged report streams are
compared byte-for-byte against an inline 1-shard baseline.  On a
multi-core box the process plane escapes the GIL: N workers burn CPU
concurrently, so evaluate-bound fleets finish the same rule evaluation
in a fraction of the thread plane's wall clock.

``--json PATH`` writes the grid machine-readably so ``BENCH_*.json``
trajectories can accumulate across runs.

Both kernels are supported; the thread backend adds the real lock
acquisition cost to every atomic section, which is where the linear
term hurts most.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict, dataclass, replace
from typing import Optional, Sequence

from repro.bench.overhead import _fill_gauges
from repro.bench.tables import render_table
from repro.detection.cluster import DetectionCluster
from repro.detection.detector import DetectorConfig, FaultDetector, detector_process
from repro.detection.engine import DetectionEngine, engine_process
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.syscalls import Delay
from repro.kernel.threads import ThreadKernel
from repro.observability.export import to_json_dict
from repro.observability.registry import MetricsRegistry
from repro.workloads.scenarios import WorkloadSpec, build_fleet

__all__ = [
    "ScalingRow",
    "PlaneRow",
    "measure_scaling",
    "measure_plane",
    "planes_table",
    "scaling_table",
    "render_scaling_table",
    "render_planes_table",
    "rows_to_json",
    "planes_to_json",
    "main",
]

#: Fleet sizes exercised by default (the acceptance grid).
DEFAULT_COUNTS: tuple[int, ...] = (1, 4, 16)

#: Short workload: scaling is about per-checkpoint cost, not trace length.
SCALING_SPEC = WorkloadSpec(processes=4, operations=40, think_time=0.05)

#: Generous bounds — the fleet is healthy; the sweeps' cost is the point.
SCALING_CONFIG = DetectorConfig(interval=0.5, tmax=120.0, tio=120.0, tlimit=120.0)


@dataclass(frozen=True)
class ScalingRow:
    """One (fleet size, mode) cell of the scaling comparison."""

    monitors: int
    mode: str  # "detectors", "engine" or "cluster"
    atomic_sections: int
    checkpoints: int
    checking_seconds: float
    #: Phase-1 wall clock: the only seconds the workload is actually stopped.
    worldstop_seconds: float
    #: Phase-2 wall clock: rule evaluation off the critical path.
    evaluate_seconds: float
    #: Longest single phase-1 section observed (per-checkpoint worst case).
    worldstop_max: float
    reports: int
    events: int
    #: Events the fleet's sinks discarded (0 for unbounded histories).
    dropped: int = 0
    #: Engine shards the fleet was partitioned across (1 unless "cluster").
    shards: int = 1
    #: Per-shard accounting dicts (cluster mode only; empty otherwise).
    per_shard: tuple = ()

    @property
    def worldstop_mean(self) -> float:
        """Mean phase-1 world-stop per atomic section entered."""
        if self.atomic_sections == 0:
            return 0.0
        return self.worldstop_seconds / self.atomic_sections


def _make_kernel(backend: str, seed: int):
    if backend == "sim":
        return SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    if backend == "threads":
        return ThreadKernel(time_scale=0.002)
    raise ValueError(f"unknown backend {backend!r}; use 'sim' or 'threads'")


def measure_scaling(
    monitors: int,
    mode: str,
    *,
    backend: str = "sim",
    spec: Optional[WorkloadSpec] = None,
    config: Optional[DetectorConfig] = None,
    shards: int = 1,
) -> ScalingRow:
    """Run one fleet under one checking topology and collect the counters."""
    if mode not in ("detectors", "engine", "cluster"):
        raise ValueError(
            f"unknown mode {mode!r}; use 'detectors', 'engine' or 'cluster'"
        )
    spec = spec or SCALING_SPEC
    config = config or SCALING_CONFIG
    kernel = _make_kernel(backend, spec.seed)
    fleet = build_fleet(kernel, monitors, spec)
    for index, run in enumerate(fleet):
        run.spawn_all(kernel, prefix=f"m{index}-")

    detectors: list[FaultDetector] = []
    engine: Optional[DetectionEngine] = None
    cluster: Optional[DetectionCluster] = None
    if mode == "detectors":
        for run in fleet:
            detector = FaultDetector(run.monitor, config)
            detectors.append(detector)
            kernel.spawn(detector_process(detector), f"detector-{run.name}")
    elif mode == "cluster":
        cluster = DetectionCluster(kernel, config, shards=shards)
        for run in fleet:
            cluster.register(run.monitor, group=run.shard_label)
        cluster.spawn_processes()
    else:
        engine = DetectionEngine(kernel, config)
        for run in fleet:
            engine.register(run.monitor)
        kernel.spawn(engine_process(engine), "detection-engine")

    horizon = spec.operations * spec.think_time * 40 + 60
    kernel.run(until=horizon, max_steps=50_000_000)
    kernel.raise_failures()
    if cluster is not None:
        # Await offloaded evaluations and close the worker pool before
        # reading the counters.
        cluster.stop()

    events = sum(
        run.monitor.monitor.history.total_recorded
        for run in fleet
        if run.monitor.monitor.history is not None
    )
    dropped = sum(
        run.monitor.monitor.history.dropped_events
        for run in fleet
        if run.monitor.monitor.history is not None
    )
    per_shard: tuple = ()
    if mode == "detectors":
        # Every FaultDetector checkpoint is its own atomic section.
        sections = sum(d.engine.atomic_sections for d in detectors)
        checkpoints = sum(d.checkpoints_run for d in detectors)
        checking = sum(d.checking_seconds for d in detectors)
        worldstop = sum(d.worldstop_seconds for d in detectors)
        evaluate = sum(d.evaluate_seconds for d in detectors)
        worldstop_max = max(
            (d.engine.worldstop_max for d in detectors), default=0.0
        )
        reports = sum(len(d.reports) for d in detectors)
    elif mode == "cluster":
        assert cluster is not None
        sections = cluster.atomic_sections
        checkpoints = cluster.checkpoints_run
        checking = cluster.checking_seconds
        worldstop = cluster.worldstop_seconds
        evaluate = cluster.evaluate_seconds
        worldstop_max = cluster.worldstop_max
        reports = len(cluster.reports)
        per_shard = tuple(cluster.shard_stats())
    else:
        assert engine is not None
        sections = engine.atomic_sections
        checkpoints = engine.checkpoints_run
        checking = engine.checking_seconds
        worldstop = engine.worldstop_seconds
        evaluate = engine.evaluate_seconds
        worldstop_max = engine.worldstop_max
        reports = len(engine.reports)
    return ScalingRow(
        monitors=monitors,
        mode=mode,
        atomic_sections=sections,
        checkpoints=checkpoints,
        checking_seconds=checking,
        worldstop_seconds=worldstop,
        evaluate_seconds=evaluate,
        worldstop_max=worldstop_max,
        reports=reports,
        events=events,
        dropped=dropped,
        shards=shards if mode == "cluster" else 1,
        per_shard=per_shard,
    )


#: Evaluate-bound plane-comparison workload: full-window Algorithm-1
#: sweeps (no incremental carry) and phase-2 order replay (no real-time
#: tap) maximise the rule-evaluation share of each checkpoint, which is
#: exactly the work the process plane parallelises.
PLANES_SPEC = WorkloadSpec(processes=8, operations=100, think_time=0.005)
PLANES_CONFIG = DetectorConfig(
    interval=2.0,
    tmax=120.0,
    tio=120.0,
    tlimit=120.0,
    realtime_orders=False,
    incremental_checking=False,
    stagger=False,
)

#: Allocator monitors run all three algorithms per window (general
#: checking, resource counters, order replay) — the heaviest
#: rule-evaluation per event of the scenario set.
PLANES_SCENARIOS: tuple[str, ...] = ("allocator",)


@dataclass(frozen=True)
class PlaneRow:
    """One phase-2 evaluation plane under the identical seeded workload."""

    plane: str  # "inline", "threads" or "processes"
    monitors: int
    workers: int
    checkpoints: int
    #: Wall clock of the synchronous checkpoint→drain rounds — the
    #: headline number: how long the full capture+evaluate round trip
    #: took under this plane.
    evaluate_wall: float
    #: Engine-side phase-2 accounting (CPU-ish; sums across shards).
    evaluate_seconds: float
    #: Per-worker CPU seconds (worker processes, or dispatch threads).
    worker_cpu: tuple
    worldstop_p50: float
    worldstop_p99: float
    reports: int
    events: int


def measure_plane(
    plane: str,
    monitors: int,
    workers: int,
    *,
    spec: Optional[WorkloadSpec] = None,
    config: Optional[DetectorConfig] = None,
) -> tuple[PlaneRow, list[str]]:
    """Run one evaluation plane; return its row and the rendered stream.

    Every checkpoint is drained before the sim advances, so the timed
    wall clock covers the complete evaluation round trip and the report
    stream is deterministic regardless of plane.
    """
    spec = spec or PLANES_SPEC
    config = config or PLANES_CONFIG
    kernel = SimKernel(RandomPolicy(seed=spec.seed), on_deadlock="stop")
    fleet = build_fleet(kernel, monitors, spec, names=PLANES_SCENARIOS)
    shards = 1 if plane == "inline" else workers
    cluster = DetectionCluster(
        kernel, config, shards=shards, evaluation=plane
    )
    for index, run in enumerate(fleet):
        cluster.register(run.monitor, label=f"{run.name}-{index}")
        run.spawn_all(kernel, prefix=f"m{index}-")

    wall = [0.0]

    def pacer():
        while True:
            yield Delay(config.interval)
            started = time.perf_counter()
            cluster.checkpoint()
            cluster.drain()
            wall[0] += time.perf_counter() - started

    kernel.spawn(pacer(), "plane-pacer")
    horizon = spec.operations * spec.think_time * 40 + 60
    kernel.run(until=horizon, max_steps=50_000_000)
    kernel.raise_failures()
    pool = cluster._pool
    cluster.stop()
    if pool is None:
        worker_cpu: tuple = ()
    elif pool.plane == "processes":
        worker_cpu = tuple(pool.per_worker_cpu)
    else:
        worker_cpu = tuple(pool.dispatch_cpu)
    events = sum(
        run.monitor.monitor.history.total_recorded
        for run in fleet
        if run.monitor.monitor.history is not None
    )
    row = PlaneRow(
        plane=plane,
        monitors=monitors,
        workers=shards,
        checkpoints=cluster.checkpoints_run,
        evaluate_wall=wall[0],
        evaluate_seconds=cluster.evaluate_seconds,
        worker_cpu=worker_cpu,
        worldstop_p50=cluster.worldstop_percentile(0.5),
        worldstop_p99=cluster.worldstop_percentile(0.99),
        reports=len(cluster.reports),
        events=events,
    )
    return row, [report.render() for report in cluster.reports]


def planes_table(
    *,
    monitors: int = 8,
    workers: int = 4,
    spec: Optional[WorkloadSpec] = None,
    config: Optional[DetectorConfig] = None,
    repeats: int = 2,
) -> tuple[list[PlaneRow], dict]:
    """Threads vs processes under the identical workload, plus an inline
    1-shard baseline for the byte-identical-stream check.

    Each plane runs ``repeats`` times and keeps its best wall clock
    (pool start-up and OS noise shouldn't decide the comparison); the
    report stream must not vary across repeats of the same plane.
    """
    rows: list[PlaneRow] = []
    streams: dict[str, list[str]] = {}
    for plane in ("inline", "threads", "processes"):
        best: Optional[PlaneRow] = None
        for repeat in range(1 if plane == "inline" else repeats):
            row, stream = measure_plane(
                plane, monitors, workers, spec=spec, config=config
            )
            if plane in streams and streams[plane] != stream:
                raise AssertionError(
                    f"{plane} plane produced a different report stream on "
                    f"repeat {repeat}"
                )
            streams[plane] = stream
            if best is None or row.evaluate_wall < best.evaluate_wall:
                best = row
        assert best is not None
        rows.append(best)
    by_plane = {row.plane: row for row in rows}
    threads_wall = by_plane["threads"].evaluate_wall
    processes_wall = by_plane["processes"].evaluate_wall
    comparison = {
        "threads_wall": threads_wall,
        "processes_wall": processes_wall,
        "speedup": (threads_wall / processes_wall) if processes_wall else 0.0,
        "streams_identical": (
            streams["inline"] == streams["threads"] == streams["processes"]
        ),
        "reports": len(streams["inline"]),
    }
    return rows, comparison


def render_planes_table(rows: Sequence[PlaneRow]) -> str:
    headers = [
        "plane", "monitors", "workers", "checkpoints",
        "evaluate wall (s)", "evaluate (s)", "worker CPU (s)",
        "stop p50 (us)", "stop p99 (us)", "reports", "events",
    ]
    table_rows = [
        [
            row.plane,
            str(row.monitors),
            str(row.workers),
            str(row.checkpoints),
            f"{row.evaluate_wall:.4f}",
            f"{row.evaluate_seconds:.4f}",
            " ".join(f"{cpu:.3f}" for cpu in row.worker_cpu) or "-",
            f"{row.worldstop_p50 * 1e6:.1f}",
            f"{row.worldstop_p99 * 1e6:.1f}",
            str(row.reports),
            str(row.events),
        ]
        for row in rows
    ]
    return render_table(
        headers,
        table_rows,
        title="Phase-2 evaluation planes: in-thread vs worker processes",
    )


def _planes_metrics(
    rows: Sequence[PlaneRow], comparison: dict, *, backend: str
) -> MetricsRegistry:
    """Registry view of the evaluation-plane comparison.

    Besides per-plane gauges, this exports the comparison verdicts the CI
    scaling gate reads (`repro_bench_streams_identical`, the wall clocks)
    and a `repro_bench_cpu_count` gauge so the processes-beat-threads
    gate can be conditioned on actually having cores to scale onto.
    """
    registry = MetricsRegistry()
    registry.gauge(
        "repro_bench_backend_info",
        "Bench backend marker (value is always 1).",
        ("backend",),
    ).labels(backend=backend).set(1.0)
    _fill_gauges(
        registry,
        ("plane",),
        [
            ("repro_bench_evaluate_wall",
             "Wall clock of the synchronous checkpoint+drain rounds.",
             lambda r: r.evaluate_wall),
            ("repro_bench_evaluate_seconds",
             "Engine-side phase-2 accounting (sums across shards).",
             lambda r: r.evaluate_seconds),
            ("repro_bench_worldstop_p50",
             "Median phase-1 section.",
             lambda r: r.worldstop_p50),
            ("repro_bench_worldstop_p99",
             "p99 phase-1 section.",
             lambda r: r.worldstop_p99),
            ("repro_bench_checkpoints",
             "Checkpoints run.",
             lambda r: r.checkpoints),
            ("repro_bench_reports",
             "Fault reports produced.",
             lambda r: r.reports),
            ("repro_bench_events",
             "Events recorded.",
             lambda r: r.events),
        ],
        rows,
        lambda r: {"plane": r.plane},
    )
    registry.gauge(
        "repro_bench_streams_identical",
        "1 when every plane produced a byte-identical report stream.",
    ).labels().set(1.0 if comparison["streams_identical"] else 0.0)
    registry.gauge(
        "repro_bench_plane_speedup",
        "threads_wall / processes_wall.",
    ).labels().set(comparison["speedup"])
    registry.gauge(
        "repro_bench_cpu_count",
        "os.cpu_count() of the bench host (gate precondition input).",
    ).labels().set(float(os.cpu_count() or 1))
    return registry


def planes_to_json(
    rows: Sequence[PlaneRow], comparison: dict, *, backend: str = "sim"
) -> dict:
    return {
        "bench": "engine_scaling_planes",
        "backend": backend,
        "rows": [asdict(row) for row in rows],
        "comparison": comparison,
        "metrics": to_json_dict(
            _planes_metrics(rows, comparison, backend=backend)
        ),
    }


def scaling_table(
    *,
    counts: Sequence[int] = DEFAULT_COUNTS,
    backend: str = "sim",
    spec: Optional[WorkloadSpec] = None,
    config: Optional[DetectorConfig] = None,
    shards: Optional[Sequence[int]] = None,
) -> list[ScalingRow]:
    """The full grid: every fleet size under both checking topologies.

    With ``shards`` (a sequence of shard counts), the grid is the sharded
    comparison instead: one ``cluster`` row per (fleet size, shard count),
    so staggered N-shard world-stops can be read against the 1-shard
    baseline directly.
    """
    rows: list[ScalingRow] = []
    for count in counts:
        if shards:
            for shard_count in shards:
                rows.append(
                    measure_scaling(
                        count,
                        "cluster",
                        backend=backend,
                        spec=spec,
                        config=config,
                        shards=shard_count,
                    )
                )
        else:
            for mode in ("detectors", "engine"):
                rows.append(
                    measure_scaling(
                        count, mode, backend=backend, spec=spec, config=config
                    )
                )
    return rows


def render_scaling_table(rows: Sequence[ScalingRow]) -> str:
    headers = [
        "monitors", "mode", "shards", "atomic sections", "checkpoints",
        "world-stop (s)", "stop max (s)", "evaluate (s)",
        "reports", "events", "dropped",
    ]
    table_rows = [
        [
            str(row.monitors),
            row.mode,
            str(row.shards),
            str(row.atomic_sections),
            str(row.checkpoints),
            f"{row.worldstop_seconds:.4f}",
            f"{row.worldstop_max:.5f}",
            f"{row.evaluate_seconds:.4f}",
            str(row.reports),
            str(row.events),
            str(row.dropped),
        ]
        for row in rows
    ]
    return render_table(
        headers,
        table_rows,
        title="Engine scaling: per-monitor detectors vs shared engine",
    )


def _scaling_metrics(
    rows: Sequence[ScalingRow], *, backend: str
) -> MetricsRegistry:
    """Registry view of the scaling grid (one child per fleet cell)."""
    registry = MetricsRegistry()
    registry.gauge(
        "repro_bench_backend_info",
        "Bench backend marker (value is always 1).",
        ("backend",),
    ).labels(backend=backend).set(1.0)
    _fill_gauges(
        registry,
        ("monitors", "mode", "shards"),
        [
            ("repro_bench_atomic_sections",
             "World-stop sections entered by checking.",
             lambda r: r.atomic_sections),
            ("repro_bench_checkpoints",
             "Checkpoints run.",
             lambda r: r.checkpoints),
            ("repro_bench_checking_seconds",
             "Total checking seconds.",
             lambda r: r.checking_seconds),
            ("repro_bench_worldstop_seconds",
             "Phase-1 world-stop seconds.",
             lambda r: r.worldstop_seconds),
            ("repro_bench_worldstop_max",
             "Longest single phase-1 section.",
             lambda r: r.worldstop_max),
            ("repro_bench_evaluate_seconds",
             "Phase-2 evaluation seconds.",
             lambda r: r.evaluate_seconds),
            ("repro_bench_reports",
             "Fault reports produced.",
             lambda r: r.reports),
            ("repro_bench_events",
             "Events recorded.",
             lambda r: r.events),
            ("repro_bench_dropped_events",
             "Events the fleet's sinks discarded.",
             lambda r: r.dropped),
        ],
        rows,
        lambda r: {
            "monitors": r.monitors,
            "mode": r.mode,
            "shards": r.shards,
        },
    )
    return registry


def rows_to_json(rows: Sequence[ScalingRow], *, backend: str) -> dict:
    """Machine-readable grid for ``--json`` (BENCH_*.json trajectories)."""
    return {
        "bench": "engine_scaling",
        "backend": backend,
        "rows": [
            {
                **asdict(row),
                "worldstop_mean": row.worldstop_mean,
            }
            for row in rows
        ],
        "metrics": to_json_dict(_scaling_metrics(rows, backend=backend)),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("sim", "threads"), default="sim")
    parser.add_argument(
        "--counts", type=int, nargs="*", default=list(DEFAULT_COUNTS)
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="*",
        default=None,
        metavar="N",
        help="compare sharded clusters instead: one cluster row per "
        "(fleet size, shard count), e.g. --shards 1 4",
    )
    parser.add_argument(
        "--processes",
        action="store_true",
        help="compare phase-2 evaluation planes instead: pooled worker "
        "threads vs one evaluator worker process per shard, same seeded "
        "sim workload, byte-identical-stream check included",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="shard/worker count for the plane comparison (default 4)",
    )
    parser.add_argument(
        "--monitors",
        type=int,
        default=8,
        metavar="N",
        help="fleet size for the plane comparison (default 8)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        metavar="K",
        help="runs per plane; the best wall clock is kept (default 2)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="workload RNG seed"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workload (CI smoke mode)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the grid as JSON to PATH ('-' for stdout)",
    )
    args = parser.parse_args(argv)
    if args.processes:
        spec = (
            WorkloadSpec(processes=3, operations=20, think_time=0.02)
            if args.quick
            else PLANES_SPEC
        )
        if args.seed is not None:
            spec = replace(spec, seed=args.seed)
        plane_rows, comparison = planes_table(
            monitors=args.monitors,
            workers=args.workers,
            spec=spec,
            repeats=args.repeats,
        )
        print(render_planes_table(plane_rows))
        print(
            f"evaluate wall: threads {comparison['threads_wall']:.4f}s vs "
            f"processes {comparison['processes_wall']:.4f}s "
            f"(speedup {comparison['speedup']:.2f}x with "
            f"{args.workers} workers)"
        )
        print(
            "report streams byte-identical across inline/threads/processes: "
            f"{comparison['streams_identical']} "
            f"({comparison['reports']} reports)"
        )
        if args.json is not None:
            envelope = {
                "command": "scaling",
                "seed": spec.seed,
                "results": planes_to_json(plane_rows, comparison),
            }
            payload = json.dumps(envelope, indent=2)
            if args.json == "-":
                print(payload)
            else:
                with open(args.json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
                print(f"json written to {args.json}")
        return 0
    spec = (
        WorkloadSpec(processes=2, operations=10, think_time=0.05)
        if args.quick
        else SCALING_SPEC
    )
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    rows = scaling_table(
        counts=args.counts, backend=args.backend, spec=spec, shards=args.shards
    )
    print(render_scaling_table(rows))
    if args.shards:
        # Make the stagger claim auditable: per-shard detail plus the
        # N-shard vs 1-shard worst-case world-stop comparison.
        for row in rows:
            for stat in row.per_shard:
                print(
                    f"N={row.monitors} shards={row.shards} "
                    f"shard {stat['shard']}: {stat['monitors']} monitors, "
                    f"offset {stat['offset']:g}, "
                    f"{stat['checkpoints']} checkpoints, "
                    f"stop max {stat['worldstop_max'] * 1e6:.1f}us, "
                    f"evaluate {stat['evaluate_seconds']:.4f}s"
                )
        baselines = {
            row.monitors: row for row in rows if row.shards == 1
        }
        for row in rows:
            base = baselines.get(row.monitors)
            if row.shards == 1 or base is None:
                continue
            verdict = "<" if row.worldstop_max < base.worldstop_max else ">="
            print(
                f"N={row.monitors}: max world-stop with {row.shards} shards "
                f"{row.worldstop_max * 1e6:.1f}us {verdict} 1-shard baseline "
                f"{base.worldstop_max * 1e6:.1f}us"
            )
    else:
        # Make the amortisation claim auditable from the output alone.
        by_mode: dict[str, dict[int, ScalingRow]] = {
            "detectors": {},
            "engine": {},
        }
        for row in rows:
            by_mode[row.mode][row.monitors] = row
        for count in sorted(by_mode["engine"]):
            det = by_mode["detectors"].get(count)
            eng = by_mode["engine"][count]
            if det is None or eng.checkpoints == 0:
                continue
            print(
                f"N={count}: engine ran "
                f"{eng.atomic_sections / eng.checkpoints:.1f} "
                f"atomic section(s) per interval vs {det.atomic_sections} "
                "total for per-monitor detectors"
            )
            print(
                f"N={count}: engine world-stop/checkpoint "
                f"mean {eng.worldstop_mean * 1e6:.1f}us max "
                f"{eng.worldstop_max * 1e6:.1f}us; "
                f"{eng.evaluate_seconds:.4f}s of rule evaluation ran off the "
                "critical path"
            )
    total_dropped = sum(row.dropped for row in rows)
    total_events = sum(row.events for row in rows)
    print(
        f"history pressure: {total_dropped} of {total_events} recorded "
        f"events dropped by the fleets' sinks"
        + ("" if total_dropped == 0 else " (windows checked in degraded mode)")
    )
    if args.json is not None:
        envelope = {
            "command": "scaling",
            "seed": spec.seed,
            "results": rows_to_json(rows, backend=args.backend),
        }
        payload = json.dumps(envelope, indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
