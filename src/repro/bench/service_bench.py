"""Detection-service ingest benchmark (``repro overhead --service``).

Measures the daemon-side cost of remote checking: how fast a
:class:`~repro.service.server.DetectionServer` can decode, validate,
evaluate and journal window frames.

The corpus is built deterministically: a sim-kernel workload records
through a :class:`~repro.service.client.DetectionClient` whose connector
never succeeds, so every captured window stays in the replay buffer —
then the buffered frames are replayed byte-for-byte into a fresh server,
one ``feed`` + ``poll`` (one supervised evaluation round) per frame,
timed with ``perf_counter``.  That makes the measured path exactly the
live ingestion path — framing, protocol validation, shadow-monitor
evaluation, journal admit — with zero workload noise in the timings.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Iterator, Optional, Sequence

from repro._tables import render_table
from repro.apps.bounded_buffer import BoundedBuffer
from repro.bench.overhead import _fill_gauges
from repro.observability.export import to_json_dict
from repro.observability.registry import MetricsRegistry
from repro.apps.resource_allocator import SingleResourceAllocator
from repro.detection.config import DetectorConfig
from repro.kernel.policies import RandomPolicy
from repro.kernel.sim import SimKernel
from repro.kernel.syscalls import Delay, Syscall
from repro.service.client import DetectionClient, client_process
from repro.service.framing import encode_frame
from repro.service.protocol import hello_frame
from repro.service.server import DetectionServer

__all__ = [
    "ServiceIngestRow",
    "build_window_corpus",
    "measure_service_ingest",
    "render_service_table",
    "service_rows_to_json",
    "main",
]


@dataclass(frozen=True)
class ServiceIngestRow:
    """One measured replay of the corpus through a fresh server."""

    frames: int
    events: int
    bytes_fed: int
    reports: int
    elapsed_seconds: float
    frames_per_second: float
    events_per_second: float
    frame_p50_ms: float
    frame_p99_ms: float


def build_window_corpus(
    *, seed: int = 0, rounds: int = 30, operations: int = 120
) -> tuple[list[bytes], dict, int]:
    """Deterministic window frames + the hello that introduces them.

    Returns ``(frames, hello, events)`` where ``frames`` are encoded
    window frames in ship order and ``hello`` is the handshake dict for
    the session that produced them.
    """
    kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
    client = DetectionClient(
        kernel,
        lambda: None,  # never connects: all windows stay buffered
        name="bench",
        interval=1.0,
        replay_limit=1_000_000,
        seed=seed,
    )
    buffer = BoundedBuffer(kernel, capacity=3)
    allocator = SingleResourceAllocator(kernel, name="allocator")
    client.attach(buffer, label="buffer", capacity=100_000)
    client.attach(allocator, label="allocator", capacity=100_000)

    def producer() -> Iterator[Syscall]:
        for item in range(operations):
            yield Delay(0.011)
            yield from buffer.send(item)

    def consumer() -> Iterator[Syscall]:
        for __ in range(operations):
            yield Delay(0.012)
            yield from buffer.receive()

    def user() -> Iterator[Syscall]:
        for __ in range(operations // 2):
            yield Delay(0.021)
            yield from allocator.request()
            yield Delay(0.003)
            yield from allocator.release()

    kernel.spawn(producer(), "producer")
    kernel.spawn(consumer(), "consumer")
    kernel.spawn(user(), "user")
    kernel.spawn(
        client_process(client, rounds=rounds, drain_rounds=0), "client"
    )
    kernel.run(until=rounds * 2.0 + 30.0, max_steps=20_000_000)
    kernel.raise_failures()
    hello = hello_frame(
        client.name,
        client.token,
        [stream.spec() for stream in client.streams.values()],
        {label: -1 for label in client.streams},
    )
    frames: list[bytes] = []
    events = 0
    # Interleave streams in capture order (seq-major) — the ship order a
    # live client would use.
    per_stream = [list(s.pending) for s in client.streams.values()]
    for index in range(max(len(p) for p in per_stream)):
        for pending in per_stream:
            if index < len(pending):
                frame = pending[index]
                events += len(frame["segment"]["events"])
                frames.append(encode_frame(frame))
    return frames, hello, events


def measure_service_ingest(
    *,
    seed: int = 0,
    rounds: int = 30,
    operations: int = 120,
    repeats: int = 3,
) -> list[ServiceIngestRow]:
    """Replay one corpus through ``repeats`` fresh servers; a row each."""
    frames, hello, events = build_window_corpus(
        seed=seed, rounds=rounds, operations=operations
    )
    hello_bytes = encode_frame(hello)
    rows: list[ServiceIngestRow] = []
    for __ in range(repeats):
        kernel = SimKernel(RandomPolicy(seed=seed), on_deadlock="stop")
        server = DetectionServer(
            kernel,
            config=DetectorConfig(
                interval=1.0, tmax=120.0, tio=120.0, tlimit=120.0
            ),
        )
        server.connect(1)
        server.feed(1, hello_bytes)
        server.poll()
        latencies: list[float] = []
        started = perf_counter()
        for payload in frames:
            frame_start = perf_counter()
            server.feed(1, payload)
            server.poll()
            latencies.append(perf_counter() - frame_start)
        elapsed = perf_counter() - started
        assert server.windows_accepted == len(frames), (
            f"ingest rejected frames: {server.windows_accepted} of "
            f"{len(frames)} accepted"
        )
        ordered = sorted(latencies)
        rows.append(
            ServiceIngestRow(
                frames=len(frames),
                events=events,
                bytes_fed=sum(len(payload) for payload in frames),
                reports=len(server.delivered),
                elapsed_seconds=elapsed,
                frames_per_second=(
                    len(frames) / elapsed if elapsed > 0 else float("nan")
                ),
                events_per_second=(
                    events / elapsed if elapsed > 0 else float("nan")
                ),
                frame_p50_ms=1e3 * ordered[len(ordered) // 2],
                frame_p99_ms=1e3
                * ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))],
            )
        )
        server.close()
    return rows


def render_service_table(rows: Sequence[ServiceIngestRow]) -> str:
    headers = [
        "frames", "events", "KiB", "reports", "elapsed (s)",
        "frames/s", "events/s", "p50 (ms)", "p99 (ms)",
    ]
    table_rows = [
        [
            row.frames,
            row.events,
            f"{row.bytes_fed / 1024:.0f}",
            row.reports,
            f"{row.elapsed_seconds:.4f}",
            f"{row.frames_per_second:,.0f}",
            f"{row.events_per_second:,.0f}",
            f"{row.frame_p50_ms:.3f}",
            f"{row.frame_p99_ms:.3f}",
        ]
        for row in rows
    ]
    return render_table(
        headers, table_rows, title="Detection-service ingest (one run per row)"
    )


def _service_metrics(rows: Sequence[ServiceIngestRow]) -> MetricsRegistry:
    """Registry view of the ingest rows (one child per repeat), plus the
    best-repeat throughput gauges gates read with one selector."""
    registry = MetricsRegistry()
    indices = {id(row): index for index, row in enumerate(rows)}
    _fill_gauges(
        registry,
        ("repeat",),
        [
            ("repro_bench_frames",
             "Frames replayed into the server.",
             lambda r: r.frames),
            ("repro_bench_events",
             "Events carried by the replayed frames.",
             lambda r: r.events),
            ("repro_bench_bytes_fed",
             "Encoded frame bytes fed.",
             lambda r: r.bytes_fed),
            ("repro_bench_reports",
             "Reports the server delivered.",
             lambda r: r.reports),
            ("repro_bench_elapsed_seconds",
             "Wall clock of the replay.",
             lambda r: r.elapsed_seconds),
            ("repro_bench_frames_per_second",
             "Ingest throughput in frames.",
             lambda r: r.frames_per_second),
            ("repro_bench_events_per_second",
             "Ingest throughput in events.",
             lambda r: r.events_per_second),
            ("repro_bench_frame_p50_ms",
             "Median per-frame feed+poll latency.",
             lambda r: r.frame_p50_ms),
            ("repro_bench_frame_p99_ms",
             "p99 per-frame feed+poll latency.",
             lambda r: r.frame_p99_ms),
        ],
        list(rows),
        lambda r: {"repeat": indices[id(r)]},
    )
    best = max(rows, key=lambda row: row.events_per_second)
    registry.gauge(
        "repro_bench_best_events_per_second",
        "Best ingest throughput (events) across repeats.",
    ).labels().set(best.events_per_second)
    registry.gauge(
        "repro_bench_best_frames_per_second",
        "Best ingest throughput (frames) across repeats.",
    ).labels().set(best.frames_per_second)
    return registry


def service_rows_to_json(rows: Sequence[ServiceIngestRow]) -> dict:
    """Machine-readable ingest figures for ``BENCH_service.json``."""
    best = max(rows, key=lambda row: row.events_per_second)
    return {
        "bench": "service-ingest",
        "rows": [asdict(row) for row in rows],
        "best_events_per_second": best.events_per_second,
        "best_frames_per_second": best.frames_per_second,
        "metrics": to_json_dict(_service_metrics(rows)),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--operations", type=int, default=120)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", metavar="PATH", default=None)
    args = parser.parse_args(argv)
    rows = measure_service_ingest(
        seed=args.seed,
        rounds=args.rounds,
        operations=args.operations,
        repeats=args.repeats,
    )
    print(render_service_table(rows))
    if args.json is not None:
        payload = json.dumps(
            {
                "command": "overhead",
                "seed": args.seed,
                "results": service_rows_to_json(rows),
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
