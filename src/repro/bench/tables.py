"""Aligned-text table rendering for benchmark output.

Thin re-export of :mod:`repro._tables` so benchmark code keeps its
historical import path while non-bench modules (metrics, statistics) can
use the renderer without importing the benchmark package.
"""

from repro._tables import render_table

__all__ = ["render_table"]
