"""The event-sink protocol: the seam between recording and checking.

Figure 1 of the paper separates the *data-gathering routines* (invoked by
the monitor primitives in real time) from the *checking routines* (invoked
periodically).  The seed wired the two together through one concrete
class; this module names the contract itself so the recording side can be
swapped without touching the monitor core or the detection algorithms:

* :class:`EventSink` — the abstract recording interface.  A sink accepts
  scheduling events (``record``), issues monitor-local sequence numbers
  (``next_seq``), fans events out to real-time taps (``subscribe`` /
  ``unsubscribe``) and closes checkpoint windows (``cut``), returning a
  :class:`Segment` for the checker.

``record`` runs inside the monitor's atomic transition — it is the one
sink call the workload pays for on every operation.  A sink constructed
with ``staging > 1`` therefore defers storage: ``record`` appends to a
plain local list and the batch is handed to the storage hooks in one
``_flush_batch`` call once the list reaches ``staging`` events, at the
next checkpoint ``cut``, or whenever the stored window is inspected
(``pending_events`` and friends call :meth:`EventSink.flush_staged`
first, so staging is invisible to every reader).  Real-time taps are
*not* deferred: listeners fire synchronously inside ``record`` exactly
as before, staged or not.
* :class:`Segment` — one checkpoint window: previous state, event
  sequence, current state, plus the number of events the sink had to drop
  inside the window (0 for unbounded sinks).

Concrete sinks: :class:`~repro.history.database.HistoryDatabase` (the
paper's unbounded open segment with checkpoint pruning) and
:class:`~repro.history.bounded.BoundedHistory` (a fixed-capacity ring
buffer for long-running workloads).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import CheckpointError
from repro.history.events import SchedulingEvent
from repro.history.states import SchedulingState

__all__ = ["EventListener", "EventSink", "Segment", "merge_event_streams"]

#: A real-time event tap: called synchronously inside ``record``.
EventListener = Callable[[SchedulingEvent], None]


@dataclass(frozen=True)
class Segment:
    """Everything the checker needs for one checking interval.

    ``previous`` is the state at the last checking time (``s_p`` in the
    paper), ``events`` the scheduling event sequence ``L = l1 ... ln``
    generated since then, and ``current`` the state at the current checking
    time (``s_t``).  ``dropped`` counts events the sink discarded inside
    the window (always 0 for :class:`~repro.history.database.HistoryDatabase`;
    nonzero when a :class:`~repro.history.bounded.BoundedHistory` saturated).
    """

    previous: SchedulingState
    events: tuple[SchedulingEvent, ...]
    current: SchedulingState
    dropped: int = 0

    @property
    def duration(self) -> float:
        return self.current.time - self.previous.time

    @property
    def complete(self) -> bool:
        """True when no event inside this window was dropped."""
        return self.dropped == 0

    def __len__(self) -> int:
        return len(self.events)


class EventSink(abc.ABC):
    """Abstract recording interface between gathering and checking.

    The base class owns everything every sink needs — sequence numbering,
    the listener registry, checkpoint-state bookkeeping, total-recorded
    accounting and the staging buffer — and delegates the actual event
    storage to three hooks: ``_append`` (store one event), ``_drain``
    (hand over and clear the open window) and ``_take_dropped`` (report
    and reset the window's drop count, 0 by default).  Sinks that can
    store a whole batch cheaper than event-by-event (the write-ahead log)
    additionally override ``_flush_batch``.

    Parameters
    ----------
    staging:
        Events ``record`` may hold in the staging list before the batch
        is flushed to storage.  ``1`` (the default) stores every event
        immediately — the seed's behaviour, and what durability-sensitive
        sinks need.
    """

    def __init__(self, *, staging: int = 1) -> None:
        if staging < 1:
            raise ValueError(f"staging must be >= 1, got {staging}")
        self._seq = 0
        self._last_state: Optional[SchedulingState] = None
        self._listeners: list[EventListener] = []
        self._total_recorded = 0
        self._staging_limit = staging
        self._staged: list[SchedulingEvent] = []
        #: Events that went through a staged-batch flush (cumulative).
        self.staged_events = 0
        #: Batch flushes that moved at least one staged event.
        self.staged_flushes = 0

    # ---------------------------------------------------------------- tapping

    def subscribe(self, listener: EventListener) -> None:
        """Register a real-time event tap.

        The detector uses this for the paper's real-time checking of
        calling orders on allocator-type monitors: every recorded event is
        pushed to the listener synchronously, inside the recording call.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: EventListener) -> None:
        """Detach a previously registered tap (no-op when absent).

        Detectors call this from ``stop()`` so a retired checker does not
        keep receiving (and paying for) every future event.
        """
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    @property
    def listener_count(self) -> int:
        """Number of currently attached real-time taps."""
        return len(self._listeners)

    # -------------------------------------------------------------- recording

    def next_seq(self) -> int:
        """Issue the next event sequence number (monitor-local total order)."""
        seq = self._seq
        self._seq += 1
        return seq

    def record(self, event: SchedulingEvent) -> None:
        """Append one scheduling event (called by data-gathering routines).

        With ``staging > 1`` the event lands in a cheap local list and
        storage is deferred to the next batch flush; real-time listeners
        are invoked synchronously either way.
        """
        if self._staging_limit > 1:
            self._staged.append(event)
            self._total_recorded += 1
            if len(self._staged) >= self._staging_limit:
                self.flush_staged()
        else:
            self._append(event)
            self._total_recorded += 1
        for listener in self._listeners:
            listener(event)

    def flush_staged(self) -> int:
        """Hand every staged event to storage; returns the batch size.

        Called automatically by ``cut`` and by every inspection property,
        so readers never observe a partially staged window.  Cheap no-op
        when nothing is staged.
        """
        staged = self._staged
        if not staged:
            return 0
        batch = tuple(staged)
        staged.clear()
        self._flush_batch(batch)
        self.staged_events += len(batch)
        self.staged_flushes += 1
        return len(batch)

    def open(self, initial_state: SchedulingState) -> None:
        """Install the state snapshot that starts the first segment."""
        if self._last_state is not None:
            raise CheckpointError("event sink already opened")
        self._last_state = initial_state
        self._on_open(initial_state)

    @property
    def opened(self) -> bool:
        return self._last_state is not None

    # ------------------------------------------------------------ checkpoints

    def cut(self, current_state: SchedulingState) -> Segment:
        """Close the open segment at ``current_state`` and prune its events.

        Returns the :class:`Segment` for the checker.  The events are
        dropped from the live log (the paper's pruning); the new state
        becomes the base of the next segment.
        """
        if self._last_state is None:
            raise CheckpointError("cut() before open(): no base state installed")
        if current_state.time < self._last_state.time:
            raise CheckpointError(
                f"checkpoint at t={current_state.time:g} precedes the last "
                f"checkpoint at t={self._last_state.time:g}"
            )
        self.flush_staged()
        segment = Segment(
            previous=self._last_state,
            events=self._drain(),
            current=current_state,
            dropped=self._take_dropped(),
        )
        self._last_state = current_state
        self._on_cut(current_state)
        return segment

    # ---------------------------------------------------------- storage hooks

    @abc.abstractmethod
    def _append(self, event: SchedulingEvent) -> None:
        """Store one recorded event in the open window."""

    def _flush_batch(self, batch: tuple[SchedulingEvent, ...]) -> None:
        """Store one staged batch.  Defaults to ``_append`` per event, so
        subclass accounting (capacity eviction, peaks) is exact; sinks
        with a cheaper bulk path (the WAL's fused serializer) override."""
        append = self._append
        for event in batch:
            append(event)

    @abc.abstractmethod
    def _drain(self) -> tuple[SchedulingEvent, ...]:
        """Return the open window's events and clear it."""

    def _take_dropped(self) -> int:
        """Report and reset the open window's dropped-event count."""
        return 0

    def _on_open(self, state: SchedulingState) -> None:
        """Subclass hook invoked after ``open`` installs the base state."""

    def _on_cut(self, state: SchedulingState) -> None:
        """Subclass hook invoked after ``cut`` advances the base state."""

    # ------------------------------------------------------------- inspection

    @property
    @abc.abstractmethod
    def pending_events(self) -> tuple[SchedulingEvent, ...]:
        """Events recorded since the last checkpoint (not yet consumed)."""

    @property
    def live_events(self) -> int:
        """Events currently held in memory in the open segment."""
        return len(self.pending_events)

    @property
    def last_state(self) -> Optional[SchedulingState]:
        return self._last_state

    @property
    def dropped_events(self) -> int:
        """Total events this sink ever discarded (0 for unbounded sinks)."""
        return 0

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (survives pruning; ablation metric)."""
        return self._total_recorded


def merge_event_streams(
    streams: "Sequence[Sequence[SchedulingEvent]]",
) -> tuple[SchedulingEvent, ...]:
    """Fan several sinks' event streams into one deterministic timeline.

    A sharded detection cluster records into one sink per monitor; audits
    and debugging want the fleet's history as a single sequence.  Events
    are ordered by recording time, then per-sink sequence number, then
    stream position (ties broken by the order the streams were passed in),
    so the merge is total and independent of dict/iteration order.
    """
    keyed = [
        (event.time, event.seq, index, position, event)
        for index, stream in enumerate(streams)
        for position, event in enumerate(stream)
    ]
    keyed.sort(key=lambda item: item[:4])
    return tuple(item[4] for item in keyed)
