"""Write-ahead logging for the history information database.

The paper's Section 3.1 history database is the audit trail every FD-Rule
is evaluated against — and in the in-memory sinks it dies with the
process.  :class:`WriteAheadLog` is an :class:`~repro.history.sink.EventSink`
that keeps the usual in-memory open window *and* appends every recorded
event to an on-disk JSONL segment (one :func:`~repro.history.serialize
.event_to_dict` object per line) before the recording call returns, so a
restarted detector can rebuild the window it lost
(see :mod:`repro.detection.durability`).

Durability model
----------------
The crash model is **process death**, not power loss: segment files are
opened line-buffered, so every complete line is in the OS page cache the
moment ``record`` returns and survives the process dying at any later
instant.  ``os.fsync`` hardening against machine crashes is the ``fsync``
policy:

* ``"always"`` — fsync after every appended event (safest, slowest),
* ``"interval"`` — fsync every ``fsync_every`` appends and at every
  checkpoint cut (bounded loss window, the default),
* ``"never"`` — never fsync and block-buffer writes (fastest; a crash
  may lose the buffered tail, which replay's torn-tail handling absorbs).

Segments rotate once the active file passes ``segment_bytes``; replay
(:meth:`iter_durable_events`) walks all segments in order.  A torn final
line — the signature of dying mid-append — is tolerated: it is physically
truncated away when the log is reopened and silently skipped during
replay.  A torn line anywhere *else* is corruption and raises
:class:`~repro.errors.HistoryError`.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import IO, Iterator, Optional, Union

from repro.errors import HistoryError
from repro.history.events import SchedulingEvent
from repro.history.serialize import event_from_dict, event_to_json_line
from repro.history.sink import EventSink
from repro.history.states import SchedulingState
from repro.observability.registry import Histogram, MetricsRegistry
from repro.service.framing import good_jsonl_prefix

__all__ = ["FSYNC_POLICIES", "WriteAheadLog"]

#: Valid values of the ``fsync`` policy parameter.
FSYNC_POLICIES = ("always", "interval", "never")

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


class WriteAheadLog(EventSink):
    """Append-only JSONL event sink with crash recovery support.

    Parameters
    ----------
    directory:
        Where segment files live; created if missing.  Reopening a
        directory with existing segments resumes appending to the last
        one (after truncating any torn tail) and continues its sequence
        numbering.
    fsync:
        One of :data:`FSYNC_POLICIES` (see the module docstring).
    fsync_every:
        Appends between fsyncs under the ``"interval"`` policy.
    segment_bytes:
        Rotation threshold: an append that finds the active segment at or
        past this size starts a new segment first (a staged batch may
        overshoot by at most one batch; the threshold was always soft).
    staging:
        Recording batch size (see :class:`~repro.history.sink.EventSink`).
        Defaults to ``1`` — every event is durable before ``record``
        returns, exactly the seed's contract.  ``staging > 1`` trades a
        bounded loss window (up to ``staging - 1`` staged events die with
        the process) for one fused serialisation + ``write`` per batch;
        it is rejected under the ``"always"`` policy, whose whole point
        is per-event durability.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync: str = "interval",
        fsync_every: int = 32,
        segment_bytes: int = 1 << 20,
        staging: int = 1,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise HistoryError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_every < 1:
            raise HistoryError(f"fsync_every must be >= 1, got {fsync_every}")
        if segment_bytes < 1:
            raise HistoryError(
                f"segment_bytes must be >= 1, got {segment_bytes}"
            )
        if staging > 1 and fsync == "always":
            raise HistoryError(
                "staging > 1 batches appends and cannot honour the "
                "per-event durability of fsync='always'"
            )
        super().__init__(staging=staging)
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_every = fsync_every
        self.segment_bytes = segment_bytes
        self._open_window: list[SchedulingEvent] = []
        self._replaying = False
        self._appends_since_fsync = 0
        #: Bytes appended to segment files by this process (not file size).
        self.bytes_written = 0
        #: ``os.fsync`` calls issued by this process.
        self.fsyncs = 0
        #: Segment rotations performed by this process.
        self.segments_rotated = 0
        #: Torn final lines truncated away when the log was (re)opened.
        self.torn_tails_truncated = 0
        #: Wall-clock latency of segment writes (one observation per
        #: append or fused staged batch, excluding fsync).
        self.append_latency = Histogram()
        #: Wall-clock latency of flush + ``os.fsync`` calls.
        self.fsync_latency = Histogram()
        segments = self.segment_paths()
        if segments:
            self._truncate_torn_tail(segments[-1])
            self._seq = self._scan_highest_seq(segments) + 1
            active = segments[-1]
        else:
            active = self._segment_path(1)
        self._active_path = active
        self._handle: Optional[IO[str]] = self._open_handle(active)
        self._active_size = active.stat().st_size

    def _open_handle(self, path: Path) -> IO[str]:
        # Line buffering keeps every complete append OS-visible (the crash
        # model is process death, not power loss); the "never" policy trades
        # that away for block buffering and raw append speed.
        buffering = -1 if self.fsync_policy == "never" else 1
        return open(  # noqa: SIM115 — long-lived
            path, "a", buffering=buffering, encoding="utf-8"
        )

    # ------------------------------------------------------------ file layout

    @property
    def directory(self) -> Path:
        return self._directory

    def _segment_path(self, index: int) -> Path:
        return self._directory / f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"

    def segment_paths(self) -> list[Path]:
        """All segment files, oldest first."""
        return sorted(
            self._directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
        )

    @property
    def segment_count(self) -> int:
        return len(self.segment_paths())

    # --------------------------------------------------------- torn-tail scan

    def _truncate_torn_tail(self, path: Path) -> None:
        """Physically drop whatever a dying writer left after the last record.

        Dying mid-append can leave a line without its newline, a complete
        line that is not valid JSON, or — now that the wire protocol
        shares this file format — a dangling length prefix (a bare
        integer line) whose frame body never made it to disk.  The shared
        :func:`~repro.service.framing.good_jsonl_prefix` scanner finds
        the durable prefix (last complete line that is a JSON *object*)
        and the log resumes from there.
        """
        raw = path.read_bytes()
        good = good_jsonl_prefix(raw)
        if good == len(raw):
            return
        with open(path, "r+b") as handle:
            handle.truncate(good)
        self.torn_tails_truncated += 1

    def _scan_highest_seq(self, segments: list[Path]) -> int:
        """Highest event seq already durable (−1 when the log is empty)."""
        for path in reversed(segments):
            highest = -1
            for record in self._iter_segment(path, final=path is segments[-1]):
                if record.get("seq", -1) > highest:
                    highest = record["seq"]
            if highest >= 0:
                return highest
        return -1

    # ---------------------------------------------------------- storage hooks

    def _append(self, event: SchedulingEvent) -> None:
        self._open_window.append(event)
        if self._replaying:
            # Restoration replays events that are already durable on disk;
            # re-appending them would duplicate the physical log.
            return
        assert self._handle is not None, "append to a closed WAL"
        if self._active_size >= self.segment_bytes:
            self._rotate()
        started = perf_counter()
        line = event_to_json_line(event)
        self._handle.write(line)
        self.append_latency.observe(perf_counter() - started)
        self._active_size += len(line)
        self.bytes_written += len(line)
        if self.fsync_policy == "always":
            self._fsync()
        elif self.fsync_policy == "interval":
            self._appends_since_fsync += 1
            if self._appends_since_fsync >= self.fsync_every:
                self._fsync()

    def _flush_batch(self, batch: tuple[SchedulingEvent, ...]) -> None:
        # The staged-batch fast path: serialise the whole batch with the
        # fused encoder and hand the segment file one string, paying the
        # rotation check, size accounting and fsync-policy bookkeeping
        # once per batch instead of once per event.
        self._open_window.extend(batch)
        if self._replaying:
            return
        assert self._handle is not None, "append to a closed WAL"
        if self._active_size >= self.segment_bytes:
            self._rotate()
        started = perf_counter()
        lines = "".join(map(event_to_json_line, batch))
        self._handle.write(lines)
        self.append_latency.observe(perf_counter() - started)
        self._active_size += len(lines)
        self.bytes_written += len(lines)
        if self.fsync_policy == "interval":
            self._appends_since_fsync += len(batch)
            if self._appends_since_fsync >= self.fsync_every:
                self._fsync()

    def _drain(self) -> tuple[SchedulingEvent, ...]:
        events = tuple(self._open_window)
        self._open_window.clear()
        return events

    def _on_cut(self, state: SchedulingState) -> None:
        # A checkpoint boundary is a durability boundary: under the
        # "interval" policy the cut flushes whatever the append counter
        # had not yet synced.
        if self.fsync_policy == "interval" and self._appends_since_fsync:
            self._fsync()

    def _fsync(self) -> None:
        assert self._handle is not None
        started = perf_counter()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.fsync_latency.observe(perf_counter() - started)
        self.fsyncs += 1
        self._appends_since_fsync = 0

    def _rotate(self) -> None:
        assert self._handle is not None
        if self.fsync_policy != "never":
            self._fsync()
        self._handle.close()
        index = len(self.segment_paths()) + 1
        self._active_path = self._segment_path(index)
        self._handle = self._open_handle(self._active_path)
        self._active_size = 0
        self.segments_rotated += 1

    # --------------------------------------------------------------- metrics

    def observe_metrics(
        self,
        registry: MetricsRegistry,
        *,
        labels: Optional[dict] = None,
    ) -> None:
        """Fold this log's counters and latency histograms into ``registry``.

        The duck-typed hook :meth:`DetectionEngine.metrics` calls on every
        registered sink; several logs sampled under the same labels merge
        additively (counters sum, histogram buckets add).
        """
        base = {str(k): str(v) for k, v in (labels or {}).items()}
        names = tuple(base)

        def counter(name: str, help: str, value: float) -> None:
            registry.counter(name, help, names).labels(**base).inc(value)

        counter(
            "repro_wal_bytes_written_total",
            "Bytes appended to WAL segment files.",
            self.bytes_written,
        )
        counter(
            "repro_wal_fsyncs_total",
            "os.fsync calls issued by the WAL.",
            self.fsyncs,
        )
        counter(
            "repro_wal_segments_rotated_total",
            "WAL segment rotations performed.",
            self.segments_rotated,
        )
        counter(
            "repro_wal_torn_tails_total",
            "Torn final lines truncated at WAL (re)open.",
            self.torn_tails_truncated,
        )
        phase_family = registry.histogram(
            "repro_phase_latency_seconds",
            "Wall-clock latency per detection phase.",
            names + ("phase",),
        )
        phase_family.labels(**base, phase="wal_append").merge(
            self.append_latency
        )
        phase_family.labels(**base, phase="wal_fsync").merge(
            self.fsync_latency
        )

    # -------------------------------------------------------------- recovery

    @contextmanager
    def replaying(self) -> Iterator[None]:
        """Context in which ``_append`` skips the disk write.

        Recovery restores a snapshot's pending window through
        :func:`repro.history.serialize.apply_sink_state`, whose events are
        already durable in this very log; inside this context they land in
        the in-memory window only.
        """
        self._replaying = True
        try:
            yield
        finally:
            self._replaying = False

    def restore_event(self, event: SchedulingEvent) -> None:
        """Re-admit one already-durable event into the open window.

        Used by WAL replay after a restart: bumps the sequence counter and
        total-recorded accounting like ``record`` would, but neither writes
        to disk nor invokes real-time listeners (the event already happened;
        the Algorithm-3 tap is replayed explicitly by the recovery layer).
        """
        self._open_window.append(event)
        self._total_recorded += 1
        if event.seq >= self._seq:
            self._seq = event.seq + 1

    def _iter_segment(self, path: Path, *, final: bool) -> Iterator[dict]:
        lines = path.read_text(encoding="utf-8").splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if final and number == len(lines):
                    return  # torn tail: the write died mid-line
                raise HistoryError(
                    f"{path.name} line {number}: corrupt WAL record: {exc}"
                ) from exc
            if not isinstance(record, dict):
                # Valid JSON but not a record — e.g. a bare integer left
                # by a torn length-prefixed write on a log that was never
                # reopened (reopen would have truncated it away).
                if final and number == len(lines):
                    return
                raise HistoryError(
                    f"{path.name} line {number}: corrupt WAL record: "
                    f"expected an object, got {type(record).__name__}"
                )
            yield record

    def iter_durable_events(self) -> Iterator[SchedulingEvent]:
        """Replay every durable event, oldest first (torn-tail tolerant)."""
        self.flush_staged()
        if self._handle is not None:
            self._handle.flush()
        segments = self.segment_paths()
        for path in segments:
            for record in self._iter_segment(path, final=path is segments[-1]):
                yield event_from_dict(record)

    # -------------------------------------------------------------- lifecycle

    def flush(self, *, sync: bool = False) -> None:
        if self._handle is None:
            return
        self.flush_staged()
        if sync:
            self._fsync()
        else:
            self._handle.flush()

    def close(self) -> None:
        """Close the active segment handle (idempotent)."""
        if self._handle is None:
            return
        self.flush_staged()
        self._handle.close()
        self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    # ------------------------------------------------------------- inspection

    @property
    def pending_events(self) -> tuple[SchedulingEvent, ...]:
        self.flush_staged()
        return tuple(self._open_window)

    # ----------------------------------------------------------------- chaos

    def simulate_torn_append(self) -> None:
        """Write a partial (newline-less) junk line and flush it.

        Crash injection's ``MID_WAL_APPEND`` point: emulates the process
        dying halfway through an append, leaving the torn tail that reopen
        must truncate.  No real event is lost — the junk never carried one.
        """
        assert self._handle is not None, "torn append on a closed WAL"
        self.flush_staged()
        junk = '{"kind": "event", "event": "Enter", "seq"'
        self._handle.write(junk)
        self._handle.flush()
        self._active_size += len(junk)
        self.bytes_written += len(junk)

    def simulate_torn_length_prefix(self) -> None:
        """Write a complete length-prefix line whose body never follows.

        The frame-sharing crash signature: a writer using the wire's
        length-prefixed framing dies after the header line's newline but
        before any body byte.  The tail is a *complete* line of digits —
        valid JSON (an integer), but no record — which reopen must
        truncate exactly like a half-written line.
        """
        assert self._handle is not None, "torn append on a closed WAL"
        self.flush_staged()
        junk = "187\n"
        self._handle.write(junk)
        self._handle.flush()
        self._active_size += len(junk)
        self.bytes_written += len(junk)

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self._directory)!r}, "
            f"fsync={self.fsync_policy!r}, segments={self.segment_count}, "
            f"live={self.live_events}, bytes={self.bytes_written}, "
            f"fsyncs={self.fsyncs}, torn={self.torn_tails_truncated})"
        )
