"""The history information database (paper Section 3.3 / Figure 1).

The database sits between the *data-gathering routines* (which the monitor
primitives invoke in real time on every Enter/Wait/Signal-Exit) and the
*checking routines* (invoked periodically).  Its contract follows the
paper's space-efficiency strategy:

    "Only the states at the last checking time and the current checking
    time are recorded for checking the mapping; the state sequence in
    between is not needed.  Furthermore only a small amount of information
    needs to be kept (in the last checking state) for later detection; most
    of the information can be removed after being used."

Concretely: events accumulate in the *open segment*; a checkpoint ``cut``
closes the segment — pairing the previous state snapshot, the accumulated
events, and the new snapshot — and (by default) discards the events.  A
``retain_full_trace=True`` mode keeps everything for the offline FD-rule
checker and for the A3 pruning ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.errors import CheckpointError, HistoryError
from repro.history.events import SchedulingEvent
from repro.history.states import SchedulingState

__all__ = ["Segment", "HistoryDatabase"]


@dataclass(frozen=True)
class Segment:
    """Everything the checker needs for one checking interval.

    ``previous`` is the state at the last checking time (``s_p`` in the
    paper), ``events`` the scheduling event sequence ``L = l1 ... ln``
    generated since then, and ``current`` the state at the current checking
    time (``s_t``).
    """

    previous: SchedulingState
    events: tuple[SchedulingEvent, ...]
    current: SchedulingState

    @property
    def duration(self) -> float:
        return self.current.time - self.previous.time

    def __len__(self) -> int:
        return len(self.events)


class HistoryDatabase:
    """Append-only event log with checkpoint-based pruning."""

    def __init__(self, *, retain_full_trace: bool = False) -> None:
        self._open_events: list[SchedulingEvent] = []
        self._last_state: Optional[SchedulingState] = None
        self._retain_full = retain_full_trace
        self._full_trace: list[SchedulingEvent] = []
        self._full_states: list[SchedulingState] = []
        self._seq = 0
        self._listeners: list[Callable[[SchedulingEvent], None]] = []
        # accounting for the pruning ablation (A3)
        self._total_recorded = 0
        self._peak_live = 0

    def subscribe(self, listener: Callable[[SchedulingEvent], None]) -> None:
        """Register a real-time event tap.

        The detector uses this for the paper's real-time checking of
        calling orders on allocator-type monitors: every recorded event is
        pushed to the listener synchronously, inside the recording call.
        """
        self._listeners.append(listener)

    # -------------------------------------------------------------- recording

    def next_seq(self) -> int:
        """Issue the next event sequence number (monitor-local total order)."""
        seq = self._seq
        self._seq += 1
        return seq

    def record(self, event: SchedulingEvent) -> None:
        """Append one scheduling event (called by data-gathering routines)."""
        self._open_events.append(event)
        self._total_recorded += 1
        if self._retain_full:
            self._full_trace.append(event)
        live = len(self._open_events)
        if live > self._peak_live:
            self._peak_live = live
        for listener in self._listeners:
            listener(event)

    def open(self, initial_state: SchedulingState) -> None:
        """Install the state snapshot that starts the first segment."""
        if self._last_state is not None:
            raise CheckpointError("history database already opened")
        self._last_state = initial_state
        if self._retain_full:
            self._full_states.append(initial_state)

    @property
    def opened(self) -> bool:
        return self._last_state is not None

    # ------------------------------------------------------------ checkpoints

    def cut(self, current_state: SchedulingState) -> Segment:
        """Close the open segment at ``current_state`` and prune its events.

        Returns the :class:`Segment` for the checker.  The events are
        dropped from the live log (the paper's pruning); the new state
        becomes the base of the next segment.
        """
        if self._last_state is None:
            raise CheckpointError("cut() before open(): no base state installed")
        if current_state.time < self._last_state.time:
            raise CheckpointError(
                f"checkpoint at t={current_state.time:g} precedes the last "
                f"checkpoint at t={self._last_state.time:g}"
            )
        segment = Segment(
            previous=self._last_state,
            events=tuple(self._open_events),
            current=current_state,
        )
        self._open_events.clear()
        self._last_state = current_state
        if self._retain_full:
            self._full_states.append(current_state)
        return segment

    # ------------------------------------------------------------- inspection

    @property
    def pending_events(self) -> tuple[SchedulingEvent, ...]:
        """Events recorded since the last checkpoint (not yet consumed)."""
        return tuple(self._open_events)

    @property
    def last_state(self) -> Optional[SchedulingState]:
        return self._last_state

    @property
    def full_trace(self) -> tuple[SchedulingEvent, ...]:
        """Complete event sequence (only with ``retain_full_trace=True``)."""
        if not self._retain_full:
            raise HistoryError(
                "full trace was not retained; construct the database with "
                "retain_full_trace=True"
            )
        return tuple(self._full_trace)

    @property
    def full_states(self) -> tuple[SchedulingState, ...]:
        """Every checkpoint state (only with ``retain_full_trace=True``)."""
        if not self._retain_full:
            raise HistoryError(
                "states were not retained; construct the database with "
                "retain_full_trace=True"
            )
        return tuple(self._full_states)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (survives pruning; ablation metric)."""
        return self._total_recorded

    @property
    def live_events(self) -> int:
        """Events currently held in memory in the open segment."""
        return len(self._open_events)

    @property
    def peak_live_events(self) -> int:
        """High-water mark of the open segment (ablation metric)."""
        return self._peak_live

    def __repr__(self) -> str:
        return (
            f"HistoryDatabase(live={self.live_events}, "
            f"total={self._total_recorded}, retain_full={self._retain_full})"
        )
