"""The history information database (paper Section 3.3 / Figure 1).

The database sits between the *data-gathering routines* (which the monitor
primitives invoke in real time on every Enter/Wait/Signal-Exit) and the
*checking routines* (invoked periodically).  Its contract follows the
paper's space-efficiency strategy:

    "Only the states at the last checking time and the current checking
    time are recorded for checking the mapping; the state sequence in
    between is not needed.  Furthermore only a small amount of information
    needs to be kept (in the last checking state) for later detection; most
    of the information can be removed after being used."

Concretely: events accumulate in the *open segment*; a checkpoint ``cut``
closes the segment — pairing the previous state snapshot, the accumulated
events, and the new snapshot — and (by default) discards the events.  A
``retain_full_trace=True`` mode keeps everything for the offline FD-rule
checker and for the A3 pruning ablation.

``HistoryDatabase`` is the reference implementation of the
:class:`~repro.history.sink.EventSink` protocol; the shared recording /
tapping / checkpoint machinery lives on the base class, this module adds
the unbounded open segment and the optional full-trace retention.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import HistoryError
from repro.history.events import SchedulingEvent
from repro.history.sink import EventSink, Segment
from repro.history.states import SchedulingState

__all__ = ["DEFAULT_STAGING", "Segment", "HistoryDatabase"]

#: Default staging-batch size of the in-memory sinks: ``record`` appends
#: to a plain list inside the atomic section and storage (plus its
#: accounting) runs once per batch / checkpoint instead of per event.
DEFAULT_STAGING = 64


class HistoryDatabase(EventSink):
    """Append-only event log with checkpoint-based pruning.

    ``staging`` batches the recording hot path (see
    :class:`~repro.history.sink.EventSink`); it defaults to
    :data:`DEFAULT_STAGING` and is observationally transparent — every
    inspection property flushes the staged batch first.
    """

    def __init__(
        self,
        *,
        retain_full_trace: bool = False,
        staging: Optional[int] = None,
    ) -> None:
        super().__init__(staging=DEFAULT_STAGING if staging is None else staging)
        self._open_events: list[SchedulingEvent] = []
        self._retain_full = retain_full_trace
        self._full_trace: list[SchedulingEvent] = []
        self._full_states: list[SchedulingState] = []
        # accounting for the pruning ablation (A3)
        self._peak_live = 0

    # ---------------------------------------------------------- storage hooks

    def _append(self, event: SchedulingEvent) -> None:
        self._open_events.append(event)
        if self._retain_full:
            self._full_trace.append(event)
        live = len(self._open_events)
        if live > self._peak_live:
            self._peak_live = live

    def _drain(self) -> tuple[SchedulingEvent, ...]:
        events = tuple(self._open_events)
        self._open_events.clear()
        return events

    def _on_open(self, state: SchedulingState) -> None:
        if self._retain_full:
            self._full_states.append(state)

    def _on_cut(self, state: SchedulingState) -> None:
        if self._retain_full:
            self._full_states.append(state)

    # ------------------------------------------------------------- inspection

    @property
    def pending_events(self) -> tuple[SchedulingEvent, ...]:
        """Events recorded since the last checkpoint (not yet consumed)."""
        self.flush_staged()
        return tuple(self._open_events)

    @property
    def live_events(self) -> int:
        """Events currently held in memory in the open segment."""
        self.flush_staged()
        return len(self._open_events)

    @property
    def full_trace(self) -> tuple[SchedulingEvent, ...]:
        """Complete event sequence (only with ``retain_full_trace=True``)."""
        self.flush_staged()
        if not self._retain_full:
            raise HistoryError(
                "full trace was not retained; construct the database with "
                "retain_full_trace=True"
            )
        return tuple(self._full_trace)

    @property
    def full_states(self) -> tuple[SchedulingState, ...]:
        """Every checkpoint state (only with ``retain_full_trace=True``)."""
        if not self._retain_full:
            raise HistoryError(
                "states were not retained; construct the database with "
                "retain_full_trace=True"
            )
        return tuple(self._full_states)

    @property
    def peak_live_events(self) -> int:
        """High-water mark of the open segment (ablation metric)."""
        self.flush_staged()
        return self._peak_live

    def __repr__(self) -> str:
        return (
            f"HistoryDatabase(live={self.live_events}, "
            f"total={self.total_recorded}, retain_full={self._retain_full})"
        )
