"""Scheduling events — the paper's EVENTset.

Section 3.1 defines::

    EVENTset = { Enter(Pid, Pname, t, flag),
                 Wait(Pid, Pname, Cond, t, flag),
                 Signal-Exit(Pid, Pname, Cond, t, flag) }

Section 3.3.1 then trims the recorded form (flag dropped from ``Wait``,
resumption does not rewrite the original event) so that checking never needs
to trace backwards.  We record the trimmed form but keep the timestamp on
every event: it costs one float and the timeout rules (``Tio``, ``Tmax``,
``Tlimit``) need a time base anyway.

Flag semantics (paper Section 3.1):

* ``Enter``: 1 = admitted immediately, 0 = blocked on the entry queue.  A
  later resumption is *not* re-recorded; it is inferred by the checker from
  the ``Wait``/``Signal-Exit`` event that released the monitor.
* ``Wait``: always recorded with flag 0 (the caller blocks by definition).
* ``Signal-Exit``: 1 = a process waiting on the named condition queue was
  resumed, 0 = no waiter was resumed (plain exit).
* ``Signal`` (extension, not in the paper): same flag convention as
  Signal-Exit, for the Hoare signal-and-wait and Mesa signal-and-continue
  disciplines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.ids import Cond, Pid, Pname

__all__ = [
    "EventKind",
    "SchedulingEvent",
    "enter_event",
    "wait_event",
    "signal_exit_event",
    "signal_event",
]


class EventKind(enum.Enum):
    """The kind of monitor primitive that generated an event."""

    ENTER = "Enter"
    WAIT = "Wait"
    SIGNAL_EXIT = "Signal-Exit"
    #: Extension: a signal that does not exit the monitor (Hoare
    #: signal-and-wait or Mesa signal-and-continue disciplines).
    SIGNAL = "Signal"


@dataclass(frozen=True, slots=True)
class SchedulingEvent:
    """One element of a scheduling event sequence ``L``.

    ``seq`` is a monitor-local sequence number making the order total (it is
    the index ``i`` of ``l_i`` in the paper's notation).  ``cond`` is None
    for Enter events and for a Signal-Exit that signals no condition (a
    plain exit).
    """

    seq: int
    kind: EventKind
    pid: Pid
    pname: Pname
    time: float
    flag: int = 0
    cond: Optional[Cond] = None

    def __post_init__(self) -> None:
        if self.flag not in (0, 1):
            raise ValueError(f"event flag must be 0 or 1, got {self.flag}")
        if self.kind is EventKind.WAIT and self.cond is None:
            raise ValueError("Wait events require a condition name")

    @property
    def is_enter(self) -> bool:
        return self.kind is EventKind.ENTER

    @property
    def is_wait(self) -> bool:
        return self.kind is EventKind.WAIT

    @property
    def is_signal_exit(self) -> bool:
        return self.kind is EventKind.SIGNAL_EXIT

    @property
    def is_signal(self) -> bool:
        return self.kind is EventKind.SIGNAL

    @property
    def releases_monitor(self) -> bool:
        """True when this event takes its caller out of the Running set.

        These are exactly the events after which the head of a waiting queue
        may be admitted: every ``Wait`` and every ``Signal-Exit``.
        """
        return self.kind in (EventKind.WAIT, EventKind.SIGNAL_EXIT)

    def __str__(self) -> str:
        cond = f", {self.cond}" if self.cond is not None else ""
        return (
            f"{self.kind.value}(P{self.pid}, {self.pname}{cond}, "
            f"t={self.time:g}, flag={self.flag})"
        )


def enter_event(
    seq: int, pid: Pid, pname: Pname, time: float, flag: int
) -> SchedulingEvent:
    """``Enter(Pid, Pname, t, flag)``."""
    return SchedulingEvent(
        seq=seq, kind=EventKind.ENTER, pid=pid, pname=pname, time=time, flag=flag
    )


def wait_event(
    seq: int, pid: Pid, pname: Pname, cond: Cond, time: float
) -> SchedulingEvent:
    """``Wait(Pid, Pname, Cond, t)`` — flag is always 0 in the trimmed form."""
    return SchedulingEvent(
        seq=seq,
        kind=EventKind.WAIT,
        pid=pid,
        pname=pname,
        time=time,
        flag=0,
        cond=cond,
    )


def signal_exit_event(
    seq: int,
    pid: Pid,
    pname: Pname,
    time: float,
    flag: int,
    cond: Optional[Cond] = None,
) -> SchedulingEvent:
    """``Signal-Exit(Pid, Pname, Cond, t, flag)``; cond=None is a plain exit."""
    return SchedulingEvent(
        seq=seq,
        kind=EventKind.SIGNAL_EXIT,
        pid=pid,
        pname=pname,
        time=time,
        flag=flag,
        cond=cond,
    )


def signal_event(
    seq: int, pid: Pid, pname: Pname, cond: Cond, time: float, flag: int
) -> SchedulingEvent:
    """Extension event for non-exiting signal disciplines."""
    return SchedulingEvent(
        seq=seq,
        kind=EventKind.SIGNAL,
        pid=pid,
        pname=pname,
        time=time,
        flag=flag,
        cond=cond,
    )
