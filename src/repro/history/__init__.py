"""History information recording (paper Section 3.1 / 3.3.1).

The paper models a monitor's run-time behaviour as a finite sequence of
*scheduling events* ``L = l1 ... ln`` with a corresponding sequence of
*scheduling states* ``S = s1 ... sn``.  This package provides:

* :mod:`repro.history.events` — the EVENTset: ``Enter``, ``Wait``,
  ``Signal-Exit`` (plus the non-exiting ``Signal`` extension used by the
  Hoare/Mesa signalling disciplines),
* :mod:`repro.history.states` — scheduling-state snapshots
  ``<EQ, CQ[], R#>`` augmented with the ``Running`` set (Section 3.3.1),
* :mod:`repro.history.sink` — the :class:`EventSink` protocol separating
  the data-gathering routines from the checking routines (Figure 1's
  recording/checking seam), plus the :class:`Segment` checkpoint window,
* :mod:`repro.history.database` — the history information database: an
  event log segmented by checkpoints, with the paper's pruning strategy
  ("only the states at the last checking time and the current checking time
  are recorded ... most of the information can be removed after being
  used"),
* :mod:`repro.history.bounded` — :class:`BoundedHistory`, a fixed-capacity
  ring-buffer sink with explicit drop accounting for long-running
  workloads,
* :mod:`repro.history.wal` — :class:`WriteAheadLog`, a crash-durable
  JSONL sink (segment rotation, fsync policies, torn-tail-tolerant
  replay) backing the restart-recovery layer in
  :mod:`repro.detection.durability`.
"""

from repro.history.bounded import BoundedHistory
from repro.history.database import HistoryDatabase
from repro.history.sink import EventListener, EventSink, Segment
from repro.history.serialize import (
    dump_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
    state_from_dict,
    state_to_dict,
)
from repro.history.events import (
    EventKind,
    SchedulingEvent,
    enter_event,
    signal_event,
    signal_exit_event,
    wait_event,
)
from repro.history.states import QueueEntry, SchedulingState
from repro.history.wal import FSYNC_POLICIES, WriteAheadLog

__all__ = [
    "EventKind",
    "SchedulingEvent",
    "enter_event",
    "wait_event",
    "signal_event",
    "signal_exit_event",
    "QueueEntry",
    "SchedulingState",
    "EventListener",
    "EventSink",
    "HistoryDatabase",
    "BoundedHistory",
    "WriteAheadLog",
    "FSYNC_POLICIES",
    "Segment",
    "dump_trace",
    "load_trace",
    "event_to_dict",
    "event_from_dict",
    "state_to_dict",
    "state_from_dict",
]
