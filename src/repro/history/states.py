"""Scheduling states — ``<EQ, CQ[], R#>`` snapshots.

Section 3.1 defines a scheduling state as the 3-tuple ``<EQ, CQ[], R#>``:
entry queue, array of condition queues, and the number of currently
available resources.  Section 3.3.1 additionally records ``Running`` — the
process(es) currently inside the monitor — at every checking time, because
the incremental checker compares its reconstructed Running-List against it.

Each queue position is a :class:`QueueEntry` carrying the pid, the procedure
it invoked, and the time at which it entered that queue.  The ``since``
timestamps implement the paper's ``Timer(Pid)`` without a separate timer
table: ``Timer(pid) = now - entry.since``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Optional

from repro.ids import Cond, Pid, Pname

__all__ = ["QueueEntry", "SchedulingState"]


@dataclass(frozen=True, slots=True)
class QueueEntry:
    """One process sitting in a monitor queue (or in the Running set)."""

    pid: Pid
    pname: Pname
    #: Time the process entered this queue / the monitor.
    since: float

    def timer(self, now: float) -> float:
        """The paper's ``Timer(Pid)``: how long the process has sat here."""
        return now - self.since

    def __str__(self) -> str:
        return f"P{self.pid}({self.pname})@{self.since:g}"


@dataclass(frozen=True)
class SchedulingState:
    """Immutable snapshot of a monitor's scheduling state at one instant."""

    #: Time at which the snapshot was taken.
    time: float
    #: Entry queue (EQ), in FIFO order: head first.
    entry_queue: tuple[QueueEntry, ...]
    #: Condition queues (CQ[Cond]), each in FIFO order.
    cond_queues: Mapping[Cond, tuple[QueueEntry, ...]]
    #: Processes currently inside the monitor (Running).  A correct monitor
    #: has at most one; snapshots of faulty executions may show more.
    running: tuple[QueueEntry, ...]
    #: Number of currently available resources (R#), None when the monitor
    #: type has no resource-count notion.
    resource_count: Optional[int] = None
    #: Urgent stack used by the Hoare signal-and-wait discipline (extension;
    #: empty under the paper's signal-exit discipline).
    urgent: tuple[QueueEntry, ...] = ()

    def __post_init__(self) -> None:
        # Freeze the mapping so a snapshot can never drift after capture.
        object.__setattr__(
            self, "cond_queues", MappingProxyType(dict(self.cond_queues))
        )

    # ------------------------------------------------------------- accessors

    @property
    def entry_pids(self) -> tuple[Pid, ...]:
        return tuple(entry.pid for entry in self.entry_queue)

    @property
    def running_pids(self) -> tuple[Pid, ...]:
        return tuple(entry.pid for entry in self.running)

    def cond_pids(self, cond: Cond) -> tuple[Pid, ...]:
        return tuple(entry.pid for entry in self.cond_queues.get(cond, ()))

    def all_waiting_pids(self) -> frozenset[Pid]:
        """Every pid blocked in this monitor (entry + all condition queues)."""
        pids = {entry.pid for entry in self.entry_queue}
        for queue in self.cond_queues.values():
            pids.update(entry.pid for entry in queue)
        return frozenset(pids)

    def find(self, pid: Pid) -> Optional[str]:
        """Locate a pid: 'running', 'entry', 'urgent', a condition name, or None."""
        if pid in self.running_pids:
            return "running"
        if pid in self.entry_pids:
            return "entry"
        if any(entry.pid == pid for entry in self.urgent):
            return "urgent"
        for cond, queue in self.cond_queues.items():
            if any(entry.pid == pid for entry in queue):
                return cond
        return None

    def describe(self) -> str:
        """Multi-line human-readable rendering (diagnostics, examples)."""
        lines = [f"state @ t={self.time:g}"]
        running = ", ".join(map(str, self.running)) or "-"
        lines.append(f"  Running : {running}")
        eq = ", ".join(map(str, self.entry_queue)) or "-"
        lines.append(f"  EQ      : {eq}")
        for cond in sorted(self.cond_queues):
            queue = ", ".join(map(str, self.cond_queues[cond])) or "-"
            lines.append(f"  CQ[{cond}]: {queue}")
        if self.urgent:
            lines.append(f"  Urgent  : {', '.join(map(str, self.urgent))}")
        if self.resource_count is not None:
            lines.append(f"  R#      : {self.resource_count}")
        return "\n".join(lines)
