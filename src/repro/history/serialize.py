"""Serialisation of scheduling histories (JSON-compatible, JSONL files).

The history information database is the system's audit trail; being able
to persist a trace and re-check it offline (on another machine, against a
different rule configuration, or long after the run) is what makes the
offline FD checker practically useful.  The format is line-oriented JSON:
one object per event or state, with a ``kind`` discriminator, so traces
can be streamed and grepped.

Round-trip guarantees are exact: ``load_events(dump_events(trace)) ==
trace`` (covered by property tests).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, Optional, Union

from repro.errors import HistoryError
from repro.history.events import EventKind, SchedulingEvent
from repro.history.sink import Segment
from repro.history.states import QueueEntry, SchedulingState

__all__ = [
    "event_to_dict",
    "event_from_dict",
    "events_from_wire",
    "event_to_json_line",
    "state_to_dict",
    "state_from_dict",
    "segment_to_dict",
    "segment_from_dict",
    "segment_to_json",
    "request_list_to_wire",
    "request_list_from_wire",
    "capture_to_dict",
    "capture_from_dict",
    "report_to_dict",
    "report_from_dict",
    "sink_state_to_dict",
    "apply_sink_state",
    "dump_trace",
    "load_trace",
]


# ------------------------------------------------------------------ events


def event_to_dict(event: SchedulingEvent) -> dict:
    """One scheduling event as a JSON-compatible dict."""
    record = {
        "kind": "event",
        "event": event.kind.value,
        "seq": event.seq,
        "pid": event.pid,
        "pname": event.pname,
        "time": event.time,
        "flag": event.flag,
    }
    if event.cond is not None:
        record["cond"] = event.cond
    return record


def event_from_dict(record: dict) -> SchedulingEvent:
    if record.get("kind") != "event":
        raise HistoryError(f"not an event record: {record!r}")
    try:
        return SchedulingEvent(
            seq=record["seq"],
            kind=EventKind(record["event"]),
            pid=record["pid"],
            pname=record["pname"],
            time=record["time"],
            flag=record["flag"],
            cond=record.get("cond"),
        )
    except (KeyError, ValueError) as exc:
        raise HistoryError(f"malformed event record {record!r}: {exc}") from exc


# ------------------------------------------------------------ fused encoder

#: Memoised JSON string encodings — event kinds, process names and
#: condition names repeat constantly, and the append path is the
#: monitor-operation hot path the overhead bench measures.
_ESCAPED: dict[str, str] = {}


def _escape(value: str) -> str:
    cached = _ESCAPED.get(value)
    if cached is None:
        cached = _ESCAPED[value] = json.dumps(value)
    return cached


def event_to_json_line(event: SchedulingEvent) -> str:
    """:func:`event_to_dict` + compact ``json.dumps``, hand-fused.

    Produces byte-identical JSON to
    ``json.dumps(event_to_dict(event), separators=(",", ":"))`` (floats
    via ``repr``, exactly as the json encoder emits them; pure ASCII, so
    ``len`` is the byte length) without building the intermediate dict.
    Shared by the write-ahead log's append path and the event sinks'
    staged-batch flush.
    """
    head = (
        f'{{"kind":"event","event":{_escape(event.kind.value)},'
        f'"seq":{event.seq},"pid":{event.pid},'
        f'"pname":{_escape(event.pname)},"time":{event.time!r},'
        f'"flag":{event.flag}'
    )
    if event.cond is not None:
        return head + f',"cond":{_escape(event.cond)}}}\n'
    return head + "}\n"


# ------------------------------------------------------------------ states


def _entry_to_list(entry: QueueEntry) -> list:
    return [entry.pid, entry.pname, entry.since]


def _entry_from_list(raw: list) -> QueueEntry:
    pid, pname, since = raw
    return QueueEntry(pid, pname, since)


def state_to_dict(state: SchedulingState) -> dict:
    """One scheduling state snapshot as a JSON-compatible dict."""
    return {
        "kind": "state",
        "time": state.time,
        "entry_queue": [_entry_to_list(e) for e in state.entry_queue],
        "cond_queues": {
            cond: [_entry_to_list(e) for e in queue]
            for cond, queue in state.cond_queues.items()
        },
        "running": [_entry_to_list(e) for e in state.running],
        "urgent": [_entry_to_list(e) for e in state.urgent],
        "resource_count": state.resource_count,
    }


def state_from_dict(record: dict) -> SchedulingState:
    if record.get("kind") != "state":
        raise HistoryError(f"not a state record: {record!r}")
    try:
        return SchedulingState(
            time=record["time"],
            entry_queue=tuple(
                _entry_from_list(e) for e in record["entry_queue"]
            ),
            cond_queues={
                cond: tuple(_entry_from_list(e) for e in queue)
                for cond, queue in record["cond_queues"].items()
            },
            running=tuple(_entry_from_list(e) for e in record["running"]),
            urgent=tuple(_entry_from_list(e) for e in record.get("urgent", [])),
            resource_count=record.get("resource_count"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise HistoryError(f"malformed state record {record!r}: {exc}") from exc


# ---------------------------------------------------------------- segments


def segment_to_dict(segment: Segment) -> dict:
    """One cut checkpoint window as a JSON-compatible dict.

    The wire shape is the detection service's window codec (previous and
    current states, the event list and the ``dropped`` count — see
    :func:`repro.service.protocol.segment_to_wire`, which delegates here),
    so the out-of-process shadow checker consumes input identical to the
    in-process one.
    """
    return {
        "previous": state_to_dict(segment.previous),
        "events": [event_to_dict(event) for event in segment.events],
        "current": state_to_dict(segment.current),
        "dropped": segment.dropped,
    }


#: Wire value → member, resolved once: ``EventKind(value)`` walks the
#: enum ``__call__`` machinery on every event, and the batch decoder
#: below sits on the evaluator worker's per-window hot path.
_EVENT_KINDS: dict = {kind.value: kind for kind in EventKind}


def events_from_wire(records) -> tuple:
    """Batch :func:`event_from_dict`: one tight loop, no per-record
    dispatch.  Decoding is the dominant cost of shipping a checking
    window to an evaluator worker process, so the common shape is
    decoded without the per-event ``kind`` check; malformed input falls
    back to :func:`event_from_dict` for its precise error."""
    kinds = _EVENT_KINDS
    get = dict.get
    try:
        return tuple(
            SchedulingEvent(
                seq=record["seq"],
                kind=kinds[record["event"]],
                pid=record["pid"],
                pname=record["pname"],
                time=record["time"],
                flag=record["flag"],
                cond=get(record, "cond"),
            )
            for record in records
        )
    except (KeyError, TypeError, ValueError):
        return tuple(event_from_dict(record) for record in records)


def segment_from_dict(raw: dict) -> Segment:
    """Rebuild a :class:`~repro.history.sink.Segment` from wire form."""
    try:
        return Segment(
            previous=state_from_dict(raw["previous"]),
            events=events_from_wire(raw["events"]),
            current=state_from_dict(raw["current"]),
            dropped=int(raw.get("dropped", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise HistoryError(f"malformed segment record {raw!r}: {exc}") from exc


def segment_to_json(segment: Segment) -> str:
    """:func:`segment_to_dict` + compact ``json.dumps``, hand-fused.

    Byte-identical to ``json.dumps(segment_to_dict(segment),
    separators=(",", ":"))``.  Segment encoding sits on the evaluation
    submit path of the process plane — it runs under the GIL in the
    dispatch thread, so every microsecond saved here is parallel speedup
    kept; the event list (the bulk of the payload) reuses the memoised
    :func:`event_to_json_line` encoder.
    """
    events = ",".join(
        event_to_json_line(event)[:-1] for event in segment.events
    )
    previous = json.dumps(state_to_dict(segment.previous), separators=(",", ":"))
    current = json.dumps(state_to_dict(segment.current), separators=(",", ":"))
    return (
        f'{{"previous":{previous},"events":[{events}],'
        f'"current":{current},"dropped":{segment.dropped}}}'
    )


# ------------------------------------------------------------ request lists


def request_list_to_wire(
    request_list: Optional[Iterable[tuple]],
) -> Optional[list]:
    """Algorithm-3's frozen Request-List as ``[[pid, since], ...]``."""
    if request_list is None:
        return None
    return [[pid, since] for pid, since in request_list]


def request_list_from_wire(raw: Optional[list]) -> Optional[tuple]:
    if raw is None:
        return None
    try:
        return tuple((pid, since) for pid, since in raw)
    except (TypeError, ValueError) as exc:
        raise HistoryError(f"malformed request list {raw!r}: {exc}") from exc


# ---------------------------------------------------------------- captures

# The capture/report codecs close the loop for the process-parallel
# evaluation plane: a phase-1 CheckpointCapture crosses the worker pipe as
# JSON, the FaultReports come back the same way.  The detection types are
# imported lazily — the detection package imports this module at load
# time, so a top-level import would be a cycle.


def capture_to_dict(capture) -> dict:
    """One immutable phase-1 capture as a JSON-compatible dict.

    ``snapshot`` is omitted (encoded as ``None``) when it is the
    segment's ``current`` state — the engine's capture path cuts the
    window *at* the snapshot, so this is the overwhelmingly common case
    and the state would otherwise travel twice.
    """
    snapshot = (
        None
        if capture.snapshot is capture.segment.current
        else state_to_dict(capture.snapshot)
    )
    return {
        "kind": "capture",
        "label": capture.entry.label,
        "snapshot": snapshot,
        "segment": segment_to_dict(capture.segment),
        "request_list": request_list_to_wire(capture.request_list),
        "taken_at": capture.taken_at,
    }


def capture_from_dict(record: dict, entry):
    """Rebuild a :class:`~repro.detection.engine.CheckpointCapture`.

    ``entry`` is the :class:`~repro.detection.engine.RegisteredMonitor`
    the capture belongs to — entries never cross the wire (they hold the
    live checkers); the caller resolves the record's ``label`` to its own
    registration.
    """
    from repro.detection.engine import CheckpointCapture

    if record.get("kind") != "capture":
        raise HistoryError(f"not a capture record: {record!r}")
    try:
        segment = segment_from_dict(record["segment"])
        raw_snapshot = record.get("snapshot")
        snapshot = (
            segment.current
            if raw_snapshot is None
            else state_from_dict(raw_snapshot)
        )
        return CheckpointCapture(
            entry=entry,
            snapshot=snapshot,
            segment=segment,
            request_list=request_list_from_wire(record.get("request_list")),
            taken_at=record["taken_at"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise HistoryError(f"malformed capture record: {exc}") from exc


# ----------------------------------------------------------------- reports


def report_to_dict(report) -> dict:
    """One fault report as a JSON-compatible dict (canonical codec)."""
    from repro.detection.reports import report_to_dict as encode

    return encode(report)


def report_from_dict(record: dict):
    """Rebuild a :class:`~repro.detection.reports.FaultReport`."""
    from repro.detection.reports import report_from_dict as decode

    return decode(record)


# ------------------------------------------------------------------- sinks


def sink_state_to_dict(sink) -> dict:
    """Snapshot an :class:`~repro.history.sink.EventSink`'s live state.

    Captures everything a restarted checker needs to resume the sink's open
    checking window: the base state of the window (the last checkpoint's
    snapshot), the pending events, the sequence counter and the drop/total
    accounting.  The checkpoint supervisor persists one of these per
    registered monitor (see
    :meth:`repro.detection.supervision.CheckpointSupervisor.snapshot_state`).
    """
    return {
        "kind": "sink",
        "seq": sink._seq,
        "total_recorded": sink._total_recorded,
        "last_state": (
            None if sink.last_state is None else state_to_dict(sink.last_state)
        ),
        "pending": [event_to_dict(event) for event in sink.pending_events],
        "dropped_events": sink.dropped_events,
        "pending_dropped": getattr(sink, "pending_dropped", 0),
    }


def apply_sink_state(sink, record: dict) -> None:
    """Restore a :func:`sink_state_to_dict` snapshot into a (fresh) sink.

    The sink's storage is rebuilt through its own ``_append`` hook, so a
    bounded sink re-applies its capacity policy to the restored window.
    Listeners are *not* invoked — restoration replays bookkeeping, not the
    recording hot path.
    """
    if record.get("kind") != "sink":
        raise HistoryError(f"not a sink record: {record!r}")
    try:
        sink._seq = record["seq"]
        sink._total_recorded = record["total_recorded"]
        last_state = record["last_state"]
        sink._last_state = (
            None if last_state is None else state_from_dict(last_state)
        )
        for raw in record["pending"]:
            sink._append(event_from_dict(raw))
        if hasattr(sink, "_dropped_total"):
            # Bounded sinks: restore the drop accounting *after* the replay
            # above (replaying into a smaller buffer may itself evict and
            # count; the snapshot's totals are authoritative), so the next
            # cut's ``Segment.dropped`` matches what the crashed sink would
            # have reported.
            sink._dropped_total = record.get("dropped_events", 0)
            sink._dropped_in_window = record.get("pending_dropped", 0)
    except (KeyError, TypeError) as exc:
        raise HistoryError(f"malformed sink record: {exc}") from exc


# ------------------------------------------------------------------- files


def dump_trace(
    stream: IO[str],
    events: Iterable[SchedulingEvent],
    states: Iterable[SchedulingState] = (),
) -> int:
    """Write events (and optional checkpoint states) as JSON lines.

    States and events are written in one stream, distinguished by their
    ``kind`` field; returns the number of lines written.
    """
    written = 0
    for state in states:
        stream.write(json.dumps(state_to_dict(state)) + "\n")
        written += 1
    for event in events:
        stream.write(json.dumps(event_to_dict(event)) + "\n")
        written += 1
    return written


def load_trace(
    stream: IO[str],
) -> tuple[tuple[SchedulingEvent, ...], tuple[SchedulingState, ...]]:
    """Read a JSONL trace back into (events, states).

    Events are re-sorted by sequence number so that concatenated or
    interleaved dumps still load as a well-ordered trace.
    """
    events: list[SchedulingEvent] = []
    states: list[SchedulingState] = []
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise HistoryError(
                f"line {line_number}: invalid JSON: {exc}"
            ) from exc
        kind = record.get("kind")
        if kind == "event":
            events.append(event_from_dict(record))
        elif kind == "state":
            states.append(state_from_dict(record))
        else:
            raise HistoryError(
                f"line {line_number}: unknown record kind {kind!r}"
            )
    events.sort(key=lambda event: event.seq)
    states.sort(key=lambda state: state.time)
    return tuple(events), tuple(states)
