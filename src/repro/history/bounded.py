"""A fixed-capacity event sink for long-running workloads.

``HistoryDatabase`` keeps its open segment unbounded between checkpoints:
a stalled or slow checker lets the segment grow with the event rate.  For
production-style deployments :class:`BoundedHistory` caps the live window
with a ring buffer — when the buffer saturates, the *oldest* event of the
window is discarded and counted, so memory stays ``O(capacity)`` no
matter how late the checker runs.

The trade-off is visible, not silent: every :class:`~repro.history.sink.Segment`
carries the window's ``dropped`` count, and the sink tracks a cumulative
``dropped_events`` total, so the detection layer can flag checkpoints whose
window was incomplete rather than quietly checking a truncated trace.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.history.database import DEFAULT_STAGING
from repro.history.events import SchedulingEvent
from repro.history.sink import EventSink

__all__ = ["BoundedHistory"]


class BoundedHistory(EventSink):
    """Ring-buffer event sink with explicit drop accounting.

    Parameters
    ----------
    capacity:
        Maximum number of events held between checkpoints.  Recording the
        ``capacity + 1``-th event of a window evicts the window's oldest
        event and increments the drop counters.
    staging:
        Recording batch size (see :class:`~repro.history.sink.EventSink`).
        Defaults to ``min(capacity, DEFAULT_STAGING)`` so the staged batch
        never holds more than one ring's worth of events; eviction
        accounting runs at flush and stays exact.
    """

    def __init__(self, capacity: int, *, staging: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if staging is None:
            staging = min(capacity, DEFAULT_STAGING)
        super().__init__(staging=staging)
        self._buffer: deque[SchedulingEvent] = deque(maxlen=capacity)
        self._dropped_total = 0
        self._dropped_in_window = 0
        self._peak_live = 0

    # ---------------------------------------------------------- storage hooks

    def _append(self, event: SchedulingEvent) -> None:
        if len(self._buffer) == self._buffer.maxlen:
            # deque(maxlen=...) evicts the oldest entry on append; count it.
            self._dropped_total += 1
            self._dropped_in_window += 1
        self._buffer.append(event)
        if len(self._buffer) > self._peak_live:
            self._peak_live = len(self._buffer)

    def _drain(self) -> tuple[SchedulingEvent, ...]:
        events = tuple(self._buffer)
        self._buffer.clear()
        return events

    def _take_dropped(self) -> int:
        dropped = self._dropped_in_window
        self._dropped_in_window = 0
        return dropped

    # ------------------------------------------------------------- shedding

    def force_drop(self, count: int) -> int:
        """Evict up to ``count`` oldest events from the open window.

        Load shedding under pressure (and the chaos harness's event-drop
        bursts): the evictions are counted exactly like capacity evictions,
        so the next ``cut`` reports an incomplete window and the detection
        layer degrades instead of checking a silently truncated trace.
        Returns the number of events actually evicted.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.flush_staged()
        evicted = min(count, len(self._buffer))
        for __ in range(evicted):
            self._buffer.popleft()
        self._dropped_total += evicted
        self._dropped_in_window += evicted
        return evicted

    # ------------------------------------------------------------- inspection

    @property
    def capacity(self) -> int:
        maxlen = self._buffer.maxlen
        assert maxlen is not None
        return maxlen

    @property
    def pending_events(self) -> tuple[SchedulingEvent, ...]:
        self.flush_staged()
        return tuple(self._buffer)

    @property
    def live_events(self) -> int:
        self.flush_staged()
        return len(self._buffer)

    @property
    def dropped_events(self) -> int:
        """Total events evicted since construction (all windows)."""
        self.flush_staged()
        return self._dropped_total

    @property
    def pending_dropped(self) -> int:
        """Events evicted from the still-open window (reset by ``cut``)."""
        self.flush_staged()
        return self._dropped_in_window

    @property
    def peak_live_events(self) -> int:
        """High-water mark of the ring buffer (never exceeds capacity)."""
        self.flush_staged()
        return self._peak_live

    def __repr__(self) -> str:
        return (
            f"BoundedHistory(capacity={self.capacity}, live={self.live_events}, "
            f"dropped={self._dropped_total}, total={self.total_recorded})"
        )
