"""Tests for user-supplied monitor assertions (Section 5 extension)."""

import pytest

from repro.apps import BoundedBuffer
from repro.history import HistoryDatabase
from repro.kernel import Delay, SimKernel
from repro.recovery.assertions import ASSERTION_RULE, AssertionChecker
from tests.conftest import producer


class TestDeclaration:
    def test_add_and_list(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        checker = AssertionChecker(buffer)
        checker.add("in-range", lambda snap: True, "occupancy bounded")
        assert len(checker.assertions) == 1
        assert checker.assertions[0].name == "in-range"

    def test_duplicate_name_rejected(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        checker = AssertionChecker(buffer)
        checker.add("x", lambda snap: True)
        with pytest.raises(ValueError):
            checker.add("x", lambda snap: True)


class TestEvaluation:
    def test_holding_assertions_produce_nothing(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        checker = AssertionChecker(buffer)
        checker.add(
            "occupancy-in-range",
            lambda snap: 0 <= buffer.occupancy <= buffer.capacity,
        )
        kernel.spawn(producer(buffer, 2))
        kernel.run(until=10)
        kernel.raise_failures()
        assert checker.evaluate() == []
        assert checker.reports == []

    def test_failing_assertion_reported(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        checker = AssertionChecker(buffer)
        checker.add("always-false", lambda snap: False, "demo")
        reports = checker.evaluate()
        assert len(reports) == 1
        assert reports[0].rule is ASSERTION_RULE
        assert "always-false" in reports[0].message
        assert "demo" in reports[0].message

    def test_raising_predicate_counts_as_failure(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        checker = AssertionChecker(buffer)

        def broken(snap):
            raise KeyError("oops")

        checker.add("broken", broken)
        reports = checker.evaluate()
        assert len(reports) == 1
        assert "KeyError" in reports[0].message

    def test_snapshot_passed_to_predicate(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2)
        seen = []
        checker = AssertionChecker(buffer)
        checker.add("capture", lambda snap: seen.append(snap) or True)
        checker.evaluate()
        assert len(seen) == 1
        assert hasattr(seen[0], "entry_queue")
