"""Tests for the error-recovery supervisor and strategies."""

import pytest

from repro.apps import BoundedBuffer
from repro.detection import DetectorConfig, FaultDetector, STRule
from repro.history import HistoryDatabase
from repro.kernel import Delay, SimKernel
from repro.recovery.strategies import (
    AlarmStrategy,
    ExpelStrategy,
    RecoveryAction,
    RecoverySupervisor,
    ResetQueuesStrategy,
)
from tests.conftest import consumer, producer


def wedged_monitor_scenario(kernel):
    """A process terminates inside the buffer, wedging it (fault I.c.4)."""
    buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
    detector = FaultDetector(
        buffer, DetectorConfig(interval=1.0, tmax=2.0, tio=60.0)
    )

    def saboteur():
        yield from buffer.monitor.enter("Send")
        # terminates inside

    def late_user(sink):
        yield Delay(0.5)
        yield from buffer.send("item")
        sink.append("sent")

    def ticker():
        # Keeps virtual time moving while everything else is wedged, so the
        # Tmax timer can actually elapse before the manual checkpoint.
        yield Delay(10.0)

    sent = []
    kernel.spawn(saboteur(), "saboteur")
    kernel.spawn(late_user(sent), "late-user")
    kernel.spawn(ticker(), "ticker")
    return buffer, detector, sent


class TestAlarmStrategy:
    def test_alarm_applies_to_everything_and_records(self, kernel):
        buffer, detector, __ = wedged_monitor_scenario(kernel)
        alarms = AlarmStrategy()
        supervisor = RecoverySupervisor(detector, [alarms])
        kernel.run(until=4.0)
        supervisor.checkpoint_and_recover()
        assert alarms.alarms
        assert all(
            record.action is RecoveryAction.ALARM
            for record in supervisor.records
        )

    def test_alarm_callback_invoked(self, kernel):
        buffer, detector, __ = wedged_monitor_scenario(kernel)
        seen = []
        supervisor = RecoverySupervisor(detector, [AlarmStrategy(seen.append)])
        kernel.run(until=4.0)
        supervisor.checkpoint_and_recover()
        assert seen


class TestExpelStrategy:
    def test_expel_unwedges_the_monitor(self, kernel):
        buffer, detector, sent = wedged_monitor_scenario(kernel)
        supervisor = RecoverySupervisor(
            detector, [ExpelStrategy(), AlarmStrategy()]
        )
        # Let the saboteur wedge the monitor and the late user queue up.
        kernel.run(until=4.0)
        assert sent == []  # late user is stuck behind the dead owner
        supervisor.checkpoint_and_recover()
        expelled = [
            record
            for record in supervisor.records
            if record.action is RecoveryAction.EXPELLED
        ]
        assert expelled
        # After expulsion the late user can finally complete.
        kernel.run(until=8.0)
        kernel.raise_failures()
        assert sent == ["sent"]

    def test_expel_only_handles_tmax_reports(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        detector = FaultDetector(buffer)
        strategy = ExpelStrategy()
        from repro.detection.reports import FaultReport

        other = FaultReport(
            rule=STRule.ENTRY_QUEUE_MATCHES,
            message="x",
            monitor="buffer",
            detected_at=1.0,
        )
        assert not strategy.applies_to(other)
        tmax_report = FaultReport(
            rule=STRule.TMAX_EXCEEDED,
            message="x",
            monitor="buffer",
            detected_at=1.0,
            pids=(1,),
        )
        assert strategy.applies_to(tmax_report)


class TestResetQueuesStrategy:
    def test_clears_dead_owner_on_running_mismatch(self, kernel):
        buffer, detector, sent = wedged_monitor_scenario(kernel)
        supervisor = RecoverySupervisor(detector, [ResetQueuesStrategy()])
        kernel.run(until=4.0)
        # Force a RUNNING_MATCHES-shaped report via a checkpoint: the model
        # agrees with reality here, so drive the strategy directly instead.
        from repro.detection.reports import FaultReport

        report = FaultReport(
            rule=STRule.RUNNING_MATCHES,
            message="divergence",
            monitor="buffer",
            detected_at=4.0,
        )
        record = supervisor.recover(report)
        assert record.action is RecoveryAction.QUEUES_RESET
        kernel.run(until=8.0)
        kernel.raise_failures()
        assert sent == ["sent"]

    def test_never_kills_live_owner(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        detector = FaultDetector(buffer)
        supervisor = RecoverySupervisor(detector, [ResetQueuesStrategy()])
        inside = []

        def legit():
            yield from buffer.monitor.enter("Send")
            inside.append(True)
            yield Delay(2.0)
            buffer.monitor.exit()

        kernel.spawn(legit())
        kernel.run(until=1.0)
        from repro.detection.reports import FaultReport

        report = FaultReport(
            rule=STRule.RUNNING_MATCHES,
            message="divergence",
            monitor="buffer",
            detected_at=1.0,
        )
        record = supervisor.recover(report)
        assert record.action is RecoveryAction.NONE
        kernel.run()
        kernel.raise_failures()


class TestSupervisor:
    def test_first_applicable_strategy_wins(self, kernel):
        buffer, detector, __ = wedged_monitor_scenario(kernel)
        alarms = AlarmStrategy()
        supervisor = RecoverySupervisor(detector, [ExpelStrategy(), alarms])
        kernel.run(until=4.0)
        supervisor.checkpoint_and_recover()
        # Tmax reports went to ExpelStrategy, everything else to alarms.
        actions = {record.action for record in supervisor.records}
        assert RecoveryAction.EXPELLED in actions

    def test_no_strategy_records_none(self, kernel):
        buffer = BoundedBuffer(kernel, capacity=2, history=HistoryDatabase())
        detector = FaultDetector(buffer)
        supervisor = RecoverySupervisor(detector, [])
        from repro.detection.reports import FaultReport

        report = FaultReport(
            rule=STRule.TMAX_EXCEEDED, message="x", monitor="b", detected_at=0.0
        )
        record = supervisor.recover(report)
        assert record.action is RecoveryAction.NONE
