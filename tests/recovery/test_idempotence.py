"""Crash/restart idempotence of destructive recovery actions.

A restarted detector replays its report journal (see
:mod:`repro.detection.durability`), so every report a dead incarnation
already recovered from is offered to the :class:`RecoverySupervisor`
again.  Destructive strategies (expel, queue reset) must not fire twice
for the same report — the first incarnation already acted.
"""

from repro.detection import report_key
from repro.kernel import SimKernel, RandomPolicy
from repro.recovery.strategies import (
    AlarmStrategy,
    ExpelStrategy,
    RecoveryAction,
    RecoverySupervisor,
    ResetQueuesStrategy,
)
from tests.recovery.test_strategies import wedged_monitor_scenario


def run_wedged(kernel):
    buffer, detector, sent = wedged_monitor_scenario(kernel)
    supervisor = RecoverySupervisor(
        detector, [ExpelStrategy(), ResetQueuesStrategy(), AlarmStrategy()]
    )
    kernel.run(until=4.0)
    reports = supervisor.checkpoint_and_recover()
    return buffer, detector, supervisor, reports


class TestReplayIdempotence:
    def test_same_report_is_not_recovered_twice(self, kernel):
        __, __, supervisor, reports = run_wedged(kernel)
        destructive = [
            record
            for record in supervisor.records
            if record.action is RecoveryAction.EXPELLED
        ]
        assert destructive, "scenario must trigger at least one expulsion"
        before = len(destructive)
        # The restart: the journal replays every already-handled report.
        for report in reports:
            record = supervisor.recover(report)
            assert record.action is RecoveryAction.NONE
            assert "already recovered" in record.detail
        after = [
            record
            for record in supervisor.records
            if record.action is RecoveryAction.EXPELLED
        ]
        assert len(after) == before

    def test_fresh_supervisor_seeded_from_journal_keys(self, kernel):
        """A restarted process rebuilds ``handled`` from the journal."""
        __, detector, supervisor, reports = run_wedged(kernel)
        restarted = RecoverySupervisor(
            detector, [ExpelStrategy(), AlarmStrategy()]
        )
        restarted.handled.update(report_key(report) for report in reports)
        for report in reports:
            record = restarted.recover(report)
            assert record.action is RecoveryAction.NONE
        assert not [
            record
            for record in restarted.records
            if record.action is RecoveryAction.EXPELLED
        ]

    def test_distinct_reports_still_recovered(self, kernel):
        """Idempotence keys on the report, not the monitor or rule."""
        __, __, supervisor, reports = run_wedged(kernel)
        handled_before = set(supervisor.handled)
        fresh_kernel = SimKernel(RandomPolicy(seed=1), on_deadlock="stop")
        __, __, second_supervisor, second_reports = run_wedged(fresh_kernel)
        assert second_reports
        # Same fault class, different run/time — different keys, so the
        # second supervisor acts on them normally.
        assert {report_key(r) for r in second_reports}.isdisjoint(
            handled_before
        ) or any(
            record.action is not RecoveryAction.NONE
            for record in second_supervisor.records
        )
