"""Integration: monitor apps and detection on the real-thread kernel.

Thread interleavings are nondeterministic, so assertions here are
schedule-independent: completion, conservation, mutual-exclusion safety,
and absence of detector reports on healthy workloads.
"""

import pytest

from repro.apps import BoundedBuffer, SingleResourceAllocator
from repro.detection import DetectorConfig, FaultDetector, detector_process
from repro.history import HistoryDatabase
from repro.kernel import Delay, ThreadKernel

FAST = 0.002  # virtual-seconds -> wall-seconds compression


class TestBufferOnThreads:
    def test_items_conserved_and_ordered(self):
        kernel = ThreadKernel(time_scale=FAST)
        buffer = BoundedBuffer(kernel, capacity=3)
        received = []

        def producer():
            for item in range(40):
                yield Delay(0.02)
                yield from buffer.send(item)

        def consumer():
            for __ in range(40):
                yield Delay(0.02)
                item = yield from buffer.receive()
                received.append(item)

        kernel.spawn(producer())
        kernel.spawn(consumer())
        kernel.run()
        kernel.raise_failures()
        assert received == list(range(40))  # single pair: FIFO exact

    def test_many_pairs_conserve_items(self):
        kernel = ThreadKernel(time_scale=FAST)
        buffer = BoundedBuffer(kernel, capacity=4)
        received = []

        def producer():
            for item in range(20):
                yield Delay(0.01)
                yield from buffer.send(item)

        def consumer():
            for __ in range(20):
                yield Delay(0.01)
                received.append((yield from buffer.receive()))

        for __ in range(3):
            kernel.spawn(producer())
            kernel.spawn(consumer())
        kernel.run()
        kernel.raise_failures()
        assert sorted(received) == sorted(list(range(20)) * 3)
        assert buffer.occupancy == 0

    def test_detector_clean_on_healthy_threaded_run(self):
        kernel = ThreadKernel(time_scale=FAST)
        buffer = BoundedBuffer(
            kernel, capacity=3, history=HistoryDatabase(), service_time=0.005
        )
        detector = FaultDetector(
            buffer, DetectorConfig(interval=0.5, tmax=None, tio=None)
        )

        def producer():
            for item in range(30):
                yield Delay(0.02)
                yield from buffer.send(item)

        def consumer():
            for __ in range(30):
                yield Delay(0.02)
                yield from buffer.receive()

        done = {"count": 4}

        def tracked(body):
            yield from body
            done["count"] -= 1
            if done["count"] == 0:
                detector.stop()

        for __ in range(2):
            kernel.spawn(tracked(producer()))
            kernel.spawn(tracked(consumer()))
        kernel.spawn(detector_process(detector))
        kernel.run(until=3000)
        kernel.raise_failures()
        assert detector.clean, [str(r) for r in detector.reports]
        assert detector.checkpoints_run > 0


class TestAllocatorOnThreads:
    def test_exclusive_grants(self):
        kernel = ThreadKernel(time_scale=FAST)
        allocator = SingleResourceAllocator(kernel)
        holding = []
        violations = []

        def user(i):
            for __ in range(5):
                yield Delay(0.01 * (i + 1))
                yield from allocator.request()
                holding.append(i)
                if len(holding) > 1:
                    violations.append(list(holding))
                yield Delay(0.02)
                holding.remove(i)
                yield from allocator.release()

        for i in range(4):
            kernel.spawn(user(i))
        kernel.run()
        kernel.raise_failures()
        assert violations == []
        assert allocator.grants == 20

    def test_realtime_order_fault_caught_on_threads(self):
        kernel = ThreadKernel(time_scale=FAST)
        allocator = SingleResourceAllocator(kernel, history=HistoryDatabase())
        detector = FaultDetector(
            allocator, DetectorConfig(interval=1000.0)
        )

        def buggy():
            yield Delay(0.01)
            yield from allocator.release()

        kernel.spawn(buggy())
        kernel.run()
        assert any(
            report.rule_id == "ST-8b" for report in detector.reports
        )
