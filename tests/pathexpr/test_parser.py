"""Unit tests for the path-expression parser."""

import pytest

from repro.errors import PathExpressionSyntaxError
from repro.pathexpr import Alt, Name, Opt, Plus, Seq, Star, parse_path_expression


class TestAtoms:
    def test_single_name(self):
        assert parse_path_expression("Request") == Name("Request")

    def test_underscored_name(self):
        assert parse_path_expression("start_read") == Name("start_read")

    def test_whitespace_ignored(self):
        assert parse_path_expression("  Request  ") == Name("Request")


class TestOperators:
    def test_sequence(self):
        expr = parse_path_expression("a ; b ; c")
        assert expr == Seq((Name("a"), Name("b"), Name("c")))

    def test_alternation(self):
        expr = parse_path_expression("a | b")
        assert expr == Alt((Name("a"), Name("b")))

    def test_star_plus_opt(self):
        assert parse_path_expression("a*") == Star(Name("a"))
        assert parse_path_expression("a+") == Plus(Name("a"))
        assert parse_path_expression("a?") == Opt(Name("a"))

    def test_stacked_postfix(self):
        assert parse_path_expression("a*?") == Opt(Star(Name("a")))

    def test_seq_binds_tighter_than_alt(self):
        expr = parse_path_expression("a ; b | c")
        assert expr == Alt((Seq((Name("a"), Name("b"))), Name("c")))

    def test_parentheses_override(self):
        expr = parse_path_expression("a ; (b | c)")
        assert expr == Seq((Name("a"), Alt((Name("b"), Name("c")))))

    def test_paper_allocator_order(self):
        expr = parse_path_expression("(Request ; Release)*")
        assert expr == Star(Seq((Name("Request"), Name("Release"))))

    def test_readers_writers_order(self):
        expr = parse_path_expression(
            "((StartRead ; EndRead) | (StartWrite ; EndWrite))*"
        )
        assert isinstance(expr, Star)
        assert isinstance(expr.inner, Alt)


class TestAlphabet:
    def test_alphabet_collects_names(self):
        expr = parse_path_expression("(a ; b)* | c?")
        assert expr.alphabet() == frozenset({"a", "b", "c"})


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        ["", "   ", "a ;", "; a", "(a", "a)", "a b", "*", "a | | b", "a @ b"],
    )
    def test_malformed_rejected(self, source):
        with pytest.raises(PathExpressionSyntaxError):
            parse_path_expression(source)

    def test_error_carries_position(self):
        with pytest.raises(PathExpressionSyntaxError) as info:
            parse_path_expression("a ; *")
        assert info.value.source == "a ; *"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "Request",
            "(Request ; Release)*",
            "((a ; b) | (c ; d))*",
            "a+ ; b? ; c*",
            "a | b | c",
        ],
    )
    def test_str_reparses_to_same_ast(self, source):
        expr = parse_path_expression(source)
        assert parse_path_expression(str(expr)) == expr
