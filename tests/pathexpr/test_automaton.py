"""Unit tests for the path-expression order automaton."""

import pytest

from repro.pathexpr import compile_order


def walk(auto, symbols):
    """Drive the automaton; returns final state or None on violation."""
    state = auto.start
    for symbol in symbols:
        state = auto.step(state, symbol)
        if state is None:
            return None
    return state


class TestAllocatorOrder:
    AUTO = compile_order("(Request ; Release)*")

    def test_valid_cycles(self):
        state = walk(self.AUTO, ["Request", "Release"] * 3)
        assert state is not None
        assert self.AUTO.accepts_now(state)

    def test_half_cycle_is_viable_prefix_not_complete(self):
        state = walk(self.AUTO, ["Request"])
        assert state is not None
        assert not self.AUTO.accepts_now(state)

    def test_release_first_violates(self):
        assert walk(self.AUTO, ["Release"]) is None

    def test_double_request_violates(self):
        assert walk(self.AUTO, ["Request", "Request"]) is None

    def test_empty_sequence_accepted(self):
        assert self.AUTO.accepts_now(self.AUTO.start)

    def test_check_reports_first_violation_index(self):
        assert self.AUTO.check(["Request", "Release", "Release"]) == 2
        assert self.AUTO.check(["Request", "Release"]) is None


class TestReadersWritersOrder:
    AUTO = compile_order("((StartRead ; EndRead) | (StartWrite ; EndWrite))*")

    def test_mixed_valid_history(self):
        history = [
            "StartRead", "EndRead",
            "StartWrite", "EndWrite",
            "StartRead", "EndRead",
        ]
        assert self.AUTO.check(history) is None

    def test_mismatched_end_violates(self):
        assert self.AUTO.check(["StartRead", "EndWrite"]) == 1

    def test_nested_read_violates(self):
        assert self.AUTO.check(["StartRead", "StartRead"]) == 1


class TestAlphabetPolicy:
    def test_foreign_symbols_unconstrained(self):
        auto = compile_order("(Request ; Release)*")
        state = auto.step(auto.start, "Stats")
        assert state == auto.start  # unchanged, no violation

    def test_alphabet_exposed(self):
        auto = compile_order("(a ; b) | c")
        assert auto.alphabet == frozenset({"a", "b", "c"})


class TestOperators:
    def test_plus_requires_one(self):
        auto = compile_order("a+")
        assert not auto.accepts_now(auto.start)
        state = walk(auto, ["a"])
        assert auto.accepts_now(state)
        state = walk(auto, ["a", "a", "a"])
        assert auto.accepts_now(state)

    def test_opt_zero_or_one(self):
        auto = compile_order("a?")
        assert auto.accepts_now(auto.start)
        state = walk(auto, ["a"])
        assert auto.accepts_now(state)
        assert walk(auto, ["a", "a"]) is None

    def test_alternation_commits_lazily(self):
        auto = compile_order("(a ; b) | (a ; c)")
        # After 'a' both branches are live; either ending must work.
        assert auto.check(["a", "b"]) is None
        assert auto.check(["a", "c"]) is None
        assert auto.check(["a", "a"]) == 1

    def test_sequence_of_three(self):
        auto = compile_order("a ; b ; c")
        assert auto.check(["a", "b", "c"]) is None
        assert auto.check(["a", "c"]) == 1
        # Completed sequence cannot restart (no star).
        assert auto.check(["a", "b", "c", "a"]) == 3
